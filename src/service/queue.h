// Bounded admission queue with per-client fairness and a job table.
//
// The daemon admits jobs into this queue and a single dispatcher pops them
// in batches.  Three properties the service tests pin down:
//
//   BACKPRESSURE   the queue holds at most `capacity` queued jobs; a
//                  submit against a full queue is rejected with a
//                  retryable error and the job is never recorded — the
//                  client owns the retry, the daemon's memory stays
//                  bounded.
//   FAIRNESS       queued jobs are popped round-robin across client
//                  sessions: each rotation takes at most one job from
//                  each session with pending work, so a client that dumps
//                  100 jobs cannot starve one that submits a single job.
//                  Within a session, jobs run in submission order.
//   LIFECYCLE      every admitted job is exactly-once: it moves through
//                  queued -> running -> done|failed, or queued ->
//                  cancelled, and is handed to the dispatcher at most
//                  once.  Terminal jobs stay queryable by id for the
//                  daemon's lifetime.
//
// Draining (the SIGTERM path) closes admission — further submits are
// rejected as non-retryable "draining" — while everything already
// admitted still runs to a terminal state; wait_drained() returns only
// when no queued or running job remains, which is what makes the drain
// lossless.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/job_result.h"
#include "api/job_spec.h"

namespace sdpm::service {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state);
bool is_terminal(JobState state);

/// One admitted job.  Mutable fields are guarded by the queue's mutex;
/// snapshots for rendering are taken via AdmissionQueue::snapshot().
struct Job {
  std::int64_t id = 0;
  std::uint64_t session = 0;
  api::JobSpec spec;
  std::string label;  ///< stable copy of spec.display_label()
  JobState state = JobState::kQueued;
  std::string error;                    ///< kFailed only
  std::string error_code;               ///< kFailed only; api::ErrorCode wire string
  std::optional<api::JobResult> result; ///< kDone only
  std::int64_t dispatch_seq = -1;  ///< order handed to the dispatcher
  /// Times dispatched, INCLUDING dispatches in previous daemon lives
  /// recovered from the journal; at most 1 within a single life.  The
  /// daemon quarantines jobs whose count reaches its attempt budget.
  std::int64_t runs = 0;
  double started_ms = -1;  ///< wall ms when popped; -1 = never dispatched
  double wall_ms = 0;
  /// Wall ms when admitted; -1 for jobs recovered from the journal (their
  /// admission happened in a prior daemon life, so queue-wait/e2e stages
  /// are not recorded for them).
  double admit_ms = -1;
  /// Client-propagated trace correlation (0 = untraced).  Set at submit,
  /// immutable afterwards.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// Copyable view of one job for responses (no locking hazards).
struct JobSnapshot {
  std::int64_t id = 0;
  std::uint64_t session = 0;
  std::string label;
  JobState state = JobState::kQueued;
  std::string error;
  std::string error_code;
  std::optional<api::JobResult> result;
  std::int64_t dispatch_seq = -1;
  double wall_ms = 0;
};

struct QueueStats {
  std::size_t depth = 0;     ///< currently queued
  std::size_t running = 0;   ///< popped, not yet terminal
  std::size_t capacity = 0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t rejected = 0;   ///< backpressure + draining rejections
  std::int64_t recovered = 0;  ///< re-queued from the journal at startup
  std::int64_t timed_out = 0;  ///< failed by the deadline watchdog
  bool draining = false;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Admit a job for `session`.  Returns the job id (> 0), or 0 with
  /// `error`/`retryable` set: retryable=true is backpressure (queue full),
  /// retryable=false means admission is closed (draining).  `now_ms`
  /// (when >= 0) stamps admit_ms for the queue-wait/e2e telemetry stages;
  /// `trace_id`/`span_id` carry the client's trace context.
  std::int64_t submit(std::uint64_t session, api::JobSpec spec,
                      std::string& error, bool& retryable,
                      double now_ms = -1, std::uint64_t trace_id = 0,
                      std::uint64_t span_id = 0);

  /// Pop up to `max` jobs (state -> kRunning) in round-robin session
  /// order.  Blocks until work is available; returns an empty vector when
  /// the queue is stopped, or when draining and nothing is left to pop.
  /// `now_ms` (when >= 0) stamps each popped job's started_ms so the
  /// deadline watchdog can expire overruns.
  std::vector<std::shared_ptr<Job>> pop_batch(std::size_t max,
                                              double now_ms = -1);

  /// Mark a popped job terminal.  Notifies result waiters.  Returns false
  /// — dropping the result/error — when the job is already terminal: the
  /// watchdog may have timed a job out while a worker was still computing
  /// it, and the first terminal transition wins.
  bool complete(const std::shared_ptr<Job>& job, api::JobResult result,
                double wall_ms);
  bool fail(const std::shared_ptr<Job>& job, std::string error,
            double wall_ms, std::string error_code = "EXEC_ERROR");

  /// Fail every running job whose started_ms deadline has passed
  /// (now_ms - started_ms > timeout_ms) with a JOB_TIMEOUT error.
  /// Returns the expired jobs so the caller can journal them.
  std::vector<std::shared_ptr<Job>> expire_overdue(double now_ms,
                                                   double timeout_ms);

  /// Startup recovery: re-insert a job replayed from the journal under its
  /// original id.  restore_queued() puts it back in the pending queue
  /// (carrying `prior_runs` dispatches from previous daemon lives); the
  /// terminal flavors record the historical outcome so it stays queryable.
  /// All bump the id allocator past `id`.  Recovery runs before the
  /// dispatcher starts, so these never race pop_batch.
  std::int64_t restore_queued(std::int64_t id, std::uint64_t session,
                              api::JobSpec spec, std::int64_t prior_runs);
  void restore_done(std::int64_t id, std::uint64_t session, api::JobSpec spec,
                    api::JobResult result);
  void restore_failed(std::int64_t id, std::uint64_t session,
                      api::JobSpec spec, std::string error,
                      std::string error_code);
  void restore_cancelled(std::int64_t id, std::uint64_t session,
                         api::JobSpec spec);

  /// Cancel a queued job.  Fails (returning false with `error` set) when
  /// the job is unknown, already running, or terminal.
  bool cancel(std::int64_t id, std::string& error);

  /// Snapshot a job; empty optional for unknown ids.
  std::optional<JobSnapshot> snapshot(std::int64_t id) const;

  /// Block until `id` reaches a terminal state (or the queue stops, in
  /// which case the job is returned in whatever state it is in).  Empty
  /// optional for unknown ids.
  std::optional<JobSnapshot> wait_terminal(std::int64_t id);

  /// Close admission; already-admitted jobs still run.
  void begin_drain();
  bool draining() const;

  /// Block until draining and no queued or running jobs remain.
  void wait_drained();

  /// Wake every blocked caller; pop_batch returns empty from now on.
  void stop();

  /// Test hook: while paused, pop_batch blocks even with work available
  /// (deterministic backpressure / cancellation / fairness tests).
  void pause(bool paused);

  QueueStats stats() const;

 private:
  JobSnapshot snapshot_locked(const Job& job) const;
  bool drained_locked() const;
  std::shared_ptr<Job> restore_locked(std::int64_t id, std::uint64_t session,
                                      api::JobSpec spec);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< dispatcher side
  std::condition_variable done_cv_;   ///< waiters: results, drain
  std::map<std::int64_t, std::shared_ptr<Job>> jobs_;  ///< all ever admitted
  std::map<std::uint64_t, std::deque<std::shared_ptr<Job>>> pending_;
  std::uint64_t rr_cursor_ = 0;  ///< session id the last pop ended at
  std::int64_t next_id_ = 1;
  std::int64_t next_dispatch_seq_ = 0;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t cancelled_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t recovered_ = 0;
  std::int64_t timed_out_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  bool paused_ = false;
};

}  // namespace sdpm::service
