#include "service/telemetry.h"

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {

namespace {

constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

Json quantiles_json(const obs::LatencyHistogram::Quantiles& q) {
  Json out = Json::object();
  out.set("count", q.count)
      .set("mean_ms", q.mean)
      .set("p50_ms", q.p50)
      .set("p90_ms", q.p90)
      .set("p99_ms", q.p99)
      .set("p999_ms", q.p999)
      .set("max_ms", q.max);
  return out;
}

Json window_json(const obs::RollingWindow& window, double now_ms) {
  Json out = Json::object();
  for (const double seconds : {1.0, 10.0, 60.0}) {
    const obs::RollingWindow::WindowStats stats =
        window.stats(now_ms, seconds);
    Json view = Json::object();
    view.set("count", stats.count).set("rate_per_sec", stats.rate_per_sec);
    out.set(str_printf("%.0fs", seconds), std::move(view));
  }
  return out;
}

}  // namespace

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kAdmit:
      return "admit";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kDispatch:
      return "dispatch";
    case Stage::kEval:
      return "eval";
    case Stage::kRespond:
      return "respond";
    case Stage::kEndToEnd:
      return "e2e";
    case Stage::kJournalAppend:
      return "journal_append";
    case Stage::kJournalFsync:
      return "journal_fsync";
    case Stage::kStoreGet:
      return "store_get";
    case Stage::kStorePut:
      return "store_put";
    case Stage::kCount:
      break;
  }
  return "?";
}

ServiceTelemetry::ServiceTelemetry() = default;

void ServiceTelemetry::record(Stage stage, double ms) {
  SDPM_ASSERT(stage < Stage::kCount, "invalid telemetry stage");
  stages_[static_cast<std::size_t>(stage)].record(ms);
}

void ServiceTelemetry::record_admit(std::uint64_t session, double now_ms) {
  admissions_.record(now_ms);
  std::lock_guard lock(clients_mutex_);
  ++clients_[session].submitted;
}

void ServiceTelemetry::record_outcome(std::uint64_t session, double e2e_ms,
                                      bool ok, double now_ms) {
  record(Stage::kEndToEnd, e2e_ms);
  completions_.record(now_ms);
  std::lock_guard lock(clients_mutex_);
  ClientAgg& agg = clients_[session];
  if (ok) {
    ++agg.completed;
  } else {
    ++agg.failed;
  }
  agg.e2e_ms.add(e2e_ms < 0 ? 0 : e2e_ms);
}

obs::LatencyHistogram::Quantiles ServiceTelemetry::stage_quantiles(
    Stage stage) const {
  SDPM_ASSERT(stage < Stage::kCount, "invalid telemetry stage");
  return stages_[static_cast<std::size_t>(stage)].quantiles();
}

Json ServiceTelemetry::to_json(double now_ms) const {
  Json stages = Json::object();
  for (std::size_t s = 0; s < kStageCount; ++s) {
    stages.set(to_string(static_cast<Stage>(s)),
               quantiles_json(stages_[s].quantiles()));
  }
  Json windows = Json::object();
  windows.set("admissions", window_json(admissions_, now_ms));
  windows.set("completions", window_json(completions_, now_ms));
  Json clients = Json::object();
  {
    std::lock_guard lock(clients_mutex_);
    for (const auto& [session, agg] : clients_) {
      Json client = Json::object();
      client.set("submitted", agg.submitted)
          .set("completed", agg.completed)
          .set("failed", agg.failed)
          .set("e2e_ms", quantiles_json(obs::quantiles_of(agg.e2e_ms)));
      clients.set(std::to_string(session), std::move(client));
    }
  }
  Json out = Json::object();
  out.set("stages", std::move(stages))
      .set("windows", std::move(windows))
      .set("clients", std::move(clients));
  return out;
}

std::string ServiceTelemetry::prometheus_text() const {
  std::vector<obs::PromSummary> extra;
  extra.reserve(kStageCount);
  for (std::size_t s = 0; s < kStageCount; ++s) {
    obs::PromSummary summary;
    summary.name = "service.stage_latency_ms";
    summary.labels = {{"stage", to_string(static_cast<Stage>(s))}};
    summary.quantiles = stages_[s].quantiles();
    extra.push_back(std::move(summary));
  }
  return obs::render_prometheus(obs::MetricsRegistry::global().snapshot(),
                                extra);
}

}  // namespace sdpm::service
