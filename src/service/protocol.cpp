#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {
namespace {

/// Read exactly `n` bytes.  Returns the byte count actually read: `n` on
/// success, 0 on EOF before the first byte, and throws on a short read in
/// the middle (a torn frame is corruption, not a clean close).
std::size_t read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error(str_printf("service: read failed: %s",
                             std::strerror(errno)));
    }
    if (r == 0) {
      if (got == 0) return 0;
      throw Error("service: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_exact(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a SIGPIPE that
    // would kill the whole daemon.
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw Error(str_printf("service: write failed: %s",
                             std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace

FrameRead read_frame_limited(int fd, std::string& payload,
                             std::uint32_t max_bytes) {
  unsigned char prefix[4];
  if (read_exact(fd, reinterpret_cast<char*>(prefix), 4) == 0) {
    return FrameRead{FrameRead::Status::kEof, 0, false};
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                               (static_cast<std::uint32_t>(prefix[1]) << 16) |
                               (static_cast<std::uint32_t>(prefix[2]) << 8) |
                               static_cast<std::uint32_t>(prefix[3]);
  if (length > max_bytes) {
    FrameRead result{FrameRead::Status::kTooLarge, length, false};
    // A prefix with the high bit set is a "negative" length from a signed
    // writer — certainly garbage, never worth streaming through.
    if (length <= kMaxDiscardBytes && (length & 0x80000000u) == 0) {
      char sink[1 << 16];
      std::uint32_t remaining = length;
      while (remaining > 0) {
        const std::size_t chunk =
            remaining < sizeof(sink) ? remaining : sizeof(sink);
        if (read_exact(fd, sink, chunk) == 0) {
          throw Error("service: connection closed mid-frame");
        }
        remaining -= static_cast<std::uint32_t>(chunk);
      }
      result.resynced = true;
    }
    return result;
  }
  payload.resize(length);
  if (length > 0 && read_exact(fd, payload.data(), length) == 0) {
    throw Error("service: connection closed mid-frame");
  }
  return FrameRead{FrameRead::Status::kFrame, length, true};
}

bool read_frame(int fd, std::string& payload) {
  const FrameRead read = read_frame_limited(fd, payload, kMaxFrameBytes);
  if (read.status == FrameRead::Status::kEof) return false;
  if (read.status == FrameRead::Status::kTooLarge) {
    throw Error(str_printf("service: frame of %u bytes exceeds the %u-byte "
                           "limit",
                           read.length, kMaxFrameBytes));
  }
  return true;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw Error(str_printf("service: refusing to send a %zu-byte frame "
                           "(limit %u)",
                           payload.size(), kMaxFrameBytes));
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length),
  };
  write_exact(fd, reinterpret_cast<const char*>(prefix), 4);
  write_exact(fd, payload.data(), payload.size());
}

bool read_message(int fd, Json& message) {
  std::string payload;
  if (!read_frame(fd, payload)) return false;
  message = Json::parse(payload);
  return true;
}

void write_message(int fd, const Json& message) {
  write_frame(fd, message.dump());
}

Json ok_response() {
  Json response = Json::object();
  response.set("ok", true);
  return response;
}

Json error_response(const std::string& message, bool retryable,
                    const std::string& code) {
  Json response = Json::object();
  response.set("ok", false).set("error", message).set("retryable", retryable);
  if (!code.empty()) response.set("code", code);
  return response;
}

std::string trace_hex(std::uint64_t id) {
  return str_printf("%016llx", static_cast<unsigned long long>(id));
}

std::uint64_t parse_trace_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t out = 0;
  for (const char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(10 + c - 'a');
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(10 + c - 'A');
    } else {
      return 0;
    }
    out = (out << 4) | digit;
  }
  return out;
}

}  // namespace sdpm::service
