#include "service/journal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string_view>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "service/telemetry.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace sdpm::service {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'P', 'M', 'J', 'N', 'L', '1'};
// type + id + session + wall_ms + payload length.
constexpr std::size_t kBodyFixedBytes = 1 + 8 + 8 + 8 + 4;
constexpr std::size_t kRecordHeaderBytes = 8;  // body len + crc

void put_u32_be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_u64_be(std::string& out, std::uint64_t v) {
  put_u32_be(out, static_cast<std::uint32_t>(v >> 32));
  put_u32_be(out, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32_be(const char* in) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0]))
          << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2]))
          << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

std::uint64_t get_u64_be(const char* in) {
  return (static_cast<std::uint64_t>(get_u32_be(in)) << 32) |
         get_u32_be(in + 4);
}

/// Wall-clock milliseconds since the Unix epoch.  Recorded for operators
/// reading the journal; replay never consults it (determinism-lint
/// allowlists this file for exactly that reason).
std::uint64_t wall_ms_epoch() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string encode_record(JournalRecordType type, std::int64_t id,
                          std::uint64_t session,
                          const std::string& payload) {
  std::string body;
  body.reserve(kBodyFixedBytes + payload.size());
  body.push_back(static_cast<char>(type));
  put_u64_be(body, static_cast<std::uint64_t>(id));
  put_u64_be(body, session);
  put_u64_be(body, wall_ms_epoch());
  put_u32_be(body, static_cast<std::uint32_t>(payload.size()));
  body += payload;

  std::string record;
  record.reserve(kRecordHeaderBytes + body.size());
  put_u32_be(record, static_cast<std::uint32_t>(body.size()));
  put_u32_be(record, crc32(body));
  record += body;
  return record;
}

std::string complete_payload_done(const std::string& store_key_hex) {
  Json payload = Json::object();
  payload.set("state", "done").set("store", store_key_hex);
  return payload.dump();
}

std::string complete_payload_failed(const std::string& code,
                                    const std::string& error) {
  Json payload = Json::object();
  payload.set("state", "failed").set("code", code).set("error", error);
  return payload.dump();
}

void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw Error(str_printf("journal: write to %s failed: %s", path.c_str(),
                             std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace

Journal::Journal(JournalOptions options) : options_(std::move(options)) {
  SDPM_REQUIRE(!options_.path.empty(), "Journal needs a path");
}

Journal::~Journal() { close(); }

JournalReplay Journal::open() {
  std::lock_guard lock(mutex_);
  SDPM_REQUIRE(fd_ < 0, "Journal::open() called twice");

  JournalReplay replay;
  std::string data;
  {
    std::FILE* file = std::fopen(options_.path.c_str(), "rb");
    if (file != nullptr) {
      char buffer[1 << 16];
      std::size_t got = 0;
      while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        data.append(buffer, got);
      }
      const bool ok = std::ferror(file) == 0;
      std::fclose(file);
      if (!ok) {
        throw Error(str_printf("journal: cannot read %s", options_.path.c_str()));
      }
    }
  }

  // Replay: valid records up to the first torn/corrupt one.
  std::map<std::int64_t, std::size_t> by_id;  // id -> index into jobs
  std::size_t offset = 0;
  if (data.size() >= sizeof(kMagic) &&
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0) {
    offset = sizeof(kMagic);
    while (offset + kRecordHeaderBytes <= data.size()) {
      const std::uint32_t body_len = get_u32_be(data.data() + offset);
      const std::uint32_t crc = get_u32_be(data.data() + offset + 4);
      if (body_len < kBodyFixedBytes ||
          offset + kRecordHeaderBytes + body_len > data.size()) {
        replay.truncated_tail = true;
        break;
      }
      const std::string_view body(data.data() + offset + kRecordHeaderBytes,
                                  body_len);
      if (crc32(body) != crc) {
        replay.truncated_tail = true;
        break;
      }
      const auto type = static_cast<JournalRecordType>(
          static_cast<unsigned char>(body[0]));
      const auto id = static_cast<std::int64_t>(get_u64_be(body.data() + 1));
      const std::uint64_t session = get_u64_be(body.data() + 9);
      const std::uint32_t payload_len = get_u32_be(body.data() + 25);
      if (payload_len != body_len - kBodyFixedBytes) {
        replay.truncated_tail = true;
        break;
      }
      const std::string payload(body.substr(kBodyFixedBytes));
      offset += kRecordHeaderBytes + body_len;
      ++replay.records;

      switch (type) {
        case JournalRecordType::kAdmit: {
          if (by_id.count(id) > 0) break;  // duplicate admit: keep the first
          ReplayedJob job;
          job.id = id;
          job.session = session;
          job.spec_json = payload;
          by_id.emplace(id, replay.jobs.size());
          replay.jobs.push_back(std::move(job));
          replay.max_id = std::max(replay.max_id, id);
          break;
        }
        case JournalRecordType::kDispatch: {
          const auto it = by_id.find(id);
          if (it != by_id.end()) ++replay.jobs[it->second].dispatches;
          break;
        }
        case JournalRecordType::kComplete: {
          const auto it = by_id.find(id);
          if (it == by_id.end()) break;
          ReplayedJob& job = replay.jobs[it->second];
          try {
            const Json record = Json::parse(payload);
            if (record.at("state").as_string() == "done") {
              job.outcome = ReplayedJob::Outcome::kDone;
              job.store_key = record.at("store").as_string();
            } else {
              job.outcome = ReplayedJob::Outcome::kFailed;
              job.error_code = record.at("code").as_string();
              job.error = record.at("error").as_string();
            }
          } catch (const std::exception&) {
            // CRC-valid but semantically malformed (a foreign writer?):
            // safest is to treat the job as incomplete and re-run it.
          }
          break;
        }
        case JournalRecordType::kCancel: {
          const auto it = by_id.find(id);
          if (it != by_id.end()) {
            replay.jobs[it->second].outcome =
                ReplayedJob::Outcome::kCancelled;
          }
          break;
        }
      }
    }
    if (offset < data.size()) replay.truncated_tail = true;
  } else if (!data.empty()) {
    // Unrecognized magic: not our journal.  Start fresh rather than guess.
    replay.truncated_tail = true;
  }

  // Compact: rewrite live state (incomplete jobs, plus the newest
  // keep_terminal terminal jobs) atomically, then open for append.
  std::size_t terminal_count = 0;
  for (const ReplayedJob& job : replay.jobs) {
    if (job.outcome != ReplayedJob::Outcome::kIncomplete) ++terminal_count;
  }
  std::size_t drop_terminal =
      terminal_count > options_.keep_terminal
          ? terminal_count - options_.keep_terminal
          : 0;  // jobs are in admission order: drop the oldest first

  const std::string temp = options_.path + ".tmp";
  std::FILE* out = std::fopen(temp.c_str(), "wb");
  if (out == nullptr) {
    throw Error(str_printf("journal: cannot create %s: %s", temp.c_str(),
                           std::strerror(errno)));
  }
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), out) == sizeof(kMagic);
  const auto emit = [&](JournalRecordType type, const ReplayedJob& job,
                        const std::string& payload) {
    const std::string record = encode_record(type, job.id, job.session,
                                             payload);
    ok = ok && std::fwrite(record.data(), 1, record.size(), out) ==
                   record.size();
  };
  std::vector<ReplayedJob> kept;
  for (const ReplayedJob& job : replay.jobs) {
    if (job.outcome != ReplayedJob::Outcome::kIncomplete &&
        drop_terminal > 0) {
      --drop_terminal;
      continue;
    }
    emit(JournalRecordType::kAdmit, job, job.spec_json);
    for (std::int64_t d = 0; d < job.dispatches; ++d) {
      emit(JournalRecordType::kDispatch, job, "");
    }
    switch (job.outcome) {
      case ReplayedJob::Outcome::kIncomplete:
        break;
      case ReplayedJob::Outcome::kDone:
        emit(JournalRecordType::kComplete, job,
             complete_payload_done(job.store_key));
        break;
      case ReplayedJob::Outcome::kFailed:
        emit(JournalRecordType::kComplete, job,
             complete_payload_failed(job.error_code, job.error));
        break;
      case ReplayedJob::Outcome::kCancelled:
        emit(JournalRecordType::kCancel, job, "");
        break;
    }
    kept.push_back(job);
  }
  ok = std::fflush(out) == 0 && ok;
  std::fclose(out);
  if (!ok || ::rename(temp.c_str(), options_.path.c_str()) != 0) {
    ::unlink(temp.c_str());
    throw Error(str_printf("journal: cannot compact %s: %s",
                           options_.path.c_str(), std::strerror(errno)));
  }
  replay.jobs = std::move(kept);
  ++stats_.compactions;
  if (replay.truncated_tail) ++stats_.torn_tail_truncations;

  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw Error(str_printf("journal: cannot open %s for append: %s",
                           options_.path.c_str(), std::strerror(errno)));
  }
  return replay;
}

void Journal::append_locked(JournalRecordType type, std::int64_t id,
                            std::uint64_t session,
                            const std::string& payload) {
  if (fd_ < 0) return;  // closed (shutdown teardown): appends are no-ops
  const std::string record = encode_record(type, id, session, payload);
  const auto t0 = std::chrono::steady_clock::now();
  write_all(fd_, record.data(), record.size(), options_.path);
  ++stats_.appends;
  double fsync_ms = 0;
  if (options_.fsync_each) {
    const auto f0 = std::chrono::steady_clock::now();
    ::fdatasync(fd_);
    ++stats_.fsyncs;
    fsync_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - f0)
                   .count();
  }
  if (options_.telemetry != nullptr) {
    const double append_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    ServiceTelemetry::record_if(options_.telemetry, Stage::kJournalAppend,
                                append_ms);
    if (options_.fsync_each) {
      ServiceTelemetry::record_if(options_.telemetry, Stage::kJournalFsync,
                                  fsync_ms);
    }
  }
}

void Journal::append(JournalRecordType type, std::int64_t id,
                     const std::string& payload) {
  std::lock_guard lock(mutex_);
  append_locked(type, id, /*session=*/0, payload);
}

void Journal::admit(std::int64_t id, std::uint64_t session,
                    const std::string& spec_json) {
  std::lock_guard lock(mutex_);
  append_locked(JournalRecordType::kAdmit, id, session, spec_json);
}

void Journal::dispatch(std::int64_t id) {
  append(JournalRecordType::kDispatch, id, "");
}

void Journal::complete_done(std::int64_t id,
                            const std::string& store_key_hex) {
  append(JournalRecordType::kComplete, id,
         complete_payload_done(store_key_hex));
}

void Journal::complete_failed(std::int64_t id, const std::string& code,
                              const std::string& error) {
  append(JournalRecordType::kComplete, id,
         complete_payload_failed(code, error));
}

void Journal::cancel(std::int64_t id) {
  append(JournalRecordType::kCancel, id, "");
}

void Journal::close() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

JournalStats Journal::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace sdpm::service
