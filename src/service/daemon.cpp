#include "service/daemon.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "experiments/runner.h"
#include "experiments/trace_cache.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "service/protocol.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json snapshot_json(const JobSnapshot& snap) {
  Json job = Json::object();
  job.set("id", snap.id)
      .set("label", snap.label)
      .set("state", std::string(to_string(snap.state)));
  if (snap.state == JobState::kFailed) {
    job.set("error", snap.error);
    if (!snap.error_code.empty()) job.set("code", snap.error_code);
  }
  if (is_terminal(snap.state)) job.set("wall_ms", snap.wall_ms);
  if (snap.result.has_value()) job.set("result", snap.result->to_json());
  return job;
}

std::int64_t require_id(const Json& request) {
  if (!request.contains("id")) {
    throw Error("request is missing the \"id\" field");
  }
  return request.at("id").as_int();
}

}  // namespace

ServiceDaemon::ServiceDaemon(DaemonOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      session_(api::SessionOptions{.jobs = options_.jobs}),
      start_ns_(steady_ns()) {
  SDPM_REQUIRE(!options_.socket_path.empty(),
               "ServiceDaemon needs a socket path");
  SDPM_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
}

ServiceDaemon::~ServiceDaemon() {
  queue_.stop();  // wakes the dispatcher and every blocked waiter
  shutdown_requested_.store(true, std::memory_order_release);
  wait();
}

double ServiceDaemon::wall_ms_now() const {
  return static_cast<double>(steady_ns() - start_ns_) / 1e6;
}

void ServiceDaemon::open_state() {
  if (options_.state_dir.empty()) return;
  store_ = std::make_unique<PersistentStore>(StoreOptions{
      .directory = options_.state_dir + "/store",
      .max_bytes = options_.store_max_bytes,
      .telemetry = &telemetry_,
  });
  journal_ = std::make_unique<Journal>(JournalOptions{
      .path = options_.state_dir + "/journal.bin",
      .fsync_each = options_.fsync_journal,
      .telemetry = &telemetry_,
  });
  const JournalReplay replay = journal_->open();
  auto& metrics = obs::MetricsRegistry::global();

  for (const ReplayedJob& replayed : replay.jobs) {
    api::JobSpec spec;
    try {
      spec = api::JobSpec::from_json(Json::parse(replayed.spec_json));
      spec.validate();
    } catch (const std::exception&) {
      continue;  // CRC-valid but unparseable spec: nothing to re-run
    }

    // A job with a done record whose result still resolves in the store
    // is restored terminal; if the store entry was evicted or quarantined
    // the job is simply recomputed (results are deterministic).
    if (replayed.outcome == ReplayedJob::Outcome::kDone) {
      std::optional<std::string> blob;
      if (const auto key = StoreKey::from_hex(replayed.store_key)) {
        blob = store_->get(*key);
      }
      std::optional<api::JobResult> result;
      if (blob.has_value()) {
        try {
          result = api::JobResult::from_json(Json::parse(*blob));
        } catch (const std::exception&) {
          // CRC-valid but unparseable payload: recompute below
        }
      }
      if (result.has_value()) {
        queue_.restore_done(replayed.id, replayed.session, std::move(spec),
                            std::move(*result));
        continue;
      }
    } else if (replayed.outcome == ReplayedJob::Outcome::kFailed) {
      queue_.restore_failed(replayed.id, replayed.session, std::move(spec),
                            replayed.error, replayed.error_code);
      continue;
    } else if (replayed.outcome == ReplayedJob::Outcome::kCancelled) {
      queue_.restore_cancelled(replayed.id, replayed.session, std::move(spec));
      continue;
    }

    // Admitted but incomplete: re-queue exactly once — unless the journal
    // shows the job was dispatched max_attempts times without ever
    // completing, i.e. it keeps taking the daemon down.  Quarantine it
    // with a structured failure instead of crash-looping.
    if (replayed.dispatches >= options_.max_attempts) {
      const std::string error = str_printf(
          "job quarantined after %lld dispatch attempts without completion",
          static_cast<long long>(replayed.dispatches));
      queue_.restore_failed(replayed.id, replayed.session, std::move(spec),
                            error, "QUARANTINED");
      journal_->complete_failed(replayed.id, "QUARANTINED", error);
      metrics.add("service.jobs_quarantined");
      continue;
    }
    queue_.restore_queued(replayed.id, replayed.session, std::move(spec),
                          replayed.dispatches);
    metrics.add("service.jobs_recovered");
  }
  if (options_.log != nullptr && replay.records > 0) {
    options_.log->info(
        "service.journal_replayed",
        Json::object()
            .set("jobs", static_cast<std::int64_t>(replay.jobs.size()))
            .set("records", static_cast<std::int64_t>(replay.records))
            .set("truncated_tail", replay.truncated_tail));
  }
}

void ServiceDaemon::start() {
  open_state();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw Error(str_printf("socket path too long (%zu bytes, limit %zu): %s",
                           options_.socket_path.size(),
                           sizeof(addr.sun_path) - 1,
                           options_.socket_path.c_str()));
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(str_printf("socket() failed: %s", std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a prior run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(str_printf("bind(%s) failed: %s",
                           options_.socket_path.c_str(), std::strerror(err)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(str_printf("listen(%s) failed: %s",
                           options_.socket_path.c_str(), std::strerror(err)));
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  if (options_.job_timeout_ms > 0) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
  if (!options_.telemetry_dump.empty()) {
    telemetry_thread_ = std::thread([this] { telemetry_dump_loop(); });
  }
  if (options_.log != nullptr) {
    options_.log->info(
        "service.listening",
        Json::object()
            .set("socket", options_.socket_path)
            .set("capacity",
                 static_cast<std::int64_t>(options_.queue_capacity)));
  }
}

void ServiceDaemon::close_listener() {
  std::lock_guard lock(conn_mutex_);
  accepting_ = false;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept(2)
  }
}

void ServiceDaemon::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal: either way, stop accepting)
    }
    std::uint64_t session_id = 0;
    {
      std::lock_guard lock(conn_mutex_);
      if (!accepting_) {
        ::close(fd);
        return;
      }
      session_id = next_session_++;
      conn_fds_.emplace(session_id, fd);
      conn_threads_.emplace_back(
          [this, fd, session_id] { handle_connection(fd, session_id); });
    }
    obs::MetricsRegistry::global().add("service.connections");
  }
}

void ServiceDaemon::handle_connection(int fd, std::uint64_t session_id) {
  auto& metrics = obs::MetricsRegistry::global();
  try {
    std::string payload;
    while (true) {
      const FrameRead frame =
          read_frame_limited(fd, payload, options_.max_frame_bytes);
      if (frame.status == FrameRead::Status::kEof) break;
      if (frame.status == FrameRead::Status::kTooLarge) {
        // A structured error frame instead of a dropped connection: the
        // client learns WHY.  When the oversized payload could not be
        // discarded the stream is out of alignment and must close.
        metrics.add("service.frames_rejected");
        write_message(fd, error_response(
                              str_printf("request frame of %u bytes exceeds "
                                         "the %u-byte limit",
                                         frame.length,
                                         options_.max_frame_bytes),
                              false, "FRAME_TOO_LARGE"));
        if (!frame.resynced) break;
        continue;
      }
      metrics.add("service.requests");
      Json response;
      try {
        response = handle_request(Json::parse(payload), session_id);
      } catch (const std::exception& e) {
        response = error_response(e.what());
      }
      // A response that cannot fit one frame (a huge JobResult) must not
      // be truncated or silently dropped — substitute a structured
      // RESULT_TOO_LARGE error so the client fails loudly.
      std::string dump = response.dump();
      if (dump.size() > options_.max_frame_bytes) {
        metrics.add("service.results_too_large");
        response = error_response(
            str_printf("response of %zu bytes exceeds the %u-byte frame "
                       "limit",
                       dump.size(), options_.max_frame_bytes),
            false, "RESULT_TOO_LARGE");
        dump = response.dump();
      }
      const double t_respond0 = wall_ms_now();
      write_frame(fd, dump);
      telemetry_.record(Stage::kRespond, wall_ms_now() - t_respond0);
    }
  } catch (const std::exception&) {
    // Torn frame or socket error: drop the connection.  The daemon's
    // state is already consistent — per-request effects are applied
    // before the response is written.
  }
  {
    std::lock_guard lock(conn_mutex_);
    conn_fds_.erase(session_id);
  }
  ::close(fd);
}

Json ServiceDaemon::handle_request(const Json& request,
                                   std::uint64_t session_id) {
  const std::string op = request.contains("op")
                             ? request.at("op").as_string()
                             : throw Error("request is missing \"op\"");

  if (op == "ping") {
    return ok_response().set("protocol", kProtocolVersion);
  }

  if (op == "submit") {
    const double t_admit0 = wall_ms_now();
    if (!request.contains("spec")) {
      return error_response("submit is missing the \"spec\" field");
    }
    api::JobSpec spec;
    try {
      spec = api::JobSpec::from_json(request.at("spec"));
      spec.validate();
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
    // Optional client trace context; a malformed id degrades to untraced.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    if (const Json* f = request.find("trace_id")) {
      trace_id = parse_trace_hex(f->as_string());
    }
    if (const Json* f = request.find("span_id")) {
      span_id = parse_trace_hex(f->as_string());
    }
    // The ADMIT record needs the canonical document; capture it before the
    // spec is moved into the queue.
    const std::string spec_json =
        journal_ != nullptr ? spec.canonical_json() : std::string();
    std::string error;
    bool retryable = false;
    const double now = wall_ms_now();
    const std::int64_t id = queue_.submit(session_id, std::move(spec), error,
                                          retryable, now, trace_id, span_id);
    if (id == 0) {
      obs::MetricsRegistry::global().add("service.jobs_rejected");
      return error_response(error, retryable);
    }
    if (journal_ != nullptr) journal_->admit(id, session_id, spec_json);
    obs::MetricsRegistry::global().add("service.jobs_submitted");
    telemetry_.record_admit(session_id, now);
    telemetry_.record(Stage::kAdmit, wall_ms_now() - t_admit0);
    return ok_response().set("id", id);
  }

  if (op == "analyze") {
    // Synchronous static analysis: no simulation, so it runs inline on
    // the session thread instead of the job queue.  Returns the v2
    // analyzer report (diagnostics, fix-its, certified bounds) and — with
    // "fix": true — the repair summary plus the repaired schedule's
    // report.
    if (!request.contains("spec")) {
      return error_response("analyze is missing the \"spec\" field");
    }
    try {
      const api::JobSpec spec = api::JobSpec::from_json(request.at("spec"));
      spec.validate();
      core::PowerMode mode = core::PowerMode::kDrpm;
      if (const Json* f = request.find("mode")) {
        if (f->as_string() == "CMTPM") {
          mode = core::PowerMode::kTpm;
        } else if (f->as_string() != "CMDRPM") {
          return error_response("unknown analyze mode \"" +
                                f->as_string() + "\"");
        }
      }
      std::optional<analysis::Mutation> mutation;
      if (const Json* f = request.find("mutate")) {
        mutation = analysis::mutation_from_name(f->as_string());
        if (!mutation) {
          return error_response("unknown mutation \"" + f->as_string() +
                                "\"");
        }
      }
      const bool fix =
          request.contains("fix") && request.at("fix").as_bool();
      obs::MetricsRegistry::global().add("service.analyzes");
      if (!fix) {
        const analysis::AnalysisReport report =
            session_.analyze(spec, mode, mutation);
        return ok_response().set(
            "report", Json::parse(analysis::render_json(report)));
      }
      const analysis::RepairOutcome outcome =
          session_.repair(spec, mode, mutation);
      Json ids = Json::array();
      for (const std::string& id : outcome.applied_ids) ids.push_back(id);
      Json repair = Json::object();
      repair.set("rounds", outcome.rounds)
          .set("fixits_applied", outcome.fixits_applied)
          .set("fixits_skipped", outcome.fixits_skipped)
          .set("converged", outcome.converged)
          .set("applied", std::move(ids));
      return ok_response()
          .set("report",
               Json::parse(analysis::render_json(outcome.final_report)))
          .set("repair", std::move(repair));
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }

  if (op == "status") {
    const auto snap = queue_.snapshot(require_id(request));
    if (!snap) return error_response("no such job");
    return ok_response().set("job", snapshot_json(*snap));
  }

  if (op == "result") {
    const std::int64_t id = require_id(request);
    const bool wait =
        request.contains("wait") && request.at("wait").as_bool();
    const auto snap = wait ? queue_.wait_terminal(id) : queue_.snapshot(id);
    if (!snap) return error_response("no such job");
    return ok_response().set("job", snapshot_json(*snap));
  }

  if (op == "cancel") {
    const std::int64_t id = require_id(request);
    std::string error;
    if (!queue_.cancel(id, error)) {
      return error_response(error);
    }
    if (journal_ != nullptr) journal_->cancel(id);
    obs::MetricsRegistry::global().add("service.jobs_cancelled");
    return ok_response();
  }

  if (op == "stats") {
    const QueueStats stats = queue_.stats();
    Json queue = Json::object();
    queue.set("depth", static_cast<std::int64_t>(stats.depth))
        .set("running", static_cast<std::int64_t>(stats.running))
        .set("capacity", static_cast<std::int64_t>(stats.capacity))
        .set("submitted", stats.submitted)
        .set("completed", stats.completed)
        .set("failed", stats.failed)
        .set("cancelled", stats.cancelled)
        .set("rejected", stats.rejected)
        .set("recovered", stats.recovered)
        .set("timed_out", stats.timed_out)
        .set("draining", stats.draining);
    Json counters = Json::object();
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    for (const auto& [name, value] : snapshot.counters) {
      counters.set(name, value);
    }
    Json cache = Json::object();
    auto& trace_cache = experiments::TraceCache::global();
    cache.set("size", static_cast<std::int64_t>(trace_cache.size()))
        .set("enabled", trace_cache.enabled());
    Json response = ok_response()
                        .set("protocol", kProtocolVersion)
                        .set("queue", queue)
                        .set("counters", counters)
                        .set("trace_cache", cache);
    if (store_ != nullptr) {
      const StoreStats store_stats = store_->stats();
      Json store = Json::object();
      store.set("entries", static_cast<std::int64_t>(store_stats.entries))
          .set("bytes", store_stats.bytes)
          .set("hits", store_stats.hits)
          .set("misses", store_stats.misses)
          .set("evictions", store_stats.evictions)
          .set("corrupt_evictions", store_stats.corrupt_evictions);
      response.set("store", store);
    }
    if (journal_ != nullptr) {
      const JournalStats journal_stats = journal_->stats();
      Json journal = Json::object();
      journal.set("appends", journal_stats.appends)
          .set("fsyncs", journal_stats.fsyncs)
          .set("compactions", journal_stats.compactions)
          .set("torn_tail_truncations", journal_stats.torn_tail_truncations);
      response.set("journal", journal);
    }
    return response;
  }

  if (op == "telemetry") {
    Json response = ok_response()
                        .set("protocol", kProtocolVersion)
                        .set("telemetry", telemetry_.to_json(wall_ms_now()));
    const Json* prometheus = request.find("prometheus");
    if (prometheus != nullptr && prometheus->as_bool()) {
      response.set("text", telemetry_.prometheus_text());
    }
    return response;
  }

  if (op == "drain") {
    request_drain();
    return ok_response().set("draining", true);
  }

  if (op == "shutdown") {
    request_shutdown();
    return ok_response().set("shutting_down", true);
  }

  return error_response(str_printf("unknown op \"%s\"", op.c_str()));
}

void ServiceDaemon::dispatch_loop() {
  while (true) {
    const auto batch = queue_.pop_batch(options_.max_batch, wall_ms_now());
    if (batch.empty()) return;  // stopped, or draining with nothing left
    const double pop_ms = wall_ms_now();
    for (const auto& job : batch) {
      // Journal-recovered jobs carry admit_ms == -1: their queue wait
      // spans a daemon restart and would poison the histogram.
      if (job->admit_ms >= 0) {
        telemetry_.record(Stage::kQueueWait, job->started_ms - job->admit_ms);
        emit_stage(job, "queued", job->admit_ms, job->started_ms);
      }
    }
    // DISPATCH is journaled before the work runs: a job that takes the
    // daemon down mid-evaluation accumulates dispatch records, which is
    // exactly the signal the poison-job quarantine counts at recovery.
    if (journal_ != nullptr) {
      for (const auto& job : batch) journal_->dispatch(job->id);
    }
    run_batch_jobs(batch, pop_ms);
  }
}

void ServiceDaemon::watchdog_loop() {
  auto& metrics = obs::MetricsRegistry::global();
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto expired =
        queue_.expire_overdue(wall_ms_now(), options_.job_timeout_ms);
    for (const auto& job : expired) {
      if (journal_ != nullptr) {
        journal_->complete_failed(job->id, "JOB_TIMEOUT", job->error);
      }
      telemetry_.record(Stage::kEval, job->wall_ms);
      record_outcome(job, false);
      if (options_.log != nullptr) {
        options_.log->warn("service.job_timeout",
                           Json::object()
                               .set("id", job->id)
                               .set("wall_ms", job->wall_ms));
      }
      metrics.add("service.jobs_failed");
      metrics.add("service.jobs_timed_out");
    }
  }
}

void ServiceDaemon::finish_job(const std::shared_ptr<Job>& job,
                               api::JobResult result, double wall_ms) {
  auto& metrics = obs::MetricsRegistry::global();
  // The store is written before the journal's COMPLETE record so the
  // record's key always resolves after a crash between the two.
  std::string store_key_hex;
  if (store_ != nullptr) {
    const StoreKey key = fingerprint_bytes(job->spec.canonical_json());
    store_->put(key, result.to_json().dump());
    store_key_hex = key.hex();
  }
  if (!queue_.complete(job, std::move(result), wall_ms)) {
    return;  // the watchdog timed this job out first; drop the late result
  }
  if (journal_ != nullptr) journal_->complete_done(job->id, store_key_hex);
  metrics.add("service.jobs_completed");
  metrics.observe("service.job_wall_ms", wall_ms);
  telemetry_.record(Stage::kEval, wall_ms);
  const double now = wall_ms_now();
  emit_stage(job, "eval", now - wall_ms, now);
  record_outcome(job, true);
}

void ServiceDaemon::finish_job_failed(const std::shared_ptr<Job>& job,
                                      std::string error, double wall_ms,
                                      const char* code) {
  if (!queue_.fail(job, error, wall_ms, code)) return;
  if (journal_ != nullptr) journal_->complete_failed(job->id, code, error);
  obs::MetricsRegistry::global().add("service.jobs_failed");
  telemetry_.record(Stage::kEval, wall_ms);
  const double now = wall_ms_now();
  emit_stage(job, "eval", now - wall_ms, now);
  record_outcome(job, false);
}

void ServiceDaemon::record_outcome(const std::shared_ptr<Job>& job, bool ok) {
  // Journal-recovered jobs (admit_ms == -1) have no admission timestamp on
  // this daemon's clock; their e2e latency is undefined and not recorded.
  if (job->admit_ms < 0) return;
  const double now = wall_ms_now();
  telemetry_.record_outcome(job->session, now - job->admit_ms, ok, now);
}

void ServiceDaemon::emit_stage(const std::shared_ptr<Job>& job,
                               const char* stage, double t0, double t1) {
  obs::EventTracer* tracer = obs::effective_tracer(options_.tracer);
  if (tracer == nullptr || job->trace_id == 0) return;
  obs::Event e;
  e.kind = obs::EventKind::kServiceStage;
  e.t0 = t0;
  e.t1 = t1;
  e.label = stage;
  e.value = static_cast<double>(job->id);
  // One Chrome-trace lane per client connection keeps concurrent clients'
  // lifecycles visually separate without unbounded tids.
  e.level = static_cast<int>(job->session % 64);
  e.trace_id = job->trace_id;
  tracer->emit(e);
}

void ServiceDaemon::run_batch_jobs(
    const std::vector<std::shared_ptr<Job>>& batch, double pop_ms) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.observe("service.batch_size", static_cast<double>(batch.size()));
  obs::EventTracer* tracer = obs::effective_tracer(options_.tracer);

  const double t0 = wall_ms_now();
  // pop -> evaluation start: the DISPATCH journaling window, charged once
  // per job in the batch.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    telemetry_.record(Stage::kDispatch, t0 - pop_ms);
  }
  std::vector<std::unique_ptr<obs::Span>> spans;
  if (tracer != nullptr) {
    spans.reserve(batch.size());
    for (const auto& job : batch) {
      spans.push_back(
          std::make_unique<obs::Span>(tracer, job->label.c_str(), t0));
    }
  }

  // Persistent-store fast path: a job whose result survives from a prior
  // daemon life (or an identical earlier job) completes without touching
  // the simulator.  Only the misses go to the batch sweep.
  std::vector<std::shared_ptr<Job>> misses;
  misses.reserve(batch.size());
  for (const auto& job : batch) {
    std::optional<api::JobResult> cached;
    if (store_ != nullptr) {
      const StoreKey key = fingerprint_bytes(job->spec.canonical_json());
      if (const auto blob = store_->get(key)) {
        try {
          cached = api::JobResult::from_json(Json::parse(*blob));
        } catch (const std::exception&) {
          // CRC-valid but unparseable: recompute.
        }
      }
    }
    if (cached.has_value()) {
      const double wall = wall_ms_now() - t0;
      if (queue_.complete(job, std::move(*cached), wall)) {
        if (journal_ != nullptr) {
          journal_->complete_done(
              job->id, fingerprint_bytes(job->spec.canonical_json()).hex());
        }
        metrics.add("service.jobs_completed");
        metrics.observe("service.job_wall_ms", wall);
        telemetry_.record(Stage::kEval, wall);
        const double now = wall_ms_now();
        emit_stage(job, "eval", now - wall, now);
        record_outcome(job, true);
      }
    } else {
      misses.push_back(job);
    }
  }

  // A traced job (client-supplied trace_id, tracer attached) runs on its
  // own with the replay tracer hooked up, so its simulated-time disk
  // tracks land in the same event stream as its wall-time service lane.
  // Everything else goes through the shared batch sweep.
  std::vector<std::shared_ptr<Job>> plain;
  plain.reserve(misses.size());
  for (const auto& job : misses) {
    if (tracer == nullptr || job->trace_id == 0) {
      plain.push_back(job);
      continue;
    }
    const double job_t0 = wall_ms_now();
    try {
      api::RunHooks hooks;
      hooks.replay_tracer = tracer;
      if (job->spec.schemes.size() == 1) {
        const auto scheme = api::scheme_from_name(job->spec.schemes.front());
        if (scheme.has_value() && *scheme != experiments::Scheme::kItpm &&
            *scheme != experiments::Scheme::kIdrpm) {
          hooks.trace_scheme = *scheme;  // oracle schemes cannot replay
        }
      }
      api::JobResult result = session_.run(job->spec, hooks);
      // Stitch marker: a simulated-clock span carrying the client's
      // trace id over the traced scheme's execution window is what links
      // the wall-time service lane (same trace_id) to the disk tracks.
      if (hooks.trace_scheme.has_value() && !result.schemes.empty()) {
        obs::Event begin;
        begin.kind = obs::EventKind::kSpanBegin;
        begin.t0 = 0;
        begin.t1 = 0;
        begin.label = job->label.c_str();
        begin.trace_id = job->trace_id;
        tracer->emit(begin);
        obs::Event end = begin;
        end.kind = obs::EventKind::kSpanEnd;
        end.t0 = result.schemes.front().execution_ms;
        end.t1 = end.t0;
        tracer->emit(end);
      }
      finish_job(job, std::move(result), wall_ms_now() - job_t0);
    } catch (const std::exception& e) {
      finish_job_failed(job, e.what(), wall_ms_now() - job_t0, "EXEC_ERROR");
    }
  }

  bool batched_ok = true;
  if (!plain.empty()) {
    try {
      std::vector<api::JobSpec> specs;
      specs.reserve(plain.size());
      for (const auto& job : plain) specs.push_back(job->spec);
      std::vector<api::JobResult> results = session_.run_batch(specs);
      const double wall = wall_ms_now() - t0;
      for (std::size_t i = 0; i < plain.size(); ++i) {
        finish_job(plain[i], std::move(results[i]), wall);
      }
    } catch (const std::exception&) {
      batched_ok = false;
    }
  }

  if (!batched_ok) {
    // The sweep failed as a whole; re-run per job so the error lands on
    // the job that caused it and the rest of the batch still completes.
    for (const auto& job : plain) {
      const double job_t0 = wall_ms_now();
      try {
        api::JobResult result = session_.run(job->spec);
        finish_job(job, std::move(result), wall_ms_now() - job_t0);
      } catch (const std::exception& e) {
        finish_job_failed(job, e.what(), wall_ms_now() - job_t0,
                          "EXEC_ERROR");
      }
    }
  }

  const double t1 = wall_ms_now();
  for (auto& span : spans) span->end(t1);
}

void ServiceDaemon::request_drain() {
  if (options_.log != nullptr && !queue_.draining()) {
    options_.log->info("service.draining", Json::object());
  }
  queue_.begin_drain();
}

void ServiceDaemon::request_shutdown() {
  if (options_.log != nullptr &&
      !shutdown_requested_.load(std::memory_order_acquire)) {
    options_.log->info("service.shutdown_requested", Json::object());
  }
  queue_.begin_drain();
  shutdown_requested_.store(true, std::memory_order_release);
  // wait() polls shutdown_requested_; no other thread blocks on it.
}

void ServiceDaemon::telemetry_dump_loop() {
  const double interval_ms = options_.telemetry_interval_ms < 10
                                 ? 10
                                 : options_.telemetry_interval_ms;
  double next_ms = wall_ms_now() + interval_ms;
  while (!telemetry_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (wall_ms_now() < next_ms) continue;
    dump_telemetry();
    next_ms = wall_ms_now() + interval_ms;
  }
}

void ServiceDaemon::dump_telemetry() {
  if (options_.telemetry_dump.empty()) return;
  const std::string temp = options_.telemetry_dump + ".tmp";
  {
    std::ofstream os(temp, std::ios::trunc);
    if (!os) return;  // unwritable dump path must not take the daemon down
    os << telemetry_.to_json(wall_ms_now()).dump() << "\n";
  }
  // Atomic swap: a scraper reading the dump never sees a torn file.
  std::rename(temp.c_str(), options_.telemetry_dump.c_str());
}

void ServiceDaemon::wait() {
  if (done_.load(std::memory_order_acquire)) return;
  // Phase 1: wait for a shutdown request, then for the queue to drain
  // (instant when the queue was stop()ed — drained-or-stopped is the
  // wait_drained predicate).
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  queue_.wait_drained();

  // Phase 2: tear down I/O.  Closing the listener unblocks accept();
  // shutting the read side of each connection unblocks its handler's
  // read without tearing a response write that is still in flight.
  close_listener();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_.stop();  // release any handler still blocked in wait_terminal
  {
    std::lock_guard lock(conn_mutex_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(conn_mutex_);
    handlers.swap(conn_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  telemetry_stop_.store(true, std::memory_order_release);
  if (telemetry_thread_.joinable()) telemetry_thread_.join();
  dump_telemetry();  // final snapshot; no-op without --telemetry-dump
  if (journal_ != nullptr) journal_->close();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (options_.log != nullptr) {
    options_.log->info("service.stopped", Json::object());
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace sdpm::service
