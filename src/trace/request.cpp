#include "trace/request.h"

#include <ostream>

#include "util/strings.h"

namespace sdpm::trace {

void Trace::write_text(std::ostream& os) const {
  os << "# arrival_ms disk start_sector size_bytes type\n";
  for (const Request& r : requests) {
    os << str_printf("%.6f %d %lld %lld %c\n", r.arrival_ms, r.disk,
                     static_cast<long long>(r.start_sector),
                     static_cast<long long>(r.size_bytes),
                     r.kind == ir::AccessKind::kRead ? 'R' : 'W');
  }
}

}  // namespace sdpm::trace
