#include "trace/request.h"

#include <ostream>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::trace {

Trace repeat_trace(const Trace& trace, int timesteps) {
  SDPM_REQUIRE(timesteps >= 1, "repeat_trace needs timesteps >= 1");
  Trace out;
  out.total_disks = trace.total_disks;
  out.compute_total_ms = trace.compute_total_ms * timesteps;
  out.bytes_transferred = trace.bytes_transferred * timesteps;
  out.requests.reserve(trace.requests.size() *
                       static_cast<std::size_t>(timesteps));
  out.power_events.reserve(trace.power_events.size() *
                           static_cast<std::size_t>(timesteps));
  const std::int64_t iters_per_step =
      trace.requests.empty() ? 0 : trace.requests.back().global_iter + 1;
  for (int t = 0; t < timesteps; ++t) {
    const TimeMs shift = trace.compute_total_ms * t;
    for (Request r : trace.requests) {
      r.arrival_ms += shift;
      r.global_iter += iters_per_step * t;
      out.requests.push_back(r);
    }
    for (PowerEvent e : trace.power_events) {
      e.app_time_ms += shift;
      e.global_iter += iters_per_step * t;
      out.power_events.push_back(e);
    }
  }
  return out;
}

void Trace::write_text(std::ostream& os) const {
  os << "# arrival_ms disk start_sector size_bytes type\n";
  for (const Request& r : requests) {
    os << str_printf("%.6f %d %lld %lld %c\n", r.arrival_ms, r.disk,
                     static_cast<long long>(r.start_sector),
                     static_cast<long long>(r.size_bytes),
                     r.kind == ir::AccessKind::kRead ? 'R' : 'W');
  }
}

}  // namespace sdpm::trace
