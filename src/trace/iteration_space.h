// Global iteration coordinates across a whole program.
//
// Analyses that span nest boundaries (DAP idle periods, power-call
// placement) need a single monotone coordinate for "how far execution has
// progressed".  We concatenate the flat iteration ranges of all nests in
// program order: global iteration g covers nest n iterations
// [nest_begin(n), nest_end(n)).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace sdpm::trace {

class IterationSpace {
 public:
  explicit IterationSpace(const ir::Program& program);

  /// Total innermost iterations across all nests.
  std::int64_t total() const { return total_; }

  int nest_count() const { return static_cast<int>(begin_.size()); }

  /// First global iteration of nest `n`.
  std::int64_t nest_begin(int n) const;

  /// One past the last global iteration of nest `n`.
  std::int64_t nest_end(int n) const;

  /// Global coordinate of an iteration point.
  std::int64_t global_of(const ir::IterationPoint& point) const;

  /// Inverse of global_of.  `g == total()` maps to the end of the last
  /// nest.
  ir::IterationPoint point_of(std::int64_t g) const;

 private:
  std::vector<std::int64_t> begin_;  // per nest
  std::int64_t total_ = 0;
};

}  // namespace sdpm::trace
