// Stall-aware execution-time estimate.
//
// The paper's cycle estimates come from measuring the actual program, so
// they reflect not just compute but the I/O time the execution spends
// blocked.  Those stalls are *bursty* — they occur exactly at the
// iterations that issue disk requests — and pre-activation placement (how
// many iterations before the next use a spin-up must start) is only
// accurate when that burstiness is modelled: the iterations between two
// request bursts pass at pure compute speed, not at the nest's average
// rate.
//
// StallAwareTimeline therefore estimates
//   t(g) = compute_timeline(g) + sum of responses of requests issued
//          before iteration g,
// which the compiler can build entirely from information it already has:
// its (possibly noisy) per-nest cycle estimates and the request stream it
// derived during DAP analysis, priced at a measured average response time.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/timeline.h"

namespace sdpm::trace {

class StallAwareTimeline final : public TimeEstimate {
 public:
  /// `miss_iters` is the (sorted, possibly repeating) global iteration of
  /// every disk request; `responses` the per-request stall times, aligned
  /// with `miss_iters`.
  StallAwareTimeline(Timeline compute, std::vector<std::int64_t> miss_iters,
                     const std::vector<TimeMs>& responses);

  /// Convenience: price every request at a flat `avg_response_ms`.
  StallAwareTimeline(Timeline compute, std::vector<std::int64_t> miss_iters,
                     TimeMs avg_response_ms);

  TimeMs at_global(std::int64_t g) const override;
  std::int64_t total_iterations() const override {
    return compute_.total_iterations();
  }

  const Timeline& compute() const { return compute_; }

  /// Total stall time across all requests.
  TimeMs total_stall_ms() const {
    return cum_stall_.empty() ? 0.0 : cum_stall_.back();
  }

 private:
  Timeline compute_;
  std::vector<std::int64_t> miss_iters_;  // sorted
  std::vector<TimeMs> cum_stall_;         // prefix sums, same length
};

}  // namespace sdpm::trace
