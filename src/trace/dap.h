// Disk Access Pattern (DAP) — paper §3.
//
// For each disk, the DAP records the iteration ranges during which the disk
// is accessed ("active") and the gaps between them ("idle"), in iteration
// coordinates: "an entry for a given disk looks like <Nest 1, iteration 1,
// idle> <Nest 2, iteration 50, active> ...".  The compiler derives it by
// combining the data access pattern with the disk layout of each array —
// here by running the exact same access model as the trace generator.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"
#include "layout/layout_table.h"
#include "trace/generator.h"
#include "trace/iteration_space.h"
#include "util/interval_set.h"

namespace sdpm::trace {

class DiskAccessPattern {
 public:
  /// Analyze `program` against `layout`; `options` controls block size and
  /// buffer-cache model (timing options are ignored — a DAP is purely in
  /// iteration coordinates).
  static DiskAccessPattern analyze(const ir::Program& program,
                                   const layout::LayoutTable& layout,
                                   const GeneratorOptions& options = {});

  /// Build directly from a miss stream (shared with the trace generator).
  DiskAccessPattern(const ir::Program& program, int total_disks,
                    const std::vector<MissRecord>& misses);

  int disk_count() const { return static_cast<int>(active_.size()); }

  const IterationSpace& space() const { return space_; }

  /// Global iterations at which `disk` is accessed, as coalesced intervals.
  const IntervalSet& active_iterations(int disk) const;

  /// Idle periods of `disk` within the whole program, as coalesced
  /// intervals of global iterations (complement of the active set).
  IntervalSet idle_periods(int disk) const;

  /// True if the disk is never accessed by the program.
  bool never_accessed(int disk) const {
    return active_iterations(disk).empty();
  }

  /// Paper-style transition list for one disk: one entry per state change.
  struct Transition {
    ir::IterationPoint point;
    bool active = false;
  };
  std::vector<Transition> transitions(int disk) const;

  /// Render the paper-style DAP listing, e.g.
  ///   disk0: <Nest 0, iteration 0, active> <Nest 1, iteration 50, idle>
  std::string to_string(const ir::Program& program) const;

 private:
  IterationSpace space_;
  std::vector<IntervalSet> active_;  // per disk
};

}  // namespace sdpm::trace
