#include "trace/walker.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/error.h"

namespace sdpm::trace {

namespace {

/// Static (per-nest) description of one array reference.
struct RefInfo {
  int statement = 0;
  int ref_index = 0;
  ir::ArrayId array = -1;
  ir::AccessKind kind = ir::AccessKind::kRead;
  Bytes file_size = 0;
  Bytes block_size = 0;
  /// Byte-offset delta per innermost trip (B in off(t) = A + B*t).
  Bytes inner_stride = 0;
  /// Linear-index coefficient of each loop (outer-to-inner, excluding the
  /// contribution folded into inner_stride), plus the constant part, both
  /// in *bytes*.
  std::vector<Bytes> outer_coef;  // per loop, bytes per iterator unit
  Bytes const_bytes = 0;
};

/// A lazy stream of block-entry events for one reference within one inner
/// sweep: emits (trip, block) pairs in increasing trip order.
struct RefStream {
  const RefInfo* info = nullptr;
  Bytes base = 0;          // A: byte offset at trip 0
  std::int64_t trips = 0;  // innermost trip count
  std::int64_t next_trip = 0;
  std::int64_t current_block = -1;  // block emitted at next_trip
  bool exhausted = false;

  void start(Bytes a, std::int64_t t) {
    base = a;
    trips = t;
    next_trip = 0;
    exhausted = trips <= 0;
    if (!exhausted) current_block = a / info->block_size;
  }

  /// Advance to the next block-entry event; sets exhausted when the sweep
  /// has no further new blocks.
  void advance() {
    const Bytes b = info->inner_stride;
    const Bytes bs = info->block_size;
    if (b == 0) {
      exhausted = true;
      return;
    }
    const Bytes off = base + b * next_trip;
    std::int64_t t_next;
    if (b > 0) {
      const Bytes target = (current_block + 1) * bs;  // first byte of next block
      t_next = next_trip + (target - off + b - 1) / b;
    } else {
      // Need off' <= current_block*bs - 1; drop of (off - current_block*bs + 1).
      const Bytes drop = off - current_block * bs + 1;
      t_next = next_trip + (drop + (-b) - 1) / (-b);
    }
    if (t_next >= trips) {
      exhausted = true;
      return;
    }
    next_trip = t_next;
    current_block = (base + b * t_next) / bs;
  }
};

struct HeapEntry {
  std::int64_t trip;
  int statement;
  int ref_index;
  std::size_t stream;

  bool operator>(const HeapEntry& other) const {
    if (trip != other.trip) return trip > other.trip;
    if (statement != other.statement) return statement > other.statement;
    return ref_index > other.ref_index;
  }
};

void walk_nest(const ir::Program& program, int nest_index,
               const BlockSizeFn& block_size_of, const TouchCallback& fn) {
  const ir::LoopNest& nest =
      program.nests[static_cast<std::size_t>(nest_index)];
  const int depth = nest.depth();
  const ir::Loop& inner = nest.loops[static_cast<std::size_t>(depth - 1)];
  const std::int64_t inner_trips = inner.trip_count();

  // Build static reference descriptions.
  std::vector<RefInfo> refs;
  for (int si = 0; si < static_cast<int>(nest.body.size()); ++si) {
    const ir::Statement& stmt = nest.body[static_cast<std::size_t>(si)];
    for (int ri = 0; ri < static_cast<int>(stmt.refs.size()); ++ri) {
      const ir::ArrayRef& ref = stmt.refs[static_cast<std::size_t>(ri)];
      const ir::Array& array = program.array(ref.array);
      RefInfo info;
      info.statement = si;
      info.ref_index = ri;
      info.array = ref.array;
      info.kind = ref.kind;
      info.file_size = array.size_bytes();
      info.block_size = block_size_of(ref.array);
      SDPM_REQUIRE(info.block_size > 0 &&
                       info.block_size % array.element_size == 0,
                   "block size must be a positive multiple of the element "
                   "size of array '" + array.name + "'");
      info.outer_coef.assign(static_cast<std::size_t>(depth), 0);
      for (int d = 0; d < array.rank(); ++d) {
        const ir::AffineExpr& sub =
            ref.subscripts[static_cast<std::size_t>(d)];
        const Bytes dim_bytes = array.dim_stride(d) * array.element_size;
        info.const_bytes += sub.constant * dim_bytes;
        for (int k = 0; k < depth; ++k) {
          const std::int64_t c = sub.coef(static_cast<std::size_t>(k));
          if (c == 0) continue;
          info.outer_coef[static_cast<std::size_t>(k)] += c * dim_bytes;
        }
      }
      // Fold the innermost loop's contribution into the stride; the
      // remaining outer_coef entry for the innermost loop applies to its
      // *lower bound* contribution via the iterator value at trip 0.
      info.inner_stride =
          info.outer_coef[static_cast<std::size_t>(depth - 1)] * inner.step;
      refs.push_back(std::move(info));
    }
  }

  // Odometer over outer loops (all but innermost), tracking iterator values.
  std::vector<std::int64_t> trip(static_cast<std::size_t>(depth), 0);
  std::vector<std::int64_t> value(static_cast<std::size_t>(depth));
  for (int k = 0; k < depth; ++k) {
    value[static_cast<std::size_t>(k)] =
        nest.loops[static_cast<std::size_t>(k)].lower;
  }

  std::vector<RefStream> streams(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) streams[i].info = &refs[i];

  const std::int64_t outer_total = nest.iteration_count() / inner_trips;
  for (std::int64_t o = 0; o < outer_total; ++o) {
    // Base offset of every reference at innermost trip 0.
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const RefInfo& info = refs[i];
      Bytes a = info.const_bytes;
      for (int k = 0; k < depth; ++k) {
        a += info.outer_coef[static_cast<std::size_t>(k)] *
             value[static_cast<std::size_t>(k)];
      }
      // Validate the whole sweep's range once (offsets are linear in t).
      const Bytes last = a + info.inner_stride * (inner_trips - 1);
      SDPM_REQUIRE(a >= 0 && a < info.file_size && last >= 0 &&
                       last < info.file_size,
                   "array reference out of bounds in nest '" + nest.name +
                       "'");
      streams[i].start(a, inner_trips);
      if (!streams[i].exhausted) {
        heap.push(HeapEntry{streams[i].next_trip, info.statement,
                            info.ref_index, i});
      }
    }

    const std::int64_t flat_base = o * inner_trips;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      RefStream& stream = streams[top.stream];
      const RefInfo& info = *stream.info;
      BlockTouch touch;
      touch.nest = nest_index;
      touch.flat_iter = flat_base + stream.next_trip;
      touch.array = info.array;
      touch.block = stream.current_block;
      touch.kind = info.kind;
      touch.statement = info.statement;
      fn(touch);
      stream.advance();
      if (!stream.exhausted) {
        heap.push(HeapEntry{stream.next_trip, info.statement, info.ref_index,
                            top.stream});
      }
    }

    // Advance the outer odometer (innermost outer loop fastest).
    for (int k = depth - 2; k >= 0; --k) {
      const auto idx = static_cast<std::size_t>(k);
      const ir::Loop& loop = nest.loops[idx];
      if (++trip[idx] < loop.trip_count()) {
        value[idx] += loop.step;
        break;
      }
      trip[idx] = 0;
      value[idx] = loop.lower;
    }
  }
}

}  // namespace

void walk_block_touches(const ir::Program& program,
                        const BlockSizeFn& block_size_of,
                        const TouchCallback& fn) {
  for (int n = 0; n < static_cast<int>(program.nests.size()); ++n) {
    walk_nest(program, n, block_size_of, fn);
  }
}

void walk_block_touches(const ir::Program& program, Bytes block_size,
                        const TouchCallback& fn) {
  walk_block_touches(
      program, [block_size](ir::ArrayId) { return block_size; }, fn);
}

}  // namespace sdpm::trace
