#include "trace/walker.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/error.h"

namespace sdpm::trace {

namespace {

/// Static (per-nest) description of one array reference.
struct RefInfo {
  int statement = 0;
  int ref_index = 0;
  ir::ArrayId array = -1;
  ir::AccessKind kind = ir::AccessKind::kRead;
  Bytes file_size = 0;
  Bytes block_size = 0;
  /// Byte-offset delta per innermost trip (B in off(t) = A + B*t).
  Bytes inner_stride = 0;
  /// Linear-index coefficient of each loop (outer-to-inner, excluding the
  /// contribution folded into inner_stride), plus the constant part, both
  /// in *bytes*.
  std::vector<Bytes> outer_coef;  // per loop, bytes per iterator unit
  Bytes const_bytes = 0;
};

/// A lazy stream of block-entry events for one reference within one inner
/// sweep: emits (trip, block) pairs in increasing trip order.
struct RefStream {
  const RefInfo* info = nullptr;
  Bytes base = 0;          // A: byte offset at trip 0
  std::int64_t trips = 0;  // innermost trip count
  std::int64_t next_trip = 0;
  std::int64_t current_block = -1;  // block emitted at next_trip
  bool exhausted = false;

  void start(Bytes a, std::int64_t t) {
    base = a;
    trips = t;
    next_trip = 0;
    exhausted = trips <= 0;
    if (!exhausted) current_block = a / info->block_size;
  }

  /// Advance to the next block-entry event; sets exhausted when the sweep
  /// has no further new blocks.
  void advance() {
    const Bytes b = info->inner_stride;
    const Bytes bs = info->block_size;
    if (b == 0) {
      exhausted = true;
      return;
    }
    const Bytes off = base + b * next_trip;
    std::int64_t t_next;
    if (b > 0) {
      const Bytes target = (current_block + 1) * bs;  // first byte of next block
      t_next = next_trip + (target - off + b - 1) / b;
    } else {
      // Need off' <= current_block*bs - 1; drop of (off - current_block*bs + 1).
      const Bytes drop = off - current_block * bs + 1;
      t_next = next_trip + (drop + (-b) - 1) / (-b);
    }
    if (t_next >= trips) {
      exhausted = true;
      return;
    }
    next_trip = t_next;
    current_block = (base + b * t_next) / bs;
  }
};

struct HeapEntry {
  std::int64_t trip;
  int statement;
  int ref_index;
  std::size_t stream;

  bool operator>(const HeapEntry& other) const {
    if (trip != other.trip) return trip > other.trip;
    if (statement != other.statement) return statement > other.statement;
    return ref_index > other.ref_index;
  }
};

}  // namespace

// The cursor holds exactly the per-nest state of the original recursive
// walk — ref table, ref streams, the inner-sweep merge heap, and the outer
// odometer — so next() replays the original loop structure one emission at
// a time and yields the identical touch order.
struct TouchCursor::Impl {
  const ir::Program* program = nullptr;
  BlockSizeFn block_size_of;

  int nest = 0;  // current nest index; nest_count() when done

  // Per-nest state (rebuilt by enter_nest):
  std::vector<RefInfo> refs;
  std::vector<RefStream> streams;
  std::vector<std::int64_t> trip;   // outer odometer trips
  std::vector<std::int64_t> value;  // outer odometer iterator values
  std::int64_t inner_trips = 0;
  std::int64_t outer_total = 0;
  std::int64_t o = 0;  // current outer sweep index
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  int nest_count() const {
    return static_cast<int>(program->nests.size());
  }

  void enter_nest() {
    const ir::LoopNest& nest_ir =
        program->nests[static_cast<std::size_t>(nest)];
    const int depth = nest_ir.depth();
    const ir::Loop& inner =
        nest_ir.loops[static_cast<std::size_t>(depth - 1)];
    inner_trips = inner.trip_count();

    refs.clear();
    for (int si = 0; si < static_cast<int>(nest_ir.body.size()); ++si) {
      const ir::Statement& stmt =
          nest_ir.body[static_cast<std::size_t>(si)];
      for (int ri = 0; ri < static_cast<int>(stmt.refs.size()); ++ri) {
        const ir::ArrayRef& ref = stmt.refs[static_cast<std::size_t>(ri)];
        const ir::Array& array = program->array(ref.array);
        RefInfo info;
        info.statement = si;
        info.ref_index = ri;
        info.array = ref.array;
        info.kind = ref.kind;
        info.file_size = array.size_bytes();
        info.block_size = block_size_of(ref.array);
        SDPM_REQUIRE(info.block_size > 0 &&
                         info.block_size % array.element_size == 0,
                     "block size must be a positive multiple of the element "
                     "size of array '" + array.name + "'");
        info.outer_coef.assign(static_cast<std::size_t>(depth), 0);
        for (int d = 0; d < array.rank(); ++d) {
          const ir::AffineExpr& sub =
              ref.subscripts[static_cast<std::size_t>(d)];
          const Bytes dim_bytes = array.dim_stride(d) * array.element_size;
          info.const_bytes += sub.constant * dim_bytes;
          for (int k = 0; k < depth; ++k) {
            const std::int64_t c = sub.coef(static_cast<std::size_t>(k));
            if (c == 0) continue;
            info.outer_coef[static_cast<std::size_t>(k)] += c * dim_bytes;
          }
        }
        // Fold the innermost loop's contribution into the stride; the
        // remaining outer_coef entry for the innermost loop applies to its
        // *lower bound* contribution via the iterator value at trip 0.
        info.inner_stride =
            info.outer_coef[static_cast<std::size_t>(depth - 1)] *
            inner.step;
        refs.push_back(std::move(info));
      }
    }

    trip.assign(static_cast<std::size_t>(depth), 0);
    value.resize(static_cast<std::size_t>(depth));
    for (int k = 0; k < depth; ++k) {
      value[static_cast<std::size_t>(k)] =
          nest_ir.loops[static_cast<std::size_t>(k)].lower;
    }

    streams.assign(refs.size(), RefStream{});
    for (std::size_t i = 0; i < refs.size(); ++i) streams[i].info = &refs[i];

    outer_total = nest_ir.iteration_count() / inner_trips;
    o = 0;
    if (outer_total > 0) start_sweep();
  }

  void start_sweep() {
    const ir::LoopNest& nest_ir =
        program->nests[static_cast<std::size_t>(nest)];
    const int depth = nest_ir.depth();
    // Base offset of every reference at innermost trip 0.
    heap = {};
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const RefInfo& info = refs[i];
      Bytes a = info.const_bytes;
      for (int k = 0; k < depth; ++k) {
        a += info.outer_coef[static_cast<std::size_t>(k)] *
             value[static_cast<std::size_t>(k)];
      }
      // Validate the whole sweep's range once (offsets are linear in t).
      const Bytes last = a + info.inner_stride * (inner_trips - 1);
      SDPM_REQUIRE(a >= 0 && a < info.file_size && last >= 0 &&
                       last < info.file_size,
                   "array reference out of bounds in nest '" + nest_ir.name +
                       "'");
      streams[i].start(a, inner_trips);
      if (!streams[i].exhausted) {
        heap.push(HeapEntry{streams[i].next_trip, info.statement,
                            info.ref_index, i});
      }
    }
  }

  /// Advance the outer odometer (innermost outer loop fastest).
  void advance_outer() {
    const ir::LoopNest& nest_ir =
        program->nests[static_cast<std::size_t>(nest)];
    const int depth = nest_ir.depth();
    for (int k = depth - 2; k >= 0; --k) {
      const auto idx = static_cast<std::size_t>(k);
      const ir::Loop& loop = nest_ir.loops[idx];
      if (++trip[idx] < loop.trip_count()) {
        value[idx] += loop.step;
        break;
      }
      trip[idx] = 0;
      value[idx] = loop.lower;
    }
  }

  bool next(BlockTouch& out) {
    for (;;) {
      if (nest >= nest_count()) return false;
      if (!heap.empty()) {
        const HeapEntry top = heap.top();
        heap.pop();
        RefStream& stream = streams[top.stream];
        const RefInfo& info = *stream.info;
        out.nest = nest;
        out.flat_iter = o * inner_trips + stream.next_trip;
        out.array = info.array;
        out.block = stream.current_block;
        out.kind = info.kind;
        out.statement = info.statement;
        stream.advance();
        if (!stream.exhausted) {
          heap.push(HeapEntry{stream.next_trip, info.statement,
                              info.ref_index, top.stream});
        }
        return true;
      }
      if (o + 1 < outer_total) {
        advance_outer();
        ++o;
        start_sweep();
        continue;
      }
      ++nest;
      if (nest < nest_count()) enter_nest();
    }
  }
};

TouchCursor::TouchCursor(const ir::Program& program, BlockSizeFn block_size_of)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = &program;
  impl_->block_size_of = std::move(block_size_of);
  if (impl_->nest_count() > 0) impl_->enter_nest();
}

TouchCursor::~TouchCursor() = default;
TouchCursor::TouchCursor(TouchCursor&&) noexcept = default;
TouchCursor& TouchCursor::operator=(TouchCursor&&) noexcept = default;

bool TouchCursor::next(BlockTouch& out) { return impl_->next(out); }

void walk_block_touches(const ir::Program& program,
                        const BlockSizeFn& block_size_of,
                        const TouchCallback& fn) {
  TouchCursor cursor(program, block_size_of);
  BlockTouch touch;
  while (cursor.next(touch)) fn(touch);
}

void walk_block_touches(const ir::Program& program, Bytes block_size,
                        const TouchCallback& fn) {
  walk_block_touches(
      program, [block_size](ir::ArrayId) { return block_size; }, fn);
}

}  // namespace sdpm::trace
