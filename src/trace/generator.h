// Trace generator: program + disk layout -> I/O request trace.
//
// Mirrors the paper's trace generator (Figure 1): the compiler-transformed
// code is "executed" against the buffer-cache model; every miss becomes a
// timestamped request routed to a disk through the striping information.
// Power directives inserted by the compiler ride along as timestamped
// power events, each charging its call overhead (Tm) to the compute
// timeline.
//
// The generator has two delivery modes sharing one access model:
//   TraceGenerator::generate()  materializes the full Trace (requests +
//                               power events) — the classic path, and
//   StreamingTraceSource        feeds the simulator one item at a time with
//                               O(1) request memory — the streaming path,
//                               proven bit-identical by the property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "layout/layout_table.h"
#include "trace/buffer_cache.h"
#include "trace/iteration_space.h"
#include "trace/request.h"
#include "trace/source.h"
#include "trace/timeline.h"
#include "trace/walker.h"

namespace sdpm::trace {

struct GeneratorOptions {
  /// Cache/request block size; 0 means "use each array's stripe size".
  /// When nonzero it must divide every array's stripe size.
  Bytes block_size = 0;
  /// Buffer cache capacity in bytes (0 disables the cache).  The default
  /// is small enough that no benchmark's cyclically-swept array group fits
  /// — matching the paper's premise that "each array reference causes a
  /// disk access unless the data is captured in the buffer cache" — while
  /// single privately-swept matrices (applu's W, wupwise's M2, mesa's
  /// STEX) do fit and stay resident within their nest.
  Bytes cache_bytes = mib(6);
  /// Per-nest cycle multipliers modelling the gap between the compiler's
  /// cycle estimates and the actual execution.  The *trace* always uses the
  /// actual timeline.
  CycleNoise noise = CycleNoise::none();
  double clock_hz = kDefaultClockHz;
  /// Overhead of one power-management call (Tm in paper Eq. 1).
  TimeMs power_call_overhead_ms = 0.02;
  /// Compiler-directed prefetch lead applied to every *read* request
  /// (extension; 0 reproduces the paper's no-prefetching assumption).
  TimeMs prefetch_lead_ms = 0;
};

/// A single cache-missing block access, before timestamping.  Exposed so
/// the compiler passes (core/) can run the identical access model when
/// predicting the disk access pattern.
struct MissRecord {
  std::int64_t global_iter = 0;
  int disk = 0;
  BlockNo start_sector = 0;
  Bytes size_bytes = 0;
  ir::AccessKind kind = ir::AccessKind::kRead;
  ir::ArrayId array = -1;
  std::int64_t block = 0;
};

/// Pull-based access walk + buffer cache: next() yields every miss in
/// program order, one at a time, with memory independent of the trace
/// length.  Shared by the materialized collect_misses and the streaming
/// source, so the compiler's model and the "hardware" agree exactly.
/// The program and layout must outlive the cursor.
class MissCursor {
 public:
  MissCursor(const ir::Program& program, const layout::LayoutTable& layout,
             const GeneratorOptions& options);

  MissCursor(const MissCursor&) = delete;
  MissCursor& operator=(const MissCursor&) = delete;

  /// Advance to the next cache miss; false when the walk is complete.
  bool next(MissRecord& out);

 private:
  const layout::LayoutTable* layout_;
  GeneratorOptions options_;
  IterationSpace space_;
  BufferCache cache_;
  TouchCursor cursor_;
};

/// Run the access walk + buffer cache and return every miss in program
/// order.  Deterministic; shared by the trace generator and the DAP
/// analysis so the compiler's model and the "hardware" agree exactly.
std::vector<MissRecord> collect_misses(const ir::Program& program,
                                       const layout::LayoutTable& layout,
                                       const GeneratorOptions& options);

class TraceGenerator {
 public:
  TraceGenerator(const ir::Program& program,
                 const layout::LayoutTable& layout,
                 GeneratorOptions options = {});

  /// Generate the full trace (requests + power events + compute total).
  Trace generate() const;

  /// The actual-execution timeline used for timestamps.
  const Timeline& actual_timeline() const { return actual_; }

 private:
  const ir::Program& program_;
  const layout::LayoutTable& layout_;
  GeneratorOptions options_;
  Timeline actual_;
};

/// RequestSource that runs the generator incrementally: requests are
/// produced on demand from the access walk, never materialized as a
/// vector.  Power events (a handful per trace) are precomputed.  For the
/// same (program, layout, options) the emitted stream is bit-identical to
/// TraceCursor over TraceGenerator::generate()'s output.
/// The program and layout must outlive the source.
class StreamingTraceSource final : public RequestSource {
 public:
  StreamingTraceSource(const ir::Program& program,
                       const layout::LayoutTable& layout,
                       GeneratorOptions options = {});

  bool next(TraceItem& item) override;
  std::size_t next_batch(TraceItem* out, std::size_t max_items) override;
  int total_disks() const override { return total_disks_; }
  TimeMs compute_total_ms() const override { return compute_total_; }

  /// Requests emitted so far (the full request count once exhausted).
  std::int64_t requests_streamed() const { return requests_streamed_; }

  const Timeline& actual_timeline() const { return actual_; }

 private:
  bool refill();
  /// Non-virtual body shared by next() and next_batch().
  bool produce(TraceItem& item);

  GeneratorOptions options_;
  Timeline actual_;
  std::vector<std::int64_t> directive_globals_;
  std::vector<PowerEvent> events_;
  std::size_t pi_ = 0;
  MissCursor misses_;
  Request pending_{};
  bool have_pending_ = false;
  bool exhausted_reported_ = false;
  TimeMs compute_total_ = 0;
  int total_disks_ = 0;
  std::int64_t requests_streamed_ = 0;
};

/// Resolve the per-array block size implied by `options` and the layout.
Bytes block_size_for(const layout::LayoutTable& layout, ir::ArrayId array,
                     const GeneratorOptions& options);

}  // namespace sdpm::trace
