// Pull-based trace delivery: the streaming side of the trace pipeline.
//
// The simulator replays a totally ordered stream of trace items (I/O
// requests and compiler-inserted power events, merged on the compute
// timeline with power events winning ties — they sit immediately before
// the iteration they annotate).  RequestSource abstracts where that stream
// comes from:
//
//   TraceCursor            a view over a fully materialized trace::Trace
//                          (the classic path; zero-copy, bit-identical to
//                          indexing the vectors directly), and
//   StreamingTraceSource   (trace/generator.h) the generator feeding the
//                          simulator chunklessly, one request at a time,
//                          without ever materializing the request vector.
//
// Both must present identical streams for the same inputs; the streaming
// property tests pin that equivalence bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "trace/request.h"

namespace sdpm::trace {

/// One element of the replay stream: either an I/O request or a power
/// event.  A tagged pair rather than a variant so the replay loop stays
/// branch-cheap.
struct TraceItem {
  enum class Kind { kRequest, kPowerEvent };
  Kind kind = Kind::kRequest;
  Request request;    ///< valid when kind == kRequest
  PowerEvent power;   ///< valid when kind == kPowerEvent
};

/// Ordered producer of trace items plus the whole-trace metadata the
/// simulator needs up front.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Produce the next item in replay order; false at end of stream.
  virtual bool next(TraceItem& item) = 0;

  /// Fill `out[0 .. max_items)` with the next items in replay order and
  /// return how many were produced; 0 means end of stream.  Semantically
  /// identical to calling next() up to `max_items` times — batching is a
  /// delivery optimization, never a reordering — so the batched and scalar
  /// streams are bit-identical.  The default implementation loops next();
  /// concrete sources override it with a tight non-virtual loop so the
  /// replay engine amortizes one virtual call over a whole block.
  virtual std::size_t next_batch(TraceItem* out, std::size_t max_items);

  /// Number of disks the trace addresses (known before streaming starts).
  virtual int total_disks() const = 0;

  /// Pure-compute duration of the traced program, including power-call
  /// overhead (the closed-loop replay's trailing think time).
  virtual TimeMs compute_total_ms() const = 0;
};

/// RequestSource over a materialized Trace: merges `requests` and
/// `power_events` with the canonical tie-break (power events first at equal
/// timestamps).  The trace must outlive the cursor.
class TraceCursor final : public RequestSource {
 public:
  explicit TraceCursor(const Trace& trace) : trace_(&trace) {}

  bool next(TraceItem& item) override;
  std::size_t next_batch(TraceItem* out, std::size_t max_items) override;
  int total_disks() const override { return trace_->total_disks; }
  TimeMs compute_total_ms() const override {
    return trace_->compute_total_ms;
  }

  /// Restart the stream from the beginning.
  void rewind() { ri_ = pi_ = 0; }

 private:
  const Trace* trace_;
  std::size_t ri_ = 0;
  std::size_t pi_ = 0;
};

}  // namespace sdpm::trace
