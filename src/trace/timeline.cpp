#include "trace/timeline.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace sdpm::trace {

Timeline::Timeline(const ir::Program& program, double clock_hz)
    : Timeline(program,
               std::vector<double>(program.nests.size(), 1.0), clock_hz) {}

Timeline::Timeline(const ir::Program& program,
                   std::vector<double> multipliers, double clock_hz)
    : space_(program), clock_hz_(clock_hz),
      multipliers_(std::move(multipliers)) {
  SDPM_REQUIRE(clock_hz_ > 0, "clock rate must be positive");
  SDPM_REQUIRE(multipliers_.size() == program.nests.size(),
               "need one multiplier per nest");
  build(program);
}

Timeline Timeline::with_noise(const ir::Program& program,
                              const CycleNoise& noise, double clock_hz) {
  std::vector<double> multipliers(program.nests.size(), 1.0);
  if (noise.sigma > 0.0) {
    for (std::size_t n = 0; n < program.nests.size(); ++n) {
      SplitMix64 rng(derive_seed(noise.seed, n));
      multipliers[n] = std::exp(noise.sigma * rng.next_gaussian());
    }
  }
  return Timeline(program, std::move(multipliers), clock_hz);
}

void Timeline::build(const ir::Program& program) {
  nest_start_.resize(program.nests.size());
  per_iter_ms_.resize(program.nests.size());
  TimeMs cursor = 0;
  for (std::size_t n = 0; n < program.nests.size(); ++n) {
    const ir::LoopNest& nest = program.nests[n];
    nest_start_[n] = cursor;
    per_iter_ms_[n] = ms_from_cycles(
        nest.cycles_per_iteration() * multipliers_[n], clock_hz_);
    cursor += per_iter_ms_[n] * static_cast<double>(nest.iteration_count());
  }
  total_ = cursor;
}

TimeMs Timeline::at(const ir::IterationPoint& point) const {
  const auto n = static_cast<std::size_t>(point.nest_index);
  SDPM_ASSERT(n < nest_start_.size(), "nest index out of range");
  return nest_start_[n] +
         per_iter_ms_[n] * static_cast<double>(point.flat_iteration);
}

TimeMs Timeline::at_global(std::int64_t g) const {
  return at(space_.point_of(g));
}

TimeMs Timeline::per_iteration_ms(int n) const {
  SDPM_REQUIRE(n >= 0 && n < static_cast<int>(per_iter_ms_.size()),
               "nest index out of range");
  return per_iter_ms_[static_cast<std::size_t>(n)];
}

TimeMs Timeline::nest_start(int n) const {
  SDPM_REQUIRE(n >= 0 && n < static_cast<int>(nest_start_.size()),
               "nest index out of range");
  return nest_start_[static_cast<std::size_t>(n)];
}

TimeMs Timeline::total() const { return total_; }

}  // namespace sdpm::trace
