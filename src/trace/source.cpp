#include "trace/source.h"

namespace sdpm::trace {

bool TraceCursor::next(TraceItem& item) {
  const auto& requests = trace_->requests;
  const auto& events = trace_->power_events;
  if (ri_ >= requests.size() && pi_ >= events.size()) return false;
  const bool take_power =
      pi_ < events.size() &&
      (ri_ >= requests.size() ||
       events[pi_].app_time_ms <= requests[ri_].arrival_ms);
  if (take_power) {
    item.kind = TraceItem::Kind::kPowerEvent;
    item.power = events[pi_++];
  } else {
    item.kind = TraceItem::Kind::kRequest;
    item.request = requests[ri_++];
  }
  return true;
}

}  // namespace sdpm::trace
