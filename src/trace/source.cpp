#include "trace/source.h"

namespace sdpm::trace {

std::size_t RequestSource::next_batch(TraceItem* out, std::size_t max_items) {
  std::size_t filled = 0;
  while (filled < max_items && next(out[filled])) ++filled;
  return filled;
}

bool TraceCursor::next(TraceItem& item) {
  const auto& requests = trace_->requests;
  const auto& events = trace_->power_events;
  if (ri_ >= requests.size() && pi_ >= events.size()) return false;
  const bool take_power =
      pi_ < events.size() &&
      (ri_ >= requests.size() ||
       events[pi_].app_time_ms <= requests[ri_].arrival_ms);
  if (take_power) {
    item.kind = TraceItem::Kind::kPowerEvent;
    item.power = events[pi_++];
  } else {
    item.kind = TraceItem::Kind::kRequest;
    item.request = requests[ri_++];
  }
  return true;
}

std::size_t TraceCursor::next_batch(TraceItem* out, std::size_t max_items) {
  // Same merge as next(), devirtualized and unrolled over the block: power
  // events win timestamp ties (they sit immediately before the iteration
  // they annotate).
  const auto& requests = trace_->requests;
  const auto& events = trace_->power_events;
  std::size_t filled = 0;
  while (filled < max_items) {
    const bool have_request = ri_ < requests.size();
    const bool have_power = pi_ < events.size();
    if (!have_request && !have_power) break;
    TraceItem& item = out[filled++];
    if (have_power &&
        (!have_request ||
         events[pi_].app_time_ms <= requests[ri_].arrival_ms)) {
      item.kind = TraceItem::Kind::kPowerEvent;
      item.power = events[pi_++];
    } else {
      item.kind = TraceItem::Kind::kRequest;
      item.request = requests[ri_++];
    }
  }
  return filled;
}

}  // namespace sdpm::trace
