#include "trace/generator.h"

#include <algorithm>

#include "trace/buffer_cache.h"
#include "trace/walker.h"
#include "util/error.h"

namespace sdpm::trace {

Bytes block_size_for(const layout::LayoutTable& layout, ir::ArrayId array,
                     const GeneratorOptions& options) {
  const Bytes stripe = layout.layout_of(array).striping().stripe_size;
  if (options.block_size == 0) return stripe;
  SDPM_REQUIRE(stripe % options.block_size == 0,
               "block size must divide every array's stripe size");
  return options.block_size;
}

std::vector<MissRecord> collect_misses(const ir::Program& program,
                                       const layout::LayoutTable& layout,
                                       const GeneratorOptions& options) {
  SDPM_REQUIRE(layout.array_count() == program.arrays.size(),
               "layout table does not match program arrays");
  IterationSpace space(program);
  BufferCache cache(options.cache_bytes);
  std::vector<MissRecord> misses;

  const BlockSizeFn block_size_of = [&](ir::ArrayId a) {
    return block_size_for(layout, a, options);
  };

  walk_block_touches(program, block_size_of, [&](const BlockTouch& touch) {
    const Bytes bs = block_size_for(layout, touch.array, options);
    const Bytes file_size = layout.layout_of(touch.array).file_size();
    const Bytes begin = touch.block * bs;
    const Bytes length = std::min(bs, file_size - begin);
    if (cache.access(touch.array, touch.block, length)) return;

    // A block never spans disks: block size divides the stripe size.
    const layout::PhysicalLocation loc = layout.locate(touch.array, begin);
    MissRecord miss;
    miss.global_iter =
        space.global_of(ir::IterationPoint{touch.nest, touch.flat_iter});
    miss.disk = loc.disk;
    miss.start_sector = loc.sector();
    miss.size_bytes = length;
    miss.kind = touch.kind;
    miss.array = touch.array;
    miss.block = touch.block;
    misses.push_back(miss);
  });
  return misses;
}

TraceGenerator::TraceGenerator(const ir::Program& program,
                               const layout::LayoutTable& layout,
                               GeneratorOptions options)
    : program_(program), layout_(layout), options_(options),
      actual_(Timeline::with_noise(program, options.noise, options.clock_hz)) {
  program_.validate();
}

Trace TraceGenerator::generate() const {
  Trace trace;
  trace.total_disks = layout_.total_disks();

  const IterationSpace& space = actual_.space();

  // Global coordinates of the program's power directives, in program order.
  std::vector<std::int64_t> directive_globals;
  directive_globals.reserve(program_.directives.size());
  for (const ir::PlacedDirective& pd : program_.directives) {
    directive_globals.push_back(space.global_of(pd.point));
  }
  SDPM_REQUIRE(std::is_sorted(directive_globals.begin(),
                              directive_globals.end()),
               "program directives must be sorted (call sort_directives)");

  const TimeMs tm = options_.power_call_overhead_ms;

  // Each directive executed before global iteration g shifts all later
  // compute times by Tm.
  const auto overhead_before = [&](std::int64_t g) {
    const auto it = std::upper_bound(directive_globals.begin(),
                                     directive_globals.end(), g);
    return tm * static_cast<double>(it - directive_globals.begin());
  };

  // A power event fires at its iteration's compute time plus the overhead
  // of every directive executed before it (directives at the same point run
  // in program order, each paying Tm).
  for (std::size_t i = 0; i < program_.directives.size(); ++i) {
    PowerEvent ev;
    ev.global_iter = directive_globals[i];
    ev.app_time_ms =
        actual_.at_global(ev.global_iter) + tm * static_cast<double>(i);
    ev.directive = program_.directives[i].directive;
    trace.power_events.push_back(ev);
  }

  const std::vector<MissRecord> misses =
      collect_misses(program_, layout_, options_);
  trace.requests.reserve(misses.size());
  for (const MissRecord& miss : misses) {
    Request r;
    r.arrival_ms =
        actual_.at_global(miss.global_iter) + overhead_before(miss.global_iter);
    r.disk = miss.disk;
    r.start_sector = miss.start_sector;
    r.size_bytes = miss.size_bytes;
    r.kind = miss.kind;
    r.global_iter = miss.global_iter;
    if (miss.kind == ir::AccessKind::kRead) {
      r.prefetch_lead_ms = options_.prefetch_lead_ms;
    }
    trace.requests.push_back(r);
    trace.bytes_transferred += miss.size_bytes;
  }

  trace.compute_total_ms =
      actual_.total() + tm * static_cast<double>(program_.directives.size());
  return trace;
}

}  // namespace sdpm::trace
