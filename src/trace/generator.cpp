#include "trace/generator.h"

#include <algorithm>

#include "util/error.h"
#include "util/perf_counters.h"

namespace sdpm::trace {

namespace {

/// Each directive executed before global iteration g shifts all later
/// compute times by Tm.
TimeMs overhead_before(const std::vector<std::int64_t>& directive_globals,
                       TimeMs tm, std::int64_t g) {
  const auto it = std::upper_bound(directive_globals.begin(),
                                   directive_globals.end(), g);
  return tm * static_cast<double>(it - directive_globals.begin());
}

/// Global coordinates of the program's power directives, in program order.
std::vector<std::int64_t> directive_globals_of(const ir::Program& program,
                                               const IterationSpace& space) {
  std::vector<std::int64_t> globals;
  globals.reserve(program.directives.size());
  for (const ir::PlacedDirective& pd : program.directives) {
    globals.push_back(space.global_of(pd.point));
  }
  SDPM_REQUIRE(std::is_sorted(globals.begin(), globals.end()),
               "program directives must be sorted (call sort_directives)");
  return globals;
}

/// A power event fires at its iteration's compute time plus the overhead
/// of every directive executed before it (directives at the same point run
/// in program order, each paying Tm).
std::vector<PowerEvent> power_events_of(
    const ir::Program& program, const Timeline& actual,
    const std::vector<std::int64_t>& directive_globals, TimeMs tm) {
  std::vector<PowerEvent> events;
  events.reserve(program.directives.size());
  for (std::size_t i = 0; i < program.directives.size(); ++i) {
    PowerEvent ev;
    ev.global_iter = directive_globals[i];
    ev.app_time_ms =
        actual.at_global(ev.global_iter) + tm * static_cast<double>(i);
    ev.directive = program.directives[i].directive;
    events.push_back(ev);
  }
  return events;
}

/// Timestamp one miss exactly as the materialized generator does.
Request request_from_miss(const MissRecord& miss, const Timeline& actual,
                          const std::vector<std::int64_t>& directive_globals,
                          const GeneratorOptions& options) {
  Request r;
  r.arrival_ms = actual.at_global(miss.global_iter) +
                 overhead_before(directive_globals,
                                 options.power_call_overhead_ms,
                                 miss.global_iter);
  r.disk = miss.disk;
  r.start_sector = miss.start_sector;
  r.size_bytes = miss.size_bytes;
  r.kind = miss.kind;
  r.global_iter = miss.global_iter;
  if (miss.kind == ir::AccessKind::kRead) {
    r.prefetch_lead_ms = options.prefetch_lead_ms;
  }
  return r;
}

}  // namespace

Bytes block_size_for(const layout::LayoutTable& layout, ir::ArrayId array,
                     const GeneratorOptions& options) {
  const Bytes stripe = layout.layout_of(array).striping().stripe_size;
  if (options.block_size == 0) return stripe;
  SDPM_REQUIRE(stripe % options.block_size == 0,
               "block size must divide every array's stripe size");
  return options.block_size;
}

MissCursor::MissCursor(const ir::Program& program,
                       const layout::LayoutTable& layout,
                       const GeneratorOptions& options)
    : layout_(&layout), options_(options), space_(program),
      cache_(options.cache_bytes),
      cursor_(program, [this](ir::ArrayId a) {
        return block_size_for(*layout_, a, options_);
      }) {
  SDPM_REQUIRE(layout.array_count() == program.arrays.size(),
               "layout table does not match program arrays");
}

bool MissCursor::next(MissRecord& out) {
  BlockTouch touch;
  while (cursor_.next(touch)) {
    const Bytes bs = block_size_for(*layout_, touch.array, options_);
    const Bytes file_size = layout_->layout_of(touch.array).file_size();
    const Bytes begin = touch.block * bs;
    const Bytes length = std::min(bs, file_size - begin);
    if (cache_.access(touch.array, touch.block, length)) continue;

    // A block never spans disks: block size divides the stripe size.
    const layout::PhysicalLocation loc = layout_->locate(touch.array, begin);
    out.global_iter =
        space_.global_of(ir::IterationPoint{touch.nest, touch.flat_iter});
    out.disk = loc.disk;
    out.start_sector = loc.sector();
    out.size_bytes = length;
    out.kind = touch.kind;
    out.array = touch.array;
    out.block = touch.block;
    return true;
  }
  return false;
}

std::vector<MissRecord> collect_misses(const ir::Program& program,
                                       const layout::LayoutTable& layout,
                                       const GeneratorOptions& options) {
  MissCursor cursor(program, layout, options);
  std::vector<MissRecord> misses;
  MissRecord miss;
  while (cursor.next(miss)) misses.push_back(miss);
  return misses;
}

TraceGenerator::TraceGenerator(const ir::Program& program,
                               const layout::LayoutTable& layout,
                               GeneratorOptions options)
    : program_(program), layout_(layout), options_(options),
      actual_(Timeline::with_noise(program, options.noise, options.clock_hz)) {
  program_.validate();
}

Trace TraceGenerator::generate() const {
  Trace trace;
  trace.total_disks = layout_.total_disks();

  const IterationSpace& space = actual_.space();
  const TimeMs tm = options_.power_call_overhead_ms;

  const std::vector<std::int64_t> directive_globals =
      directive_globals_of(program_, space);
  trace.power_events =
      power_events_of(program_, actual_, directive_globals, tm);

  const std::vector<MissRecord> misses =
      collect_misses(program_, layout_, options_);
  trace.requests.reserve(misses.size());
  for (const MissRecord& miss : misses) {
    trace.requests.push_back(
        request_from_miss(miss, actual_, directive_globals, options_));
    trace.bytes_transferred += miss.size_bytes;
  }

  trace.compute_total_ms =
      actual_.total() + tm * static_cast<double>(program_.directives.size());
  PerfCounters::global().add_trace_generated();
  return trace;
}

StreamingTraceSource::StreamingTraceSource(const ir::Program& program,
                                           const layout::LayoutTable& layout,
                                           GeneratorOptions options)
    : options_(options),
      actual_(Timeline::with_noise(program, options.noise, options.clock_hz)),
      misses_(program, layout, options) {
  program.validate();
  const TimeMs tm = options_.power_call_overhead_ms;
  directive_globals_ = directive_globals_of(program, actual_.space());
  events_ = power_events_of(program, actual_, directive_globals_, tm);
  compute_total_ =
      actual_.total() + tm * static_cast<double>(program.directives.size());
  total_disks_ = layout.total_disks();
}

bool StreamingTraceSource::refill() {
  MissRecord miss;
  if (!misses_.next(miss)) return false;
  pending_ = request_from_miss(miss, actual_, directive_globals_, options_);
  return true;
}

bool StreamingTraceSource::next(TraceItem& item) { return produce(item); }

std::size_t StreamingTraceSource::next_batch(TraceItem* out,
                                             std::size_t max_items) {
  std::size_t filled = 0;
  while (filled < max_items && produce(out[filled])) ++filled;
  return filled;
}

bool StreamingTraceSource::produce(TraceItem& item) {
  if (!have_pending_) have_pending_ = refill();
  const bool have_power = pi_ < events_.size();
  if (!have_power && !have_pending_) {
    if (!exhausted_reported_) {
      exhausted_reported_ = true;
      PerfCounters::global().add_requests_streamed(requests_streamed_);
    }
    return false;
  }
  const bool take_power =
      have_power &&
      (!have_pending_ || events_[pi_].app_time_ms <= pending_.arrival_ms);
  if (take_power) {
    item.kind = TraceItem::Kind::kPowerEvent;
    item.power = events_[pi_++];
  } else {
    item.kind = TraceItem::Kind::kRequest;
    item.request = pending_;
    have_pending_ = false;
    ++requests_streamed_;
  }
  return true;
}

}  // namespace sdpm::trace
