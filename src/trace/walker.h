// Block-granular access walker.
//
// Enumerates, in program order, every (iteration, array, block) touch a
// program makes at a given cache-block granularity.  The innermost loop of
// each nest is never executed element-by-element: because every subscript
// is affine, the byte offset of a reference is a linear function
// off(t) = A + B*t of the innermost trip index t, and the walker jumps
// directly from block boundary to block boundary in closed form.  Touches
// from different references of the same inner sweep are merged back into
// iteration order with a small heap, so downstream consumers (buffer cache,
// trace timestamps, DAP) observe the true program order.
#pragma once

#include <cstdint>
#include <functional>

#include "ir/program.h"
#include "util/units.h"

namespace sdpm::trace {

/// One cache-block touch: the first iteration at which a reference enters a
/// new block of an array.
struct BlockTouch {
  int nest = 0;                 ///< nest index within the program
  std::int64_t flat_iter = 0;   ///< flat iteration within the nest
  ir::ArrayId array = -1;
  std::int64_t block = 0;       ///< block index within the array's file
  ir::AccessKind kind = ir::AccessKind::kRead;
  int statement = 0;            ///< statement index (provenance)
};

using TouchCallback = std::function<void(const BlockTouch&)>;

/// Block size to use per array, in bytes.  Must divide into the array's
/// element size evenly (block_size % element_size == 0).
using BlockSizeFn = std::function<Bytes(ir::ArrayId)>;

/// Walk all nests of `program` in execution order, invoking `fn` for every
/// block-entry event in iteration order.  `block_size_of` gives the cache
/// block size for each array.
void walk_block_touches(const ir::Program& program,
                        const BlockSizeFn& block_size_of,
                        const TouchCallback& fn);

/// Convenience overload with a single uniform block size.
void walk_block_touches(const ir::Program& program, Bytes block_size,
                        const TouchCallback& fn);

}  // namespace sdpm::trace
