// Block-granular access walker.
//
// Enumerates, in program order, every (iteration, array, block) touch a
// program makes at a given cache-block granularity.  The innermost loop of
// each nest is never executed element-by-element: because every subscript
// is affine, the byte offset of a reference is a linear function
// off(t) = A + B*t of the innermost trip index t, and the walker jumps
// directly from block boundary to block boundary in closed form.  Touches
// from different references of the same inner sweep are merged back into
// iteration order with a small heap, so downstream consumers (buffer cache,
// trace timestamps, DAP) observe the true program order.
//
// Two shapes of the same walk are offered: the callback-driven
// walk_block_touches (push), and the pull-based TouchCursor that yields one
// touch per next() call.  The push form is implemented on top of the
// cursor, so both enumerate the identical sequence — the cursor is what
// lets the streaming trace pipeline feed the simulator without ever
// materializing the full touch (or request) list.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ir/program.h"
#include "util/units.h"

namespace sdpm::trace {

/// One cache-block touch: the first iteration at which a reference enters a
/// new block of an array.
struct BlockTouch {
  int nest = 0;                 ///< nest index within the program
  std::int64_t flat_iter = 0;   ///< flat iteration within the nest
  ir::ArrayId array = -1;
  std::int64_t block = 0;       ///< block index within the array's file
  ir::AccessKind kind = ir::AccessKind::kRead;
  int statement = 0;            ///< statement index (provenance)
};

using TouchCallback = std::function<void(const BlockTouch&)>;

/// Block size to use per array, in bytes.  Must divide into the array's
/// element size evenly (block_size % element_size == 0).
using BlockSizeFn = std::function<Bytes(ir::ArrayId)>;

/// Pull-based walk over all nests of a program: next() yields block-entry
/// events one at a time, in exactly the order walk_block_touches invokes
/// its callback.  Holds O(refs-per-nest) state — independent of the trace
/// length.  The program must outlive the cursor.
class TouchCursor {
 public:
  TouchCursor(const ir::Program& program, BlockSizeFn block_size_of);
  ~TouchCursor();

  TouchCursor(TouchCursor&&) noexcept;
  TouchCursor& operator=(TouchCursor&&) noexcept;

  /// Advance to the next touch; returns false when the walk is complete.
  bool next(BlockTouch& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Walk all nests of `program` in execution order, invoking `fn` for every
/// block-entry event in iteration order.  `block_size_of` gives the cache
/// block size for each array.
void walk_block_touches(const ir::Program& program,
                        const BlockSizeFn& block_size_of,
                        const TouchCallback& fn);

/// Convenience overload with a single uniform block size.
void walk_block_touches(const ir::Program& program, Bytes block_size,
                        const TouchCallback& fn);

}  // namespace sdpm::trace
