// Disk I/O request trace — the paper's simulator input format.
//
// "Each I/O request is composed of the four parameters: request arrival
// time (in milliseconds), start block number, request size (in bytes), and
// request type (read or write)" (§4.1), extended with the target disk
// (which the paper's simulator derives from the striping information) and
// provenance (which global iteration issued it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ir/program.h"
#include "util/units.h"

namespace sdpm::trace {

/// One disk I/O request.
struct Request {
  TimeMs arrival_ms = 0;  ///< compute-timeline arrival (no I/O stalls)
  int disk = 0;
  BlockNo start_sector = 0;  ///< 512-byte sector number on that disk
  Bytes size_bytes = 0;
  ir::AccessKind kind = ir::AccessKind::kRead;
  std::int64_t global_iter = 0;  ///< issuing global iteration (provenance)
  /// Compiler-directed prefetching (extension; the paper assumes no
  /// prefetching): how far ahead of the demand access the request may be
  /// issued.  0 = synchronous demand access.  The closed-loop simulator
  /// overlaps the lead with compute and only stalls the application for
  /// whatever service remains at demand time.
  TimeMs prefetch_lead_ms = 0;
};

/// One compiler-inserted power-management call, timestamped on the compute
/// timeline.
struct PowerEvent {
  TimeMs app_time_ms = 0;
  ir::PowerDirective directive;
  std::int64_t global_iter = 0;
};

/// A complete program trace: I/O requests and power calls in program order,
/// plus the pure-compute duration (used by the simulator's closed-loop
/// replay as think time between requests).
struct Trace {
  std::vector<Request> requests;
  std::vector<PowerEvent> power_events;
  TimeMs compute_total_ms = 0;
  int total_disks = 0;
  Bytes bytes_transferred = 0;

  std::int64_t request_count() const {
    return static_cast<std::int64_t>(requests.size());
  }

  /// Write in a DiskSim-like text format: one request per line.
  void write_text(std::ostream& os) const;
};

/// Concatenate `timesteps` copies of `trace` on the compute timeline —
/// the iterative-application view of a single-timestep trace.  Requests
/// and power events of copy `t` are shifted by `t * compute_total_ms`;
/// sectors repeat (a timestep revisits its working set, which exceeds the
/// buffer cache for every workload we model).  Throws on `timesteps < 1`.
Trace repeat_trace(const Trace& trace, int timesteps);

}  // namespace sdpm::trace
