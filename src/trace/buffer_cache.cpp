#include "trace/buffer_cache.h"

#include "util/error.h"

namespace sdpm::trace {

BufferCache::BufferCache(Bytes capacity_bytes) : capacity_(capacity_bytes) {
  SDPM_REQUIRE(capacity_bytes >= 0, "cache capacity must be non-negative");
}

std::uint64_t BufferCache::make_key(ir::ArrayId array, std::int64_t block) {
  SDPM_ASSERT(array >= 0 && array < (1 << 15), "array id out of key range");
  SDPM_ASSERT(block >= 0 && block < (std::int64_t{1} << 48),
              "block out of key range");
  return (static_cast<std::uint64_t>(array) << 48) |
         static_cast<std::uint64_t>(block);
}

bool BufferCache::access(ir::ArrayId array, std::int64_t block,
                         Bytes block_bytes) {
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  const std::uint64_t key = make_key(array, block);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++misses_;
  // Evict from the tail until the new block fits.
  while (used_ + block_bytes > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
  if (block_bytes <= capacity_) {
    lru_.push_front(Entry{key, block_bytes});
    index_.emplace(key, lru_.begin());
    used_ += block_bytes;
  }
  return false;
}

void BufferCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

}  // namespace sdpm::trace
