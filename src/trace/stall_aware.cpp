#include "trace/stall_aware.h"

#include <algorithm>

#include "util/error.h"

namespace sdpm::trace {

StallAwareTimeline::StallAwareTimeline(Timeline compute,
                                       std::vector<std::int64_t> miss_iters,
                                       const std::vector<TimeMs>& responses)
    : compute_(std::move(compute)), miss_iters_(std::move(miss_iters)) {
  SDPM_REQUIRE(miss_iters_.size() == responses.size(),
               "one response per request required");
  SDPM_REQUIRE(std::is_sorted(miss_iters_.begin(), miss_iters_.end()),
               "request iterations must be sorted");
  cum_stall_.reserve(miss_iters_.size());
  TimeMs cum = 0;
  for (TimeMs r : responses) {
    SDPM_ASSERT(r >= 0, "negative response time");
    cum += r;
    cum_stall_.push_back(cum);
  }
}

StallAwareTimeline::StallAwareTimeline(Timeline compute,
                                       std::vector<std::int64_t> miss_iters,
                                       TimeMs avg_response_ms)
    : compute_(std::move(compute)), miss_iters_(std::move(miss_iters)) {
  SDPM_REQUIRE(std::is_sorted(miss_iters_.begin(), miss_iters_.end()),
               "request iterations must be sorted");
  SDPM_REQUIRE(avg_response_ms >= 0, "negative response time");
  cum_stall_.reserve(miss_iters_.size());
  for (std::size_t i = 0; i < miss_iters_.size(); ++i) {
    cum_stall_.push_back(avg_response_ms * static_cast<double>(i + 1));
  }
}

TimeMs StallAwareTimeline::at_global(std::int64_t g) const {
  const TimeMs compute_time = compute_.at_global(g);
  // Stalls of requests issued strictly before iteration g have elapsed by
  // the time g starts.
  const auto it =
      std::lower_bound(miss_iters_.begin(), miss_iters_.end(), g);
  const std::size_t before =
      static_cast<std::size_t>(it - miss_iters_.begin());
  return compute_time + (before == 0 ? 0.0 : cum_stall_[before - 1]);
}

}  // namespace sdpm::trace
