// Text serialization of I/O traces.
//
// The format mirrors the paper's trace description — one request per line:
// arrival time (ms), start block (sector), request size (bytes), request
// type (R/W) — extended with the target disk and framed by a small header
// so a trace file is self-describing:
//
//   # sdpm-trace v1 disks=<N> compute_ms=<T>
//   # arrival_ms disk start_sector size_bytes type
//   0.000000 0 0 65536 R
//   ...
//
// write_trace_text / read_trace_text round-trip exactly; read_trace_text
// also accepts header-less files (disk count inferred, compute time taken
// from the last arrival) so externally captured traces can be replayed
// with Simulator's open-loop mode.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/request.h"

namespace sdpm::trace {

/// Serialize `trace` (requests only; power events are compiler-internal
/// and not part of the interchange format).
void write_trace_text(const Trace& trace, std::ostream& os);

/// Parse a trace from `is`.  Malformed, truncated, or out-of-range lines
/// raise sdpm::Error naming `source_name` and the 1-based line number (use
/// the file name when reading from a file, so errors are actionable).
Trace read_trace_text(std::istream& is,
                      const std::string& source_name = "<trace>");

}  // namespace sdpm::trace
