#include "trace/iteration_space.h"

#include <algorithm>

#include "util/error.h"

namespace sdpm::trace {

IterationSpace::IterationSpace(const ir::Program& program) {
  begin_.reserve(program.nests.size());
  std::int64_t cursor = 0;
  for (const ir::LoopNest& nest : program.nests) {
    begin_.push_back(cursor);
    cursor += nest.iteration_count();
  }
  total_ = cursor;
}

std::int64_t IterationSpace::nest_begin(int n) const {
  SDPM_REQUIRE(n >= 0 && n < nest_count(), "nest index out of range");
  return begin_[static_cast<std::size_t>(n)];
}

std::int64_t IterationSpace::nest_end(int n) const {
  SDPM_REQUIRE(n >= 0 && n < nest_count(), "nest index out of range");
  return n + 1 < nest_count() ? begin_[static_cast<std::size_t>(n) + 1]
                              : total_;
}

std::int64_t IterationSpace::global_of(const ir::IterationPoint& point) const {
  return nest_begin(point.nest_index) + point.flat_iteration;
}

ir::IterationPoint IterationSpace::point_of(std::int64_t g) const {
  SDPM_REQUIRE(g >= 0 && g <= total_, "global iteration out of range");
  if (g == total_) {
    const int last = nest_count() - 1;
    return ir::IterationPoint{last, total_ - nest_begin(last)};
  }
  const auto it = std::upper_bound(begin_.begin(), begin_.end(), g) - 1;
  const int nest = static_cast<int>(it - begin_.begin());
  return ir::IterationPoint{nest, g - *it};
}

}  // namespace sdpm::trace
