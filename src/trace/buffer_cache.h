// LRU buffer cache model.
//
// The paper makes data disk-resident, "so each array reference causes a disk
// access unless the data is captured in the buffer cache" (§4.1).  We model
// that buffer cache as a byte-budgeted LRU over (array, block) entries;
// every miss becomes one trace I/O request.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ir/array.h"
#include "util/units.h"

namespace sdpm::trace {

class BufferCache {
 public:
  /// `capacity_bytes == 0` disables caching entirely (every access misses).
  explicit BufferCache(Bytes capacity_bytes);

  /// Touch (array, block) of `block_bytes` size.  Returns true on hit.
  /// On miss the block is inserted, evicting LRU entries as needed.
  bool access(ir::ArrayId array, std::int64_t block, Bytes block_bytes);

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  Bytes bytes_used() const { return used_; }
  Bytes capacity() const { return capacity_; }

  void clear();

 private:
  struct Entry {
    std::uint64_t key;
    Bytes bytes;
  };
  static std::uint64_t make_key(ir::ArrayId array, std::int64_t block);

  Bytes capacity_;
  Bytes used_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace sdpm::trace
