#include "trace/dap.h"

#include <sstream>

#include "util/error.h"

namespace sdpm::trace {

DiskAccessPattern::DiskAccessPattern(const ir::Program& program,
                                     int total_disks,
                                     const std::vector<MissRecord>& misses)
    : space_(program),
      active_(static_cast<std::size_t>(total_disks)) {
  for (const MissRecord& miss : misses) {
    SDPM_ASSERT(miss.disk >= 0 && miss.disk < total_disks,
                "miss references unknown disk");
    active_[static_cast<std::size_t>(miss.disk)].insert(miss.global_iter,
                                                        miss.global_iter + 1);
  }
}

DiskAccessPattern DiskAccessPattern::analyze(
    const ir::Program& program, const layout::LayoutTable& layout,
    const GeneratorOptions& options) {
  const std::vector<MissRecord> misses =
      collect_misses(program, layout, options);
  return DiskAccessPattern(program, layout.total_disks(), misses);
}

const IntervalSet& DiskAccessPattern::active_iterations(int disk) const {
  SDPM_REQUIRE(disk >= 0 && disk < disk_count(), "disk out of range");
  return active_[static_cast<std::size_t>(disk)];
}

IntervalSet DiskAccessPattern::idle_periods(int disk) const {
  return active_iterations(disk).gaps_within(0, space_.total());
}

std::vector<DiskAccessPattern::Transition> DiskAccessPattern::transitions(
    int disk) const {
  std::vector<Transition> out;
  const IntervalSet& active = active_iterations(disk);
  std::int64_t cursor = 0;
  for (const Interval& iv : active.intervals()) {
    if (iv.lo > cursor) {
      out.push_back(Transition{space_.point_of(cursor), false});
    }
    out.push_back(Transition{space_.point_of(iv.lo), true});
    cursor = iv.hi;
  }
  if (cursor < space_.total()) {
    out.push_back(Transition{space_.point_of(cursor), false});
  }
  return out;
}

std::string DiskAccessPattern::to_string(const ir::Program& program) const {
  std::ostringstream os;
  for (int d = 0; d < disk_count(); ++d) {
    os << "disk" << d << ":";
    for (const Transition& t : transitions(d)) {
      const std::string nest_name =
          program.nests[static_cast<std::size_t>(t.point.nest_index)].name;
      os << " <Nest " << t.point.nest_index << " (" << nest_name
         << "), iteration " << t.point.flat_iteration << ", "
         << (t.active ? "active" : "idle") << ">";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sdpm::trace
