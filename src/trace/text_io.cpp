#include "trace/text_io.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::trace {

void write_trace_text(const Trace& trace, std::ostream& os) {
  os << str_printf("# sdpm-trace v1 disks=%d compute_ms=%.6f\n",
                   trace.total_disks, trace.compute_total_ms);
  os << "# arrival_ms disk start_sector size_bytes type\n";
  for (const Request& r : trace.requests) {
    os << str_printf("%.6f %d %lld %lld %c\n", r.arrival_ms, r.disk,
                     static_cast<long long>(r.start_sector),
                     static_cast<long long>(r.size_bytes),
                     r.kind == ir::AccessKind::kRead ? 'R' : 'W');
  }
}

namespace {

/// Throw sdpm::Error pinpointing the offending input line.
[[noreturn]] void fail_at(const std::string& source, int line_no,
                          const std::string& line, const std::string& why) {
  throw Error(source + ":" + std::to_string(line_no) + ": " + why + ": '" +
              line + "'");
}

}  // namespace

Trace read_trace_text(std::istream& is, const std::string& source_name) {
  Trace trace;
  bool have_header = false;
  std::string line;
  int line_no = 0;
  TimeMs prev_arrival = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    if (line[0] == '#') {
      // Parse the v1 header when present.  A comment that carries either
      // header key must carry both, well-formed — a truncated header would
      // otherwise silently degrade to disk-count inference.
      const auto disks_pos = line.find("disks=");
      const auto compute_pos = line.find("compute_ms=");
      if (disks_pos == std::string::npos &&
          compute_pos == std::string::npos) {
        continue;  // ordinary comment
      }
      if (disks_pos == std::string::npos ||
          compute_pos == std::string::npos) {
        fail_at(source_name, line_no, line,
                "header needs both disks= and compute_ms=");
      }
      int disks = 0;
      std::istringstream disks_field(line.substr(disks_pos + 6));
      if (!(disks_field >> disks) || disks < 1) {
        fail_at(source_name, line_no, line, "bad disks= value");
      }
      TimeMs compute = 0;
      std::istringstream compute_field(line.substr(compute_pos + 11));
      if (!(compute_field >> compute) || !std::isfinite(compute) ||
          compute < 0) {
        fail_at(source_name, line_no, line, "bad compute_ms= value");
      }
      trace.total_disks = disks;
      trace.compute_total_ms = compute;
      have_header = true;
      continue;
    }
    std::istringstream fields(line);
    Request r;
    char type = 'R';
    long long sector = 0;
    long long size = 0;
    if (!(fields >> r.arrival_ms >> r.disk >> sector >> size >> type)) {
      fail_at(source_name, line_no, line,
              "malformed request (want: arrival_ms disk sector size R|W)");
    }
    std::string extra;
    if (fields >> extra) {
      fail_at(source_name, line_no, line,
              "trailing garbage '" + extra + "' after request fields");
    }
    if (!std::isfinite(r.arrival_ms) || r.arrival_ms < 0) {
      fail_at(source_name, line_no, line, "arrival time out of range");
    }
    if (r.disk < 0 || sector < 0 || size <= 0) {
      fail_at(source_name, line_no, line, "out-of-range fields");
    }
    if (have_header && r.disk >= trace.total_disks) {
      fail_at(source_name, line_no, line,
              "request targets disk " + std::to_string(r.disk) +
                  " but the header declares only " +
                  std::to_string(trace.total_disks));
    }
    if (type != 'R' && type != 'W') {
      fail_at(source_name, line_no, line, "unknown request type");
    }
    if (r.arrival_ms < prev_arrival) {
      fail_at(source_name, line_no, line,
              "arrivals must be non-decreasing");
    }
    prev_arrival = r.arrival_ms;
    r.start_sector = sector;
    r.size_bytes = size;
    r.kind = type == 'R' ? ir::AccessKind::kRead : ir::AccessKind::kWrite;
    trace.requests.push_back(r);
    trace.bytes_transferred += size;
  }
  if (!have_header) {
    for (const Request& r : trace.requests) {
      trace.total_disks = std::max(trace.total_disks, r.disk + 1);
      trace.compute_total_ms =
          std::max(trace.compute_total_ms, r.arrival_ms);
    }
    trace.total_disks = std::max(trace.total_disks, 1);
  }
  return trace;
}

}  // namespace sdpm::trace
