#include "trace/text_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::trace {

void write_trace_text(const Trace& trace, std::ostream& os) {
  os << str_printf("# sdpm-trace v1 disks=%d compute_ms=%.6f\n",
                   trace.total_disks, trace.compute_total_ms);
  os << "# arrival_ms disk start_sector size_bytes type\n";
  for (const Request& r : trace.requests) {
    os << str_printf("%.6f %d %lld %lld %c\n", r.arrival_ms, r.disk,
                     static_cast<long long>(r.start_sector),
                     static_cast<long long>(r.size_bytes),
                     r.kind == ir::AccessKind::kRead ? 'R' : 'W');
  }
}

Trace read_trace_text(std::istream& is) {
  Trace trace;
  bool have_header = false;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Parse the v1 header when present.
      const auto disks_pos = line.find("disks=");
      const auto compute_pos = line.find("compute_ms=");
      if (disks_pos != std::string::npos &&
          compute_pos != std::string::npos) {
        trace.total_disks =
            std::stoi(line.substr(disks_pos + 6));
        trace.compute_total_ms =
            std::stod(line.substr(compute_pos + 11));
        have_header = true;
      }
      continue;
    }
    std::istringstream fields(line);
    Request r;
    char type = 'R';
    long long sector = 0;
    long long size = 0;
    if (!(fields >> r.arrival_ms >> r.disk >> sector >> size >> type)) {
      throw Error("malformed trace line " + std::to_string(line_no) + ": '" +
                  line + "'");
    }
    SDPM_REQUIRE(r.arrival_ms >= 0 && r.disk >= 0 && sector >= 0 && size > 0,
                 "trace line " + std::to_string(line_no) +
                     " has out-of-range fields");
    SDPM_REQUIRE(type == 'R' || type == 'W',
                 "trace line " + std::to_string(line_no) +
                     " has unknown request type");
    r.start_sector = sector;
    r.size_bytes = size;
    r.kind = type == 'R' ? ir::AccessKind::kRead : ir::AccessKind::kWrite;
    trace.requests.push_back(r);
    trace.bytes_transferred += size;
  }
  SDPM_REQUIRE(
      std::is_sorted(trace.requests.begin(), trace.requests.end(),
                     [](const Request& a, const Request& b) {
                       return a.arrival_ms < b.arrival_ms;
                     }),
      "trace arrivals must be non-decreasing");
  if (!have_header) {
    for (const Request& r : trace.requests) {
      trace.total_disks = std::max(trace.total_disks, r.disk + 1);
      trace.compute_total_ms =
          std::max(trace.compute_total_ms, r.arrival_ms);
    }
    trace.total_disks = std::max(trace.total_disks, 1);
  }
  return trace;
}

}  // namespace sdpm::trace
