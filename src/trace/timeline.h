// Compute-time timelines: mapping iteration points to wall-clock time.
//
// The paper derives per-iteration cycle counts from gethrtime measurements
// on a 750 MHz UltraSPARC-III and converts them to time with the machine's
// clock rate (§3).  We model two timelines over the same program:
//   - the *estimated* timeline the compiler uses (the nominal cycle counts
//     stored in the IR), and
//   - the *actual* timeline of the execution, which applies a per-nest
//     multiplicative error drawn from a seeded log-normal distribution.
// The gap between them is what produces the RPM-level mispredictions the
// paper quantifies in Table 3.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "trace/iteration_space.h"
#include "util/units.h"

namespace sdpm::trace {

/// Clock rate of the paper's measurement platform (SUN Blade1000).
inline constexpr double kDefaultClockHz = 750e6;

/// Configuration of the estimated-vs-actual cycle gap.
struct CycleNoise {
  /// Log-normal sigma of the per-nest multiplicative error; 0 disables the
  /// noise entirely (actual == estimated).
  double sigma = 0.0;
  std::uint64_t seed = 0x5d9f00d5ULL;

  static CycleNoise none() { return CycleNoise{0.0, 0}; }
  static CycleNoise paper_default() { return CycleNoise{0.20, 0x5d9f00d5ULL}; }
};

/// Abstract "when does iteration g happen" mapping, monotone in g.  The
/// power-call scheduler plans against this interface; implementations are
/// the pure-compute Timeline and the StallAwareTimeline that also accounts
/// for the I/O stalls the compiler knows about.
class TimeEstimate {
 public:
  virtual ~TimeEstimate() = default;

  /// Time at which global iteration `g` begins (monotone in g).
  virtual TimeMs at_global(std::int64_t g) const = 0;

  /// One past the last global iteration.
  virtual std::int64_t total_iterations() const = 0;
};

/// Maps iteration points to cumulative compute time (no I/O stalls).
class Timeline final : public TimeEstimate {
 public:
  /// Nominal timeline (multiplier 1 per nest).
  Timeline(const ir::Program& program, double clock_hz = kDefaultClockHz);

  /// Timeline with explicit per-nest cycle multipliers.
  Timeline(const ir::Program& program, std::vector<double> multipliers,
           double clock_hz);

  /// Timeline with log-normal per-nest multipliers drawn from `noise`.
  static Timeline with_noise(const ir::Program& program,
                             const CycleNoise& noise,
                             double clock_hz = kDefaultClockHz);

  /// Compute-time at which iteration `point` starts.
  TimeMs at(const ir::IterationPoint& point) const;

  /// Compute-time at the global iteration coordinate `g`.
  TimeMs at_global(std::int64_t g) const override;

  std::int64_t total_iterations() const override { return space_.total(); }

  /// Duration of one iteration of nest `n`.
  TimeMs per_iteration_ms(int n) const;

  /// Start time of nest `n`.
  TimeMs nest_start(int n) const;

  /// Total compute time of the program.
  TimeMs total() const;

  const IterationSpace& space() const { return space_; }
  double clock_hz() const { return clock_hz_; }
  const std::vector<double>& multipliers() const { return multipliers_; }

 private:
  void build(const ir::Program& program);

  IterationSpace space_;
  double clock_hz_;
  std::vector<double> multipliers_;   // per nest
  std::vector<TimeMs> nest_start_;    // per nest
  std::vector<TimeMs> per_iter_ms_;   // per nest
  TimeMs total_ = 0;
};

}  // namespace sdpm::trace
