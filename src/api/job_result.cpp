#include "api/job_result.h"

#include "util/error.h"

namespace sdpm::api {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "";
    case ErrorCode::kExecError: return "EXEC_ERROR";
    case ErrorCode::kJobTimeout: return "JOB_TIMEOUT";
    case ErrorCode::kQuarantined: return "QUARANTINED";
    case ErrorCode::kResultTooLarge: return "RESULT_TOO_LARGE";
    case ErrorCode::kFrameTooLarge: return "FRAME_TOO_LARGE";
    case ErrorCode::kCancelled: return "CANCELLED";
  }
  return "";
}

std::optional<ErrorCode> error_code_from(const std::string& text) {
  for (const ErrorCode code :
       {ErrorCode::kNone, ErrorCode::kExecError, ErrorCode::kJobTimeout,
        ErrorCode::kQuarantined, ErrorCode::kResultTooLarge,
        ErrorCode::kFrameTooLarge, ErrorCode::kCancelled}) {
    if (text == to_string(code)) return code;
  }
  return std::nullopt;
}

SchemeOutcome outcome_from(const experiments::SchemeResult& result) {
  SchemeOutcome out;
  out.scheme = experiments::to_string(result.scheme);
  out.energy_j = result.energy_j;
  out.execution_ms = result.execution_ms;
  out.requests = result.requests;
  out.normalized_energy = result.normalized_energy;
  out.normalized_time = result.normalized_time;
  out.mispredict_pct = result.mispredict_pct;
  out.power_calls = result.power_calls;
  return out;
}

Json JobResult::to_json() const {
  Json schemes_json = Json::array();
  for (const SchemeOutcome& s : schemes) {
    Json entry = Json::object();
    entry.set("scheme", s.scheme)
        .set("energy_j", s.energy_j)
        .set("execution_ms", s.execution_ms)
        .set("requests", s.requests)
        .set("normalized_energy", s.normalized_energy)
        .set("normalized_time", s.normalized_time)
        .set("power_calls", s.power_calls);
    if (s.mispredict_pct.has_value()) {
      entry.set("mispredict_pct", *s.mispredict_pct);
    }
    schemes_json.push_back(std::move(entry));
  }
  Json json = Json::object();
  json.set("label", label)
      .set("benchmark", benchmark)
      .set("transform", transform)
      .set("schemes", std::move(schemes_json))
      .set("wall_ms", wall_ms);
  if (!analysis_json.empty()) {
    json.set("analysis", Json::parse(analysis_json));
  }
  if (!notes.empty()) {
    Json notes_json = Json::array();
    for (const std::string& note : notes) notes_json.push_back(Json(note));
    json.set("notes", std::move(notes_json));
  }
  return json;
}

JobResult JobResult::from_json(const Json& json) {
  if (!json.is_object()) throw Error("JobResult: expected a JSON object");
  JobResult result;
  result.label = json.at("label").as_string();
  result.benchmark = json.at("benchmark").as_string();
  result.transform = json.at("transform").as_string();
  for (const Json& entry : json.at("schemes").as_array()) {
    SchemeOutcome s;
    s.scheme = entry.at("scheme").as_string();
    s.energy_j = entry.at("energy_j").as_double();
    s.execution_ms = entry.at("execution_ms").as_double();
    s.requests = entry.at("requests").as_int();
    s.normalized_energy = entry.at("normalized_energy").as_double();
    s.normalized_time = entry.at("normalized_time").as_double();
    s.power_calls = entry.at("power_calls").as_int();
    if (const Json* mp = entry.find("mispredict_pct")) {
      s.mispredict_pct = mp->as_double();
    }
    result.schemes.push_back(std::move(s));
  }
  if (const Json* wall = json.find("wall_ms")) {
    result.wall_ms = wall->as_double();
  }
  if (const Json* analysis = json.find("analysis")) {
    result.analysis_json = analysis->dump();
  }
  if (const Json* notes = json.find("notes")) {
    for (const Json& note : notes->as_array()) {
      result.notes.push_back(note.as_string());
    }
  }
  return result;
}

}  // namespace sdpm::api
