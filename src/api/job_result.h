// sdpm::api::JobResult — the stable result record of one JobSpec.
//
// Mirrors experiments::SchemeResult scheme by scheme but carries only
// stable, serializable values: the same JSON shape travels over the
// service protocol, lands in CLI --format json output, and round-trips
// through from_json for clients that store results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "experiments/runner.h"
#include "util/json.h"

namespace sdpm::api {

/// Stable failure codes for jobs that end in a terminal error.  The string
/// form travels in job snapshots ("error_code") and protocol error frames
/// ("code"); clients branch on the code, never on the human-readable
/// message.  Codes are append-only: a value is never renamed or reused.
enum class ErrorCode {
  kNone,            ///< no failure
  kExecError,       ///< evaluation threw (bad spec interaction, sim error)
  kJobTimeout,      ///< exceeded the per-job wall-clock deadline
  kQuarantined,     ///< poison job: crashed/overran the daemon too often
  kResultTooLarge,  ///< result exceeds the response frame cap
  kFrameTooLarge,   ///< request frame exceeds the frame cap
  kCancelled,       ///< cancelled by a client before dispatch
};

/// Stable wire string of a code ("EXEC_ERROR", "JOB_TIMEOUT", ...).
const char* to_string(ErrorCode code);

/// Parse a wire string; empty optional for unknown codes (forward
/// compatibility: clients treat unknown codes as a generic failure).
std::optional<ErrorCode> error_code_from(const std::string& text);

/// One scheme's outcome within a job (paper Figs. 3/4 columns).
struct SchemeOutcome {
  std::string scheme;
  double energy_j = 0;
  double execution_ms = 0;
  std::int64_t requests = 0;
  double normalized_energy = 1.0;  ///< vs Base under the same config
  double normalized_time = 1.0;
  std::optional<double> mispredict_pct;  ///< CM schemes only (Table 3)
  std::int64_t power_calls = 0;

  friend bool operator==(const SchemeOutcome&,
                         const SchemeOutcome&) = default;
};

struct JobResult {
  std::string label;      ///< the spec's display label
  std::string benchmark;
  std::string transform;
  std::vector<SchemeOutcome> schemes;  ///< in the spec's scheme order
  /// Wall time this job's evaluation consumed (sum over its scheme tasks);
  /// a measurement, not a simulated quantity — excluded from equality.
  double wall_ms = 0;
  /// Optional analyzer report (analysis::render_json v2: diagnostics,
  /// fix-its, certificate) attached by the service `analyze` op.  Stored
  /// as its JSON text; to_json embeds it as a parsed "analysis" object and
  /// from_json recovers the canonical dump, so the payload — including
  /// every fix-it edit — survives the wire round trip structurally.
  /// Excluded from equality (like wall_ms: canonicalization may reorder
  /// keys without changing meaning).
  std::string analysis_json;
  /// Advisory messages attached by the service ("deprecation: ..." for
  /// schema-v1 specs, for example).  Informational only — excluded from
  /// equality so a note never makes two otherwise-identical results differ.
  std::vector<std::string> notes;

  friend bool operator==(const JobResult& a, const JobResult& b) {
    return a.label == b.label && a.benchmark == b.benchmark &&
           a.transform == b.transform && a.schemes == b.schemes;
  }

  Json to_json() const;
  static JobResult from_json(const Json& json);
};

/// Lift one internal scheme result into the stable record.
SchemeOutcome outcome_from(const experiments::SchemeResult& result);

}  // namespace sdpm::api
