// sdpm::api::Session — the single public entry point to the simulation
// stack.
//
// A Session owns the execution resources a caller needs to evaluate
// JobSpecs: the worker count, the process-wide TraceCache policy, and the
// optional observability hooks.  Every tool in the repo — sdpm_cli
// run/bench/analyze, the figure benches, and the sdpm_serviced daemon —
// goes through this facade; Runner, SweepEngine, SimOptions and friends
// are implementation details behind it.
//
// Determinism contract: run(), run_batch() and a serial per-scheme Runner
// evaluation all produce bit-identical JobResults for the same spec —
// randomness is keyed by the seeds carried in the spec, and parallel
// evaluation writes into position-indexed slots (see SweepEngine).
#pragma once

#include <optional>
#include <vector>

#include "analysis/mutate.h"
#include "analysis/registry.h"
#include "analysis/repair.h"
#include "api/job_result.h"
#include "api/job_spec.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::api {

struct SessionOptions {
  /// Worker threads for batched evaluation; 0 = default_jobs()
  /// (SDPM_JOBS / --jobs / hardware concurrency).
  unsigned jobs = 0;
  /// When false, disables the process-wide TraceCache at construction
  /// (never re-enables it: the cache is process state, and a Session only
  /// opts out, it does not override another component's opt-out).
  bool use_cache = true;
  /// Cell-lifecycle tracer for batched runs (not owned; see
  /// SweepEngine::set_tracer).
  obs::EventTracer* sweep_tracer = nullptr;
};

/// Per-run observability hooks for run(): attach `replay_tracer` to the
/// replay of `trace_scheme` (required to be a single non-oracle scheme by
/// the same rule the CLI enforces; validation throws otherwise).
struct RunHooks {
  obs::EventTracer* replay_tracer = nullptr;
  std::optional<experiments::Scheme> trace_scheme;
  /// Fold the shared Base report's distributions (idle gaps, response
  /// times) into the global metrics registry after the run — what
  /// `sdpm_cli run --format metrics` snapshots.
  bool record_base_metrics = false;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Evaluate one job: every resolved scheme, in the spec's order.
  JobResult run(const JobSpec& spec) { return run(spec, RunHooks{}); }
  JobResult run(const JobSpec& spec, const RunHooks& hooks);

  /// Evaluate a batch as ONE sweep dispatch: all (job, scheme) tasks fan
  /// out over one thread pool, so a slow job cannot serialize the tail and
  /// repeated (program, layout, options) cells hit the shared TraceCache.
  /// Results are ordered exactly as `specs`.
  std::vector<JobResult> run_batch(const std::vector<JobSpec>& specs);

  /// Statically analyze the compiled power-call schedule of `spec` for
  /// `mode` (no simulation).  `mutation` seeds a known bug class first —
  /// the analyzer-validation path of `sdpm_cli analyze --mutate`.  The
  /// report carries the certified energy/delay bounds of the schedule
  /// (analysis/bounds.h) whenever the access model accepts the program.
  analysis::AnalysisReport analyze(
      const JobSpec& spec, core::PowerMode mode,
      const std::optional<analysis::Mutation>& mutation = std::nullopt) const;

  /// Analyze and auto-repair the schedule of `spec` to a fixed point
  /// (`sdpm_cli analyze --fix`): apply the passes' SDPM-F### fix-its,
  /// re-analyze, repeat.  The outcome carries the repaired schedule, the
  /// striping it must be laid out with, and the final report (with
  /// certificate, like analyze()).
  analysis::RepairOutcome repair(
      const JobSpec& spec, core::PowerMode mode,
      const std::optional<analysis::Mutation>& mutation = std::nullopt) const;

  const SessionOptions& options() const { return options_; }

 private:
  SessionOptions options_;
};

}  // namespace sdpm::api
