// sdpm::api::JobSpec — the one versioned description of a simulation job.
//
// Historically a job was scattered over three overlapping option structs:
// sim::SimOptions (replay), trace::GeneratorOptions (access model) and the
// experiments::ExperimentConfig sweep-cell config (subsystem + compiler +
// noise + faults), each with its own defaults.  JobSpec collapses them into
// a single flat, versioned, JSON-round-trippable record that the CLI, the
// service wire protocol and the daemon's batching/fingerprinting all share.
// The internal structs still exist, but only as implementation details
// behind to_config(); every tool builds a JobSpec.
//
// DEFAULTING RULES (the single authoritative statement):
//   - Every field of JobSpec carries its default in this header; a
//     default-constructed JobSpec is the paper's default configuration
//     (swim is the sensitivity-study subject, so `benchmark` defaults to
//     "swim"; all seven schemes; no transformation; 8 disks x 64 KB
//     stripes; 6 MB buffer cache; paper-default timing noise; no faults).
//   - `schemes` empty means "all seven, in presentation order".
//   - `stripe_factor` 0 means "equal to `disks`" (whole-subsystem striping,
//     the Table 1 default); any other width must be explicit.
//   - `block_size` 0 means "each array's stripe size" (the generator rule).
//   - JSON documents may omit any field: a missing field takes the default
//     above.  Unknown fields are rejected — schema version 1 is strict, so
//     a typo'd key fails loudly instead of silently meaning "default".
//   - `version` must be present in a parsed document only when it is not 1;
//     documents written by to_json() always carry it.
//
// COMPATIBILITY POLICY: kJobSpecSchemaVersion bumps only when a field
// changes meaning or a default changes value (additive optional fields do
// not bump it).  A parser accepts documents with version <= its own and
// rejects newer ones, so an old daemon never silently misreads a newer
// client's spec.
//
// SCHEMA VERSION 2 adds the `device` field: a preset name (see
// disk::PowerLadder::preset_names) or an inline power-ladder descriptor
// object (disk::PowerLadder::to_json format).  Version-1 documents keep
// parsing and run on the default `ultrastar_36z15` device; Session attaches
// a structured deprecation note to their JobResult.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "experiments/runner.h"
#include "util/json.h"
#include "util/units.h"

namespace sdpm::api {

inline constexpr int kJobSpecSchemaVersion = 2;

struct JobSpec {
  int version = kJobSpecSchemaVersion;
  /// Display label; empty derives "<benchmark>/<transform>" on demand.
  std::string label;

  // --- workload ---------------------------------------------------------
  std::string benchmark = "swim";
  /// Scheme names ("Base".."CMDRPM"); empty = all seven.
  std::vector<std::string> schemes;
  /// Code transformation: none | LF | TL | LF+DL | TL+DL.
  std::string transform = "none";

  // --- disk subsystem ---------------------------------------------------
  int disks = 8;
  Bytes stripe_size = kib(64);
  int stripe_factor = 0;  ///< 0 = `disks`
  int starting_disk = 0;
  /// Device preset name ("" = the ultrastar_36z15 default).  Mutually
  /// exclusive with `device_inline_json`.
  std::string device;
  /// Canonical JSON (PowerLadder::to_json().dump()) of an inline ladder
  /// descriptor; "" = none.  Set via JobSpecBuilder::device_ladder or a v2
  /// document whose "device" field is an object.
  std::string device_inline_json;

  // --- access model (was trace::GeneratorOptions) -----------------------
  Bytes block_size = 0;  ///< 0 = per-array stripe size
  Bytes cache_bytes = mib(6);
  double power_call_overhead_ms = 0.02;  ///< Tm, paper Eq. 1
  double prefetch_lead_ms = 0;

  // --- timing noise (estimated-vs-actual gap, Table 3) ------------------
  double noise_sigma = 0.20;
  std::int64_t noise_seed = 0x5d9f00d5LL;
  double profile_sigma = 0.20;
  std::int64_t profile_seed = 0x9e0f11e5eedLL;

  // --- compiler ---------------------------------------------------------
  bool preactivate = true;
  Bytes tile_bytes = 256 * 1024;
  std::int64_t call_site_granularity = 1;

  // --- fault injection (was sim::FaultConfig) ---------------------------
  double fault_spinup = 0;
  double fault_media = 0;
  double fault_jitter = 0;
  double fault_drop = 0;
  int fault_retries = 4;
  std::int64_t fault_seed = 0x5d12fa071f5LL;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;

  /// The label to display: `label` if set, else "benchmark/transform".
  std::string display_label() const;

  /// Validate every field (benchmark exists, schemes and transform parse,
  /// ranges are sane); throws sdpm::Error naming the offending field.
  void validate() const;

  /// Lower to the internal experiment configuration.  Calls validate().
  experiments::ExperimentConfig to_config() const;

  /// The scheme list this spec resolves to (all seven when empty).
  std::vector<experiments::Scheme> resolved_schemes() const;

  /// The parsed transformation.
  core::Transformation resolved_transform() const;

  /// The disk model this spec runs on: the inline ladder when set, else
  /// the named preset, else the paper's default disk.
  disk::DiskParameters resolved_device() const;

  /// JSON document carrying every field (defaults included), keys sorted.
  Json to_json() const;

  /// Parse a document produced by to_json() or written by hand; missing
  /// fields take defaults, unknown fields and newer versions are rejected.
  static JobSpec from_json(const Json& json);

  /// Canonical byte representation: to_json().dump().  Two specs are the
  /// same job exactly when their canonical strings are equal — the daemon
  /// batches on it and it round-trips through from_json bit for bit.
  std::string canonical_json() const;
};

/// Fluent builder for the common construction sites (tests, tools):
///   JobSpec spec = JobSpecBuilder("swim").scheme("CMDRPM").disks(4).build();
/// build() validates and throws on an inconsistent spec.
class JobSpecBuilder {
 public:
  JobSpecBuilder() = default;
  explicit JobSpecBuilder(std::string benchmark) {
    spec_.benchmark = std::move(benchmark);
  }

  JobSpecBuilder& label(std::string v) { spec_.label = std::move(v); return *this; }
  JobSpecBuilder& benchmark(std::string v) { spec_.benchmark = std::move(v); return *this; }
  JobSpecBuilder& scheme(const std::string& v) { spec_.schemes.push_back(v); return *this; }
  JobSpecBuilder& schemes(std::vector<std::string> v) { spec_.schemes = std::move(v); return *this; }
  JobSpecBuilder& transform(std::string v) { spec_.transform = std::move(v); return *this; }
  JobSpecBuilder& disks(int v) { spec_.disks = v; return *this; }
  JobSpecBuilder& stripe_size(Bytes v) { spec_.stripe_size = v; return *this; }
  JobSpecBuilder& stripe_factor(int v) { spec_.stripe_factor = v; return *this; }
  JobSpecBuilder& starting_disk(int v) { spec_.starting_disk = v; return *this; }
  JobSpecBuilder& device(std::string v) { spec_.device = std::move(v); return *this; }
  /// Attach an inline power-ladder descriptor (stored as canonical JSON).
  JobSpecBuilder& device_ladder(const disk::PowerLadder& ladder);
  JobSpecBuilder& block_size(Bytes v) { spec_.block_size = v; return *this; }
  JobSpecBuilder& cache_bytes(Bytes v) { spec_.cache_bytes = v; return *this; }
  JobSpecBuilder& noise(double sigma) {
    spec_.noise_sigma = sigma;
    spec_.profile_sigma = sigma;
    return *this;
  }
  JobSpecBuilder& noise_seed(std::int64_t v) { spec_.noise_seed = v; return *this; }
  JobSpecBuilder& preactivate(bool v) { spec_.preactivate = v; return *this; }
  JobSpecBuilder& tile_bytes(Bytes v) { spec_.tile_bytes = v; return *this; }
  JobSpecBuilder& fault_spinup(double v) { spec_.fault_spinup = v; return *this; }
  JobSpecBuilder& fault_media(double v) { spec_.fault_media = v; return *this; }
  JobSpecBuilder& fault_jitter(double v) { spec_.fault_jitter = v; return *this; }
  JobSpecBuilder& fault_drop(double v) { spec_.fault_drop = v; return *this; }
  JobSpecBuilder& fault_seed(std::int64_t v) { spec_.fault_seed = v; return *this; }

  /// Validate and return the spec (throws sdpm::Error when invalid).
  JobSpec build() const {
    spec_.validate();
    return spec_;
  }

 private:
  JobSpec spec_;
};

/// Parse a scheme name; empty optional for unknown names.
std::optional<experiments::Scheme> scheme_from_name(const std::string& name);

/// Parse a transformation name; empty optional for unknown names.
std::optional<core::Transformation> transform_from_name(
    const std::string& name);

}  // namespace sdpm::api
