#include "api/job_spec.h"

#include <algorithm>

#include "disk/ladder.h"
#include "util/error.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

namespace sdpm::api {
namespace {

/// Field-by-field (name, reader, writer) plumbing would triple the line
/// count; instead each scalar field is declared once in apply()/emit()
/// below and the strict-unknown-key check walks the parsed object against
/// the emitted key set (to_json() writes every field, so the set is total).

void require(bool condition, const std::string& message) {
  if (!condition) throw Error("JobSpec: " + message);
}

double get_double(const Json& json, const char* key, double fallback) {
  const Json* field = json.find(key);
  return field == nullptr ? fallback : field->as_double();
}

std::int64_t get_int(const Json& json, const char* key,
                     std::int64_t fallback) {
  const Json* field = json.find(key);
  return field == nullptr ? fallback : field->as_int();
}

bool get_bool(const Json& json, const char* key, bool fallback) {
  const Json* field = json.find(key);
  return field == nullptr ? fallback : field->as_bool();
}

std::string get_string(const Json& json, const char* key,
                       const std::string& fallback) {
  const Json* field = json.find(key);
  return field == nullptr ? fallback : field->as_string();
}

}  // namespace

std::optional<experiments::Scheme> scheme_from_name(const std::string& name) {
  for (const experiments::Scheme s : experiments::all_schemes()) {
    if (name == experiments::to_string(s)) return s;
  }
  return std::nullopt;
}

std::optional<core::Transformation> transform_from_name(
    const std::string& name) {
  using core::Transformation;
  for (const Transformation t :
       {Transformation::kNone, Transformation::kLF, Transformation::kTL,
        Transformation::kLFDL, Transformation::kTLDL}) {
    if (name == core::to_string(t)) return t;
  }
  return std::nullopt;
}

std::string JobSpec::display_label() const {
  if (!label.empty()) return label;
  return benchmark + "/" + transform;
}

void JobSpec::validate() const {
  require(version >= 1 && version <= kJobSpecSchemaVersion,
          str_printf("unsupported schema version %d (this build understands "
                     "1..%d)",
                     version, kJobSpecSchemaVersion));
  const std::vector<std::string> known = workloads::benchmark_names();
  require(std::find(known.begin(), known.end(), benchmark) != known.end(),
          "unknown benchmark '" + benchmark + "'");
  for (const std::string& name : schemes) {
    require(scheme_from_name(name).has_value(),
            "unknown scheme '" + name + "'");
  }
  require(transform_from_name(transform).has_value(),
          "unknown transform '" + transform + "'");
  require(disks > 0, "disks must be positive");
  require(stripe_size > 0, "stripe_size must be positive");
  require(stripe_factor >= 0 && stripe_factor <= disks,
          "stripe_factor must be in [0, disks]");
  require(starting_disk >= 0 && starting_disk < disks,
          "starting_disk must be in [0, disks)");
  require(block_size >= 0, "block_size must be non-negative");
  require(cache_bytes >= 0, "cache_bytes must be non-negative");
  require(power_call_overhead_ms >= 0,
          "power_call_overhead_ms must be non-negative");
  require(prefetch_lead_ms >= 0, "prefetch_lead_ms must be non-negative");
  require(noise_sigma >= 0 && profile_sigma >= 0,
          "noise sigmas must be non-negative");
  require(tile_bytes > 0, "tile_bytes must be positive");
  require(call_site_granularity > 0, "call_site_granularity must be positive");
  // Fault ranges are re-validated by FaultConfig::validate(); checking here
  // gives the error the JobSpec field name instead of the internal one.
  require(fault_spinup >= 0 && fault_spinup <= 1, "fault_spinup not in [0,1]");
  require(fault_media >= 0 && fault_media <= 1, "fault_media not in [0,1]");
  require(fault_jitter >= 0 && fault_jitter < 1, "fault_jitter not in [0,1)");
  require(fault_drop >= 0 && fault_drop <= 1, "fault_drop not in [0,1]");
  require(fault_retries >= 0, "fault_retries must be non-negative");
  require(device.empty() || device_inline_json.empty(),
          "device names a preset and carries an inline ladder; pick one");
  require(device.empty() || disk::PowerLadder::is_preset(device),
          "unknown device preset '" + device + "' (known: " +
              join(disk::PowerLadder::preset_names(), ", ") + ")");
  if (!device_inline_json.empty()) {
    // An inline ladder is stored pre-canonicalised; re-validating here keeps
    // hand-assembled specs honest.  from_json errors carry the ladder field.
    disk::PowerLadder::from_json(Json::parse(device_inline_json));
  }
}

experiments::ExperimentConfig JobSpec::to_config() const {
  validate();
  experiments::ExperimentConfig config;
  config.disk = resolved_device();
  config.total_disks = disks;
  config.striping.starting_disk = starting_disk;
  config.striping.stripe_factor = stripe_factor == 0 ? disks : stripe_factor;
  config.striping.stripe_size = stripe_size;
  config.gen.block_size = block_size;
  config.gen.cache_bytes = cache_bytes;
  config.gen.power_call_overhead_ms = power_call_overhead_ms;
  config.gen.prefetch_lead_ms = prefetch_lead_ms;
  config.transform = *transform_from_name(transform);
  config.actual_noise.sigma = noise_sigma;
  config.actual_noise.seed = static_cast<std::uint64_t>(noise_seed);
  config.profile_noise.sigma = profile_sigma;
  config.profile_noise.seed = static_cast<std::uint64_t>(profile_seed);
  config.call_site_granularity = call_site_granularity;
  config.preactivate = preactivate;
  config.tile_bytes = tile_bytes;
  config.faults.spin_up_failure_prob = fault_spinup;
  config.faults.media_error_prob = fault_media;
  config.faults.service_jitter = fault_jitter;
  config.faults.dropped_directive_prob = fault_drop;
  config.faults.max_spin_up_retries = fault_retries;
  config.faults.seed = static_cast<std::uint64_t>(fault_seed);
  config.faults.validate();
  return config;
}

std::vector<experiments::Scheme> JobSpec::resolved_schemes() const {
  if (schemes.empty()) return experiments::all_schemes();
  std::vector<experiments::Scheme> out;
  out.reserve(schemes.size());
  for (const std::string& name : schemes) {
    const std::optional<experiments::Scheme> scheme = scheme_from_name(name);
    require(scheme.has_value(), "unknown scheme '" + name + "'");
    out.push_back(*scheme);
  }
  return out;
}

core::Transformation JobSpec::resolved_transform() const {
  const std::optional<core::Transformation> t = transform_from_name(transform);
  require(t.has_value(), "unknown transform '" + transform + "'");
  return *t;
}

disk::DiskParameters JobSpec::resolved_device() const {
  if (!device_inline_json.empty()) {
    return disk::DiskParameters::from_ladder(
        disk::PowerLadder::from_json(Json::parse(device_inline_json)));
  }
  if (!device.empty()) return disk::DiskParameters::preset(device);
  return disk::DiskParameters::ultrastar_36z15();
}

Json JobSpec::to_json() const {
  Json schemes_json = Json::array();
  for (const std::string& name : schemes) schemes_json.push_back(Json(name));
  Json json = Json::object();
  json.set("version", version)
      .set("label", label)
      .set("benchmark", benchmark)
      .set("schemes", std::move(schemes_json))
      .set("transform", transform)
      .set("disks", disks)
      .set("stripe_size", stripe_size)
      .set("stripe_factor", stripe_factor)
      .set("starting_disk", starting_disk)
      .set("device", device_inline_json.empty()
                         ? Json(device)
                         : Json::parse(device_inline_json))
      .set("block_size", block_size)
      .set("cache_bytes", cache_bytes)
      .set("power_call_overhead_ms", power_call_overhead_ms)
      .set("prefetch_lead_ms", prefetch_lead_ms)
      .set("noise_sigma", noise_sigma)
      .set("noise_seed", noise_seed)
      .set("profile_sigma", profile_sigma)
      .set("profile_seed", profile_seed)
      .set("preactivate", preactivate)
      .set("tile_bytes", tile_bytes)
      .set("call_site_granularity", call_site_granularity)
      .set("fault_spinup", fault_spinup)
      .set("fault_media", fault_media)
      .set("fault_jitter", fault_jitter)
      .set("fault_drop", fault_drop)
      .set("fault_retries", fault_retries)
      .set("fault_seed", fault_seed);
  return json;
}

JobSpec JobSpec::from_json(const Json& json) {
  require(json.is_object(), "a job spec must be a JSON object");
  JobSpec spec;
  // Strict schema: every key in the document must be a key to_json()
  // writes.  The defaults object is built once per call; specs are parsed
  // at submission time, never per request, so clarity wins over caching.
  const Json known = JobSpec().to_json();
  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    require(known.contains(key), "unknown field '" + key + "'");
  }
  spec.version =
      static_cast<int>(get_int(json, "version", kJobSpecSchemaVersion));
  require(spec.version >= 1 && spec.version <= kJobSpecSchemaVersion,
          str_printf("unsupported schema version %d (this build understands "
                     "1..%d)",
                     spec.version, kJobSpecSchemaVersion));
  spec.label = get_string(json, "label", spec.label);
  spec.benchmark = get_string(json, "benchmark", spec.benchmark);
  if (const Json* field = json.find("schemes")) {
    spec.schemes.clear();
    for (const Json& name : field->as_array()) {
      spec.schemes.push_back(name.as_string());
    }
  }
  spec.transform = get_string(json, "transform", spec.transform);
  spec.disks = static_cast<int>(get_int(json, "disks", spec.disks));
  spec.stripe_size = get_int(json, "stripe_size", spec.stripe_size);
  spec.stripe_factor =
      static_cast<int>(get_int(json, "stripe_factor", spec.stripe_factor));
  spec.starting_disk =
      static_cast<int>(get_int(json, "starting_disk", spec.starting_disk));
  if (const Json* field = json.find("device")) {
    if (field->is_object()) {
      // Inline ladder: parse (which validates) and keep the canonical dump
      // so equal devices fingerprint equally regardless of author key order.
      spec.device_inline_json =
          disk::PowerLadder::from_json(*field).to_json().dump();
    } else {
      spec.device = field->as_string();
    }
  }
  spec.block_size = get_int(json, "block_size", spec.block_size);
  spec.cache_bytes = get_int(json, "cache_bytes", spec.cache_bytes);
  spec.power_call_overhead_ms = get_double(json, "power_call_overhead_ms",
                                           spec.power_call_overhead_ms);
  spec.prefetch_lead_ms =
      get_double(json, "prefetch_lead_ms", spec.prefetch_lead_ms);
  spec.noise_sigma = get_double(json, "noise_sigma", spec.noise_sigma);
  spec.noise_seed = get_int(json, "noise_seed", spec.noise_seed);
  spec.profile_sigma = get_double(json, "profile_sigma", spec.profile_sigma);
  spec.profile_seed = get_int(json, "profile_seed", spec.profile_seed);
  spec.preactivate = get_bool(json, "preactivate", spec.preactivate);
  spec.tile_bytes = get_int(json, "tile_bytes", spec.tile_bytes);
  spec.call_site_granularity =
      get_int(json, "call_site_granularity", spec.call_site_granularity);
  spec.fault_spinup = get_double(json, "fault_spinup", spec.fault_spinup);
  spec.fault_media = get_double(json, "fault_media", spec.fault_media);
  spec.fault_jitter = get_double(json, "fault_jitter", spec.fault_jitter);
  spec.fault_drop = get_double(json, "fault_drop", spec.fault_drop);
  spec.fault_retries =
      static_cast<int>(get_int(json, "fault_retries", spec.fault_retries));
  spec.fault_seed = get_int(json, "fault_seed", spec.fault_seed);
  spec.validate();
  return spec;
}

std::string JobSpec::canonical_json() const { return to_json().dump(); }

JobSpecBuilder& JobSpecBuilder::device_ladder(const disk::PowerLadder& ladder) {
  spec_.device_inline_json = ladder.to_json().dump();
  return *this;
}

}  // namespace sdpm::api
