#include "api/session.h"

#include <chrono>
#include <utility>

#include "analysis/bounds.h"
#include "experiments/sweep.h"
#include "experiments/trace_cache.h"
#include "obs/metrics.h"
#include "obs/sim_metrics.h"
#include "util/error.h"
#include "workloads/benchmarks.h"

namespace sdpm::api {
namespace {

JobResult result_shell(const JobSpec& spec) {
  JobResult result;
  result.label = spec.display_label();
  result.benchmark = spec.benchmark;
  result.transform = spec.transform;
  // A schema-v1 spec cannot name a device; it ran on the historical default.
  // The note is structured (stable "deprecation:" prefix) so clients can
  // surface or filter it without string-matching prose.
  if (spec.version < 2 && spec.device.empty() &&
      spec.device_inline_json.empty()) {
    result.notes.push_back(
        "deprecation: schema v1 job spec; ran on the default device "
        "'ultrastar_36z15' — migrate to schema v2 and set \"device\"");
  }
  return result;
}

bool is_oracle(experiments::Scheme scheme) {
  return scheme == experiments::Scheme::kItpm ||
         scheme == experiments::Scheme::kIdrpm;
}

}  // namespace

Session::Session(SessionOptions options) : options_(options) {
  if (!options_.use_cache) {
    experiments::TraceCache::global().set_enabled(false);
  }
}

JobResult Session::run(const JobSpec& spec, const RunHooks& hooks) {
  experiments::ExperimentConfig config = spec.to_config();
  const std::vector<experiments::Scheme> schemes = spec.resolved_schemes();

  if (hooks.replay_tracer != nullptr) {
    experiments::Scheme traced;
    if (hooks.trace_scheme.has_value()) {
      traced = *hooks.trace_scheme;
    } else {
      SDPM_REQUIRE(schemes.size() == 1,
                   "a replay tracer needs a single scheme (a multi-scheme "
                   "run would interleave unrelated replays)");
      traced = schemes.front();
    }
    SDPM_REQUIRE(!is_oracle(traced),
                 std::string(experiments::to_string(traced)) +
                     " is an analytic oracle with no replay to trace");
    config.tracer = hooks.replay_tracer;
    config.trace_scheme = traced;
  }

  const auto started = std::chrono::steady_clock::now();
  const workloads::Benchmark bench =
      workloads::make_benchmark(spec.benchmark);
  experiments::Runner runner(bench, config);
  JobResult result = result_shell(spec);
  if (spec.schemes.empty()) {
    // All seven: fan over the pool exactly like a sweep cell would.
    for (const experiments::SchemeResult& r : runner.run_all()) {
      result.schemes.push_back(outcome_from(r));
    }
  } else {
    for (const experiments::Scheme scheme : schemes) {
      result.schemes.push_back(outcome_from(runner.run(scheme)));
    }
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  if (hooks.record_base_metrics) {
    obs::record_report_metrics(obs::MetricsRegistry::global(),
                               runner.base_report());
  }
  obs::MetricsRegistry::global().add("api.jobs");
  return result;
}

std::vector<JobResult> Session::run_batch(const std::vector<JobSpec>& specs) {
  std::vector<experiments::SweepCell> cells;
  cells.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    experiments::SweepCell cell;
    cell.label = spec.display_label();
    cell.benchmark = workloads::make_benchmark(spec.benchmark);
    cell.config = spec.to_config();
    // An empty scheme list means "all seven" in both vocabularies, so the
    // resolved list only needs spelling out when explicit.
    for (const std::string& name : spec.schemes) {
      cell.schemes.push_back(*scheme_from_name(name));
    }
    cells.push_back(std::move(cell));
  }

  experiments::SweepEngine engine(options_.jobs);
  engine.set_tracer(options_.sweep_tracer);
  const std::vector<experiments::SweepCellResult> sweep = engine.run(cells);

  std::vector<JobResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    JobResult result = result_shell(specs[i]);
    for (const experiments::SchemeResult& r : sweep[i].results) {
      result.schemes.push_back(outcome_from(r));
    }
    result.wall_ms = sweep[i].wall_ms;
    results.push_back(std::move(result));
  }
  obs::MetricsRegistry::global().add("api.jobs",
                                     static_cast<std::int64_t>(specs.size()));
  obs::MetricsRegistry::global().add("api.batches");
  return results;
}

namespace {

/// Rebuild the exact compiler output analyze()/repair() inspect.
struct AnalyzedSchedule {
  core::ScheduleResult result;
  std::vector<layout::Striping> striping;
};

AnalyzedSchedule compiled_schedule(
    const experiments::ExperimentConfig& config,
    const workloads::Benchmark& bench, core::PowerMode mode,
    const std::optional<analysis::Mutation>& mutation) {
  core::CompilerOptions co;
  co.total_disks = config.total_disks;
  co.base_striping = config.striping;
  co.disk_params = config.disk;
  co.access = config.gen;
  co.call_site_granularity = config.call_site_granularity;
  co.preactivate = config.preactivate;
  co.tile_bytes = config.tile_bytes;
  const core::CompileOutput out =
      core::compile(bench.program, config.transform, mode, co);
  AnalyzedSchedule sched{
      core::ScheduleResult{out.program, out.plans, out.calls_inserted},
      out.striping};
  if (mutation.has_value()) {
    analysis::apply_mutation(*mutation, sched.result, sched.striping,
                             config.disk);
  }
  return sched;
}

/// Attach the certified bounds for the run the simulator would measure
/// (actual-noise trace).  A program the access model rejects analyzes to
/// SDPM-E090 and simply carries no certificate.
void attach_certificate(analysis::AnalysisReport& report,
                        const core::ScheduleResult& result,
                        const layout::LayoutTable& table,
                        const experiments::ExperimentConfig& config) {
  try {
    trace::GeneratorOptions gen = config.gen;
    gen.noise = config.actual_noise;
    report.certificate =
        analysis::certify_schedule(result, table, config.disk, gen);
  } catch (const Error&) {
    report.certificate.reset();
  }
}

}  // namespace

analysis::AnalysisReport Session::analyze(
    const JobSpec& spec, core::PowerMode mode,
    const std::optional<analysis::Mutation>& mutation) const {
  const experiments::ExperimentConfig config = spec.to_config();
  const workloads::Benchmark bench =
      workloads::make_benchmark(spec.benchmark);

  // Reproduce the compiler pipeline, then analyze its exact output.
  AnalyzedSchedule sched = compiled_schedule(config, bench, mode, mutation);
  const layout::LayoutTable table(sched.result.program, sched.striping,
                                  config.total_disks);
  analysis::AnalyzeOptions opts;
  opts.access = config.gen;
  opts.transform = config.transform;
  analysis::AnalysisReport report =
      analysis::analyze(sched.result, table, config.disk, opts);
  attach_certificate(report, sched.result, table, config);
  return report;
}

analysis::RepairOutcome Session::repair(
    const JobSpec& spec, core::PowerMode mode,
    const std::optional<analysis::Mutation>& mutation) const {
  const experiments::ExperimentConfig config = spec.to_config();
  const workloads::Benchmark bench =
      workloads::make_benchmark(spec.benchmark);

  AnalyzedSchedule sched = compiled_schedule(config, bench, mode, mutation);
  analysis::AnalyzeOptions opts;
  opts.access = config.gen;
  opts.transform = config.transform;
  analysis::RepairOutcome outcome = analysis::repair_schedule(
      std::move(sched.result), std::move(sched.striping), config.total_disks,
      config.disk, opts);
  const layout::LayoutTable table(outcome.result.program, outcome.striping,
                                  config.total_disks);
  attach_certificate(outcome.final_report, outcome.result, table, config);
  return outcome;
}

}  // namespace sdpm::api
