#!/bin/sh
# Determinism lint: byte-stable output is a project invariant (traces,
# sweep tables, analyzer reports are diffed in CI), so src/ must not read
# wall clocks, use unseeded randomness, or iterate unordered containers on
# any path that feeds an emitter.  Each check carries an explicit allowlist
# of the files where the construct is known not to reach program output;
# extending it is a reviewed change to this script, not a silent drift.
set -eu
cd "$(dirname "$0")/.."

status=0

# Wall-clock reads are allowed only for perf self-timing that is reported
# as wall time on purpose (bench output, sweep progress, the bench suite's
# throughput/calibration timers, CLI timing, the facade's
# JobResult.wall_ms, the daemon's span timestamps/uptime, and the
# journal's record timestamps — forensic metadata that replay ignores —
# plus the telemetry self-timings: the journal/store latency stages and
# the structured log's operator-facing epoch timestamps, all reported as
# wall time on purpose and never feeding a deterministic emitter).
WALL_ALLOW='src/sim/simulator\.cpp|src/experiments/sweep\.cpp|src/experiments/bench_baseline\.cpp|src/experiments/bench_suite\.cpp|src/tools/sdpm_cli\.cpp|src/api/session\.cpp|src/service/daemon\.cpp|src/service/journal\.cpp|src/service/store\.cpp|src/obs/log\.cpp'
wall=$(grep -rn -E 'steady_clock|system_clock|high_resolution_clock|gettimeofday|time\(NULL\)|time\(nullptr\)' src/ \
  | grep -Ev "^($WALL_ALLOW):" || true)
if [ -n "$wall" ]; then
  echo "determinism-lint: wall-clock read outside the allowlist:" >&2
  echo "$wall" >&2
  status=1
fi

# Unseeded randomness is never acceptable: every stochastic component
# (noise models, fault injection) flows through the seeded util/rng.
rand=$(grep -rn -E '[^_[:alnum:]](s?rand|drand48)\(|std::random_device' src/ || true)
if [ -n "$rand" ]; then
  echo "determinism-lint: unseeded randomness in src/:" >&2
  echo "$rand" >&2
  status=1
fi

# Unordered containers are fine as lookup tables but their iteration order
# is libc++/libstdc++-specific; any file holding one must be on the
# allowlist, which asserts its iteration never reaches an emitter.
UNORDERED_ALLOW='src/trace/buffer_cache\.h|src/policy/adaptive_tpm\.h|src/policy/drpm\.h|src/policy/resilient\.h|src/sim/faults\.h|src/experiments/trace_cache\.h'
unordered=$(grep -rln -E 'std::unordered_(map|set|multimap|multiset)' src/ \
  | grep -Ev "^($UNORDERED_ALLOW)$" || true)
if [ -n "$unordered" ]; then
  echo "determinism-lint: unordered container outside the allowlist" >&2
  echo "(verify its iteration order cannot reach an emitter, then extend" >&2
  echo "the allowlist in tools/lint_determinism.sh):" >&2
  echo "$unordered" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "determinism-lint: OK"
fi
exit "$status"
