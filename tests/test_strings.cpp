// String formatting helpers.
#include <gtest/gtest.h>

#include "util/strings.h"
#include "util/units.h"

namespace sdpm {
namespace {

TEST(Strings, Printf) {
  EXPECT_EQ(str_printf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(str_printf("%.2f", 1.239), "1.24");
  EXPECT_EQ(str_printf("empty"), "empty");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Strings, FmtBytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(kib(64)), "64 KB");
  EXPECT_EQ(fmt_bytes(mib(96)), "96.0 MB");
  EXPECT_EQ(fmt_bytes(gib(18)), "18.0 GB");
}

TEST(Strings, FmtTime) {
  EXPECT_EQ(fmt_time_ms(3.4), "3.40 ms");
  EXPECT_EQ(fmt_time_ms(10'900.0), "10.90 s");
  EXPECT_EQ(fmt_time_ms(0.02), "20.0 us");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

}  // namespace
}  // namespace sdpm
