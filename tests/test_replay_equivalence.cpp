// Replay-engine equivalence: the batched block-pull delivery and the
// devirtualized policy kernels are pure speed — every dispatch mode,
// batch size, and delivery path must produce bit-identical SimReports.
//
//   kernel vs virtual    DispatchMode::kForceKernel / kAuto against the
//                        kForceVirtual reference, per built-in policy,
//                        with and without fault injection, closed and
//                        open loop, traced and untraced;
//   batched vs scalar    RequestSource::next_batch overrides against a
//                        wrapper that only forwards next() (inheriting
//                        the scalar default), and batch sizes fuzzed
//                        through SimOptions::replay_batch.
//
// Every comparison is EXPECT_EQ, never NEAR.
#include <gtest/gtest.h>

#include <cstddef>
#include <initializer_list>

#include "core/schedule.h"
#include "layout/layout_table.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/proactive.h"
#include "policy/resilient.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/source.h"
#include "util/error.h"
#include "workloads/benchmarks.h"

namespace sdpm {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p =
      disk::DiskParameters::ultrastar_36z15();
  return p;
}

/// The galgel benchmark striped over 4 disks — the cheapest real trace —
/// run through the power-call scheduler (CMDRPM) so the stream carries
/// real power events: ProactivePolicy executes directives, the fault
/// model can drop them, and the power-event arm of the batch loop is
/// exercised in every cell.
const trace::Trace& galgel_trace() {
  static const trace::Trace t = [] {
    const workloads::Benchmark bench = workloads::make_galgel();
    const layout::LayoutTable table(bench.program,
                                    layout::Striping{0, 4, kib(64)}, 4);
    const core::ScheduleResult scheduled =
        core::schedule_power_calls(bench.program, table, params());
    trace::TraceGenerator generator(scheduled.program, table);
    trace::Trace trace = generator.generate();
    // The matrix below assumes both item kinds are present.
    SDPM_REQUIRE(!trace.power_events.empty(),
                 "scheduler inserted no power events");
    return trace;
  }();
  return t;
}

sim::SimOptions faulty(sim::SimOptions o) {
  o.faults.spin_up_failure_prob = 0.3;
  o.faults.media_error_prob = 0.05;
  o.faults.dropped_directive_prob = 0.2;
  o.faults.service_jitter = 0.1;
  o.faults.seed = 42;
  return o;
}

sim::SimOptions open_loop(sim::SimOptions o) {
  o.mode = sim::ReplayMode::kOpenLoop;
  return o;
}

void expect_bit_identical(const sim::SimReport& a, const sim::SimReport& b) {
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.execution_ms, b.execution_ms);
  EXPECT_EQ(a.compute_ms, b.compute_ms);
  EXPECT_EQ(a.io_stall_ms, b.io_stall_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    ASSERT_EQ(a.responses[i], b.responses[i]) << "request " << i;
  }
  ASSERT_EQ(a.disks.size(), b.disks.size());
  for (std::size_t d = 0; d < a.disks.size(); ++d) {
    EXPECT_EQ(a.disks[d].breakdown.total_j(), b.disks[d].breakdown.total_j());
    EXPECT_EQ(a.disks[d].services, b.disks[d].services);
    EXPECT_EQ(a.disks[d].spin_downs, b.disks[d].spin_downs);
    EXPECT_EQ(a.disks[d].demand_spin_ups, b.disks[d].demand_spin_ups);
    EXPECT_EQ(a.disks[d].rpm_transitions, b.disks[d].rpm_transitions);
    EXPECT_EQ(a.disks[d].spin_up_retries, b.disks[d].spin_up_retries);
    EXPECT_EQ(a.disks[d].media_errors, b.disks[d].media_errors);
    EXPECT_EQ(a.disks[d].dropped_directives, b.disks[d].dropped_directives);
  }
}

/// Forwards next() only: next_batch falls back to the RequestSource
/// default (a scalar loop), exercising the batched-vs-scalar contract.
class ScalarOnlySource final : public trace::RequestSource {
 public:
  explicit ScalarOnlySource(trace::RequestSource& inner) : inner_(&inner) {}

  bool next(trace::TraceItem& item) override { return inner_->next(item); }
  int total_disks() const override { return inner_->total_disks(); }
  TimeMs compute_total_ms() const override {
    return inner_->compute_total_ms();
  }

 private:
  trace::RequestSource* inner_;
};

/// Run the trace under a fresh policy with `options`, capturing the full
/// response vector so the comparison covers per-request behavior.
template <typename MakePolicy>
sim::SimReport run(const trace::Trace& trace, MakePolicy make_policy,
                   sim::SimOptions options, sim::DispatchMode dispatch,
                   std::size_t batch = sim::kReplayBatchSize) {
  options.capture_responses = true;
  options.dispatch = dispatch;
  options.replay_batch = batch;
  auto policy = make_policy();
  return sim::simulate(trace, params(), policy, options);
}

/// The full dispatch x batch-size matrix for one (policy, options) cell:
/// the virtual engine at the default batch is the reference; kAuto,
/// kForceKernel (when `has_kernel`) and every fuzzed batch size must
/// reproduce it exactly, as must the scalar-only delivery wrapper.
template <typename MakePolicy>
void check_matrix(const trace::Trace& trace, MakePolicy make_policy,
                  const sim::SimOptions& options, bool has_kernel) {
  const sim::SimReport reference =
      run(trace, make_policy, options, sim::DispatchMode::kForceVirtual);

  {
    SCOPED_TRACE("kAuto vs kForceVirtual");
    expect_bit_identical(
        reference,
        run(trace, make_policy, options, sim::DispatchMode::kAuto));
  }
  if (has_kernel) {
    SCOPED_TRACE("kForceKernel vs kForceVirtual");
    expect_bit_identical(
        reference,
        run(trace, make_policy, options, sim::DispatchMode::kForceKernel));
  }
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                  std::size_t{255}, std::size_t{256},
                                  std::size_t{4096}}) {
    SCOPED_TRACE("replay_batch=" + std::to_string(batch));
    expect_bit_identical(reference, run(trace, make_policy, options,
                                        sim::DispatchMode::kAuto, batch));
  }
  {
    SCOPED_TRACE("scalar-only source");
    trace::TraceCursor cursor(trace);
    ScalarOnlySource scalar(cursor);
    sim::SimOptions o = options;
    o.capture_responses = true;
    auto policy = make_policy();
    expect_bit_identical(reference,
                         sim::simulate(scalar, params(), policy, o));
  }
}

/// The four standard option cells: {closed, open} x {fault-free, faulty}.
template <typename MakePolicy>
void check_all_cells(const trace::Trace& trace, MakePolicy make_policy,
                     bool has_kernel) {
  {
    SCOPED_TRACE("closed-loop fault-free");
    check_matrix(trace, make_policy, sim::SimOptions{}, has_kernel);
  }
  {
    SCOPED_TRACE("closed-loop faulty");
    check_matrix(trace, make_policy, faulty({}), has_kernel);
  }
  {
    SCOPED_TRACE("open-loop fault-free");
    check_matrix(trace, make_policy, open_loop({}), has_kernel);
  }
  {
    SCOPED_TRACE("open-loop faulty");
    check_matrix(trace, make_policy, open_loop(faulty({})), has_kernel);
  }
}

TEST(ReplayEquivalence, BasePolicy) {
  check_all_cells(
      galgel_trace(), [] { return policy::BasePolicy(); }, true);
}

TEST(ReplayEquivalence, TpmPolicy) {
  check_all_cells(
      galgel_trace(), [] { return policy::TpmPolicy(); }, true);
}

TEST(ReplayEquivalence, AdaptiveTpmPolicy) {
  check_all_cells(
      galgel_trace(), [] { return policy::AdaptiveTpmPolicy(); }, true);
}

TEST(ReplayEquivalence, DrpmPolicy) {
  check_all_cells(
      galgel_trace(), [] { return policy::DrpmPolicy(); }, true);
}

TEST(ReplayEquivalence, ProactivePolicyWithDirectives) {
  // galgel's compiled program inserts power calls, so the proactive
  // policy replays real directives through both engines.
  check_all_cells(
      galgel_trace(), [] { return policy::ProactivePolicy("CMDRPM"); },
      true);
}

// ResilientPolicy is a wrapper with no static kernel: kAuto must stay on
// the virtual engine and still be invariant to batch size and delivery.
TEST(ReplayEquivalence, ResilientWrapperStaysVirtual) {
  struct ResilientTpm {
    policy::TpmPolicy inner;
    policy::ResilientPolicy wrapper{inner};
    operator policy::ResilientPolicy&() { return wrapper; }
  };
  auto make_policy = [] { return ResilientTpm(); };
  {
    SCOPED_TRACE("closed-loop fault-free");
    check_matrix(galgel_trace(), make_policy, sim::SimOptions{}, false);
  }
  {
    SCOPED_TRACE("closed-loop faulty");
    check_matrix(galgel_trace(), make_policy, faulty({}), false);
  }
}

TEST(ReplayEquivalence, ForceKernelOnKernellessPolicyThrows) {
  policy::TpmPolicy inner;
  policy::ResilientPolicy wrapper(inner);
  sim::SimOptions options;
  options.dispatch = sim::DispatchMode::kForceKernel;
  EXPECT_THROW(sim::simulate(galgel_trace(), params(), wrapper, options),
               Error);
}

// Tracing must not perturb results in either engine: a counting sink
// consumes every event while the reports stay bit-identical, and both
// engines emit the same number of events.
TEST(ReplayEquivalence, TracedKernelMatchesTracedVirtual) {
  auto traced_run = [&](sim::DispatchMode dispatch, std::int64_t* events) {
    obs::CountingSink sink;
    obs::EventTracer tracer;
    tracer.add_sink(sink);
    sim::SimOptions options;
    options.tracer = &tracer;
    policy::TpmPolicy policy;
    options.capture_responses = true;
    options.dispatch = dispatch;
    const sim::SimReport report =
        sim::simulate(galgel_trace(), params(), policy, options);
    *events = sink.total();
    return report;
  };
  std::int64_t virtual_events = 0;
  std::int64_t kernel_events = 0;
  const sim::SimReport virt =
      traced_run(sim::DispatchMode::kForceVirtual, &virtual_events);
  const sim::SimReport kern =
      traced_run(sim::DispatchMode::kForceKernel, &kernel_events);
  expect_bit_identical(virt, kern);
  EXPECT_GT(virtual_events, 0);
  EXPECT_EQ(virtual_events, kernel_events);
}

// A second benchmark (swim, 8 disks — the microbench workload) through
// the fault-free matrix: guards against galgel-specific coincidences.
TEST(ReplayEquivalence, SwimEightDisks) {
  const workloads::Benchmark bench = workloads::make_swim();
  const layout::LayoutTable table(bench.program,
                                  layout::Striping{0, 8, kib(64)}, 8);
  trace::TraceGenerator generator(bench.program, table);
  const trace::Trace trace = generator.generate();
  check_matrix(
      trace, [] { return policy::DrpmPolicy(); }, sim::SimOptions{}, true);
}

}  // namespace
}  // namespace sdpm
