// Power-call scheduler: Eq. 1, gap planning, pre-activation placement.
#include <gtest/gtest.h>

#include "analysis/verify_schedule.h"
#include "core/mispredict.h"
#include "core/schedule.h"
#include "ir/builder.h"
#include "trace/stall_aware.h"
#include "util/error.h"

namespace sdpm::core {
namespace {

using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

TEST(Eq1, PreactivationDistance) {
  // d = ceil(Tsu / (s + Tm)); paper Eq. 1.
  EXPECT_EQ(preactivation_distance(10'900.0, 1.0, 0.0), 10'900);
  EXPECT_EQ(preactivation_distance(10'900.0, 0.5, 0.5), 10'900);
  EXPECT_EQ(preactivation_distance(100.0, 3.0, 0.0), 34);
  EXPECT_EQ(preactivation_distance(0.0, 1.0, 0.0), 0);
}

// Two nests over a private array each; disk 1 holds only B, which is used
// in the second (long) nest — so disk 1 has a long leading idle period.
struct TwoPhase {
  ir::Program program;
  std::vector<layout::Striping> striping;

  explicit TwoPhase(double cycles_per_iter = 75'000.0) {
    // 75'000 cycles at 750 MHz = 0.1 ms per iteration.
    ProgramBuilder pb("twophase");
    const ArrayId a = pb.array("A", {64 * 8192});  // 64 blocks
    const ArrayId b = pb.array("B", {64 * 8192});
    pb.nest("phase1")
        .loop("i", 0, 64 * 8192)
        .stmt(cycles_per_iter)
        .read(a, {sym("i")})
        .done();
    pb.nest("phase2")
        .loop("i", 0, 64 * 8192)
        .stmt(cycles_per_iter)
        .read(b, {sym("i")})
        .done();
    program = pb.build();
    striping = {layout::Striping{0, 1, kib(64)},
                layout::Striping{1, 1, kib(64)}};
  }
};

SchedulerOptions drpm_options() {
  SchedulerOptions o;
  o.mode = PowerMode::kDrpm;
  o.access.cache_bytes = 0;
  return o;
}

SchedulerOptions tpm_options() {
  SchedulerOptions o = drpm_options();
  o.mode = PowerMode::kTpm;
  return o;
}

TEST(Schedule, PlansCoverEveryIdlePeriod) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), drpm_options());
  // Disk 0: trailing idle (phase2).  Disk 1: leading idle (phase1).  Plus
  // short gaps between consecutive block bursts within each phase.
  EXPECT_GE(result.plans.size(), 2u);
  for (const GapPlan& plan : result.plans) {
    EXPECT_LT(plan.begin_iter, plan.end_iter);
    EXPECT_GT(plan.estimated_ms, 0.0);
  }
}

TEST(Schedule, TpmActsOnlyAboveBreakEven) {
  // Each phase lasts 64*8192*0.1ms ≈ 52 s >> break-even.
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), tpm_options());
  // The long cross-phase gaps are acted upon...
  std::int64_t acted = 0;
  for (const GapPlan& plan : result.plans) {
    if (plan.acted) {
      ++acted;
      EXPECT_GT(plan.estimated_ms, params().break_even_time());
    } else {
      // ...and the sub-second intra-phase gaps are not.
      EXPECT_LT(plan.estimated_ms, params().break_even_time() * 1.2);
    }
  }
  EXPECT_GE(acted, 2);
}

TEST(Schedule, TpmInsertsSpinDownAndPreactivation) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), tpm_options());
  int downs = 0, ups = 0;
  for (const ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinDown) ++downs;
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinUp) ++ups;
  }
  EXPECT_GE(downs, 2);
  // Disk 1's leading gap gets a pre-activation; disk 0's trailing gap has
  // no next use, so no spin-up follows it.
  EXPECT_GE(ups, 1);
  EXPECT_LT(ups, downs + 1);
}

TEST(Schedule, PreactivationLeadRespectsSpinUpTime) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const SchedulerOptions o = tpm_options();
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), o);
  const trace::Timeline nominal(tp.program);
  const trace::IterationSpace space(tp.program);
  for (std::size_t i = 0; i < result.program.directives.size(); ++i) {
    const ir::PlacedDirective& pd = result.program.directives[i];
    if (pd.directive.kind != ir::PowerDirective::Kind::kSpinUp) continue;
    // Find the plan whose gap contains this directive.
    const std::int64_t g = space.global_of(pd.point);
    for (const GapPlan& plan : result.plans) {
      if (plan.disk != pd.directive.disk || g < plan.begin_iter ||
          g >= plan.end_iter || !plan.acted) {
        continue;
      }
      const TimeMs lead =
          nominal.at_global(plan.end_iter) - nominal.at_global(g);
      const TimeMs required =
          params().tpm.spin_up_time * (1.0 + o.safety_margin);
      const TimeMs one_iter = nominal.at_global(g + 1) - nominal.at_global(g);
      // The wake-up starts early enough (to one iteration of quantization),
      // or the whole gap was too short and the call sits at the gap start.
      EXPECT_TRUE(lead + one_iter + 1e-6 >= required ||
                  g == plan.begin_iter)
          << "lead " << lead << " required " << required;
    }
  }
}

TEST(Schedule, DrpmLevelsMatchOracleOnExactEstimates) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), drpm_options());
  // With the nominal timeline as both estimate and actual, the scheduler's
  // choices are exactly the oracle's.
  const trace::Timeline nominal(tp.program);
  const MispredictStats stats = compare_with_oracle(
      result.plans, nominal, params(), PowerMode::kDrpm);
  EXPECT_EQ(stats.mispredicted, 0);
  EXPECT_GT(stats.gaps, 0);
}

TEST(Schedule, MispredictsAppearWithNoisyActual) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), drpm_options());
  const trace::Timeline noisy = trace::Timeline::with_noise(
      tp.program, trace::CycleNoise{0.8, 123});
  const MispredictStats stats =
      compare_with_oracle(result.plans, noisy, params(), PowerMode::kDrpm);
  EXPECT_GT(stats.percent(), 0.0);
  EXPECT_LE(stats.percent(), 100.0);
}

TEST(Schedule, NoPreactivationOptionSuppressesWakeups) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  SchedulerOptions o = tpm_options();
  o.preactivate = false;
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), o);
  for (const ir::PlacedDirective& pd : result.program.directives) {
    EXPECT_NE(pd.directive.kind, ir::PowerDirective::Kind::kSpinUp);
  }
}

TEST(Schedule, CallSiteGranularitySnapsSites) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  SchedulerOptions o = tpm_options();
  o.call_site_granularity = 4'096;
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), o);
  const trace::IterationSpace space(tp.program);
  for (const ir::PlacedDirective& pd : result.program.directives) {
    const std::int64_t g = space.global_of(pd.point);
    EXPECT_EQ(g % 4'096, 0) << "directive not at a strip-mined boundary";
  }
}

TEST(Schedule, DirectivesSortedAndValid) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), drpm_options());
  const trace::IterationSpace space(tp.program);
  std::int64_t prev = -1;
  for (const ir::PlacedDirective& pd : result.program.directives) {
    const std::int64_t g = space.global_of(pd.point);
    EXPECT_GE(g, prev);
    prev = g;
  }
  result.program.validate();
  EXPECT_EQ(result.calls_inserted,
            static_cast<std::int64_t>(result.program.directives.size()));
}

TEST(Schedule, StallAwareEstimateChangesPlacement) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const trace::Timeline compute(tp.program);
  // Huge stalls at the start of phase2 push disk 1's estimated leading-gap
  // length up.
  const trace::IterationSpace space(tp.program);
  const std::int64_t phase2 = space.nest_begin(1);
  const trace::StallAwareTimeline with_stalls(compute, {phase2 - 1}, 60'000.0);

  SchedulerOptions base = drpm_options();
  const ScheduleResult plain =
      schedule_power_calls(tp.program, table, params(), base);
  SchedulerOptions stall = drpm_options();
  stall.estimate = &with_stalls;
  const ScheduleResult aware =
      schedule_power_calls(tp.program, table, params(), stall);

  // The disk-1 leading gap estimate differs by ~60 s.
  double plain_gap = 0, aware_gap = 0;
  for (const GapPlan& plan : plain.plans) {
    if (plan.disk == 1 && plan.begin_iter == 0) plain_gap = plan.estimated_ms;
  }
  for (const GapPlan& plan : aware.plans) {
    if (plan.disk == 1 && plan.begin_iter == 0) aware_gap = plan.estimated_ms;
  }
  EXPECT_NEAR(aware_gap - plain_gap, 60'000.0, 1.0);
}

TEST(Schedule, RejectsBadOptions) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  SchedulerOptions o = drpm_options();
  o.call_site_granularity = 0;
  EXPECT_THROW(schedule_power_calls(tp.program, table, params(), o),
               sdpm::Error);
  SchedulerOptions m = drpm_options();
  m.safety_margin = 1.5;
  EXPECT_THROW(schedule_power_calls(tp.program, table, params(), m),
               sdpm::Error);
}

// Errors reported by the collect-all well-formedness pass.
std::vector<analysis::Diagnostic> schedule_errors(const ScheduleResult& result,
                                                  int total_disks) {
  std::vector<analysis::Diagnostic> errors;
  for (analysis::Diagnostic& d :
       analysis::check_schedule(result, total_disks, params())) {
    if (d.severity == analysis::Severity::kError) {
      errors.push_back(std::move(d));
    }
  }
  return errors;
}

TEST(VerifySchedule, AcceptsSchedulerOutput) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  for (const PowerMode mode : {PowerMode::kTpm, PowerMode::kDrpm}) {
    SchedulerOptions o = drpm_options();
    o.mode = mode;
    const ScheduleResult result =
        schedule_power_calls(tp.program, table, params(), o);
    EXPECT_TRUE(schedule_errors(result, 2).empty());
    EXPECT_EQ(static_cast<std::int64_t>(result.program.directives.size()),
              result.calls_inserted);
  }
}

TEST(VerifySchedule, RejectsDoubleSpinDown) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), tpm_options());
  // Duplicate the first spin-down.
  for (const ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinDown) {
      result.program.directives.push_back(pd);
      break;
    }
  }
  result.program.sort_directives();
  const auto errors = schedule_errors(result, 2);
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].rule, "SDPM-E004");
}

TEST(VerifySchedule, RejectsForeignDisk) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), tpm_options());
  ASSERT_FALSE(result.program.directives.empty());
  result.program.directives[0].directive.disk = 7;
  const auto errors = schedule_errors(result, 2);
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].rule, "SDPM-E002");
}

TEST(VerifySchedule, ReportsEveryViolationNotJustTheFirst) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), tpm_options());
  // Two independent corruptions: both appear in the diagnostics instead of
  // the pass stopping at the first.
  ASSERT_GE(result.program.directives.size(), 2u);
  result.program.directives[0].directive.disk = 7;
  result.program.directives[1].directive.disk = 8;
  const auto errors = schedule_errors(result, 2);
  int e002 = 0;
  for (const analysis::Diagnostic& d : errors) {
    if (d.rule == "SDPM-E002") ++e002;
  }
  EXPECT_GE(e002, 2);
}

TEST(VerifySchedule, RejectsDirectiveOutsideIdlePeriod) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result =
      schedule_power_calls(tp.program, table, params(), drpm_options());
  ASSERT_FALSE(result.plans.empty());
  // Shrink every plan to nothing: all directives become orphans.
  for (GapPlan& plan : result.plans) {
    plan.begin_iter = 0;
    plan.end_iter = 0;
  }
  bool outside = false;
  for (const auto& d : schedule_errors(result, 2)) {
    if (d.rule == "SDPM-E003") outside = true;
  }
  EXPECT_TRUE(outside);
}

}  // namespace
}  // namespace sdpm::core
