// Streaming replay equivalence: StreamingTraceSource must feed the
// simulator a stream bit-identical to the materialized
// TraceGenerator::generate() + TraceCursor path — same energy, same
// completion time, same per-request response times — across closed/open
// loop, prefetch leads, compiler power events, and fault injection.
#include <gtest/gtest.h>

#include <cstddef>

#include "layout/layout_table.h"
#include "policy/base.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/source.h"
#include "workloads/benchmarks.h"

namespace sdpm {
namespace {

constexpr int kDisks = 8;

layout::LayoutTable layout_for(const ir::Program& program) {
  return layout::LayoutTable(program, layout::Striping{0, kDisks, kib(64)},
                             kDisks);
}

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

/// Every comparison is EXPECT_EQ, never NEAR: the two delivery paths must
/// agree bit for bit, not approximately.
void expect_bit_identical(const sim::SimReport& a, const sim::SimReport& b) {
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.execution_ms, b.execution_ms);
  EXPECT_EQ(a.compute_ms, b.compute_ms);
  EXPECT_EQ(a.io_stall_ms, b.io_stall_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    ASSERT_EQ(a.responses[i], b.responses[i]) << "request " << i;
  }
  ASSERT_EQ(a.disks.size(), b.disks.size());
  for (std::size_t d = 0; d < a.disks.size(); ++d) {
    EXPECT_EQ(a.disks[d].breakdown.total_j(), b.disks[d].breakdown.total_j());
    EXPECT_EQ(a.disks[d].services, b.disks[d].services);
    EXPECT_EQ(a.disks[d].spin_downs, b.disks[d].spin_downs);
    EXPECT_EQ(a.disks[d].demand_spin_ups, b.disks[d].demand_spin_ups);
    EXPECT_EQ(a.disks[d].rpm_transitions, b.disks[d].rpm_transitions);
    EXPECT_EQ(a.disks[d].spin_up_retries, b.disks[d].spin_up_retries);
    EXPECT_EQ(a.disks[d].media_errors, b.disks[d].media_errors);
    EXPECT_EQ(a.disks[d].dropped_directives, b.disks[d].dropped_directives);
  }
}

/// Run the same (program, layout, options) through both delivery paths
/// under fresh instances of `Policy` and compare the reports exactly.
template <typename Policy>
void check_equivalence(const ir::Program& program,
                       const trace::GeneratorOptions& gen,
                       const sim::SimOptions& sim_options,
                       Policy make_policy) {
  const layout::LayoutTable table = layout_for(program);

  trace::TraceGenerator generator(program, table, gen);
  const trace::Trace materialized = generator.generate();
  auto policy_a = make_policy();
  const sim::SimReport classic =
      sim::simulate(materialized, params(), policy_a, sim_options);

  trace::StreamingTraceSource source(program, table, gen);
  auto policy_b = make_policy();
  const sim::SimReport streamed =
      sim::simulate(source, params(), policy_b, sim_options);

  expect_bit_identical(classic, streamed);
  EXPECT_EQ(source.requests_streamed(),
            static_cast<std::int64_t>(materialized.requests.size()));
}

sim::SimOptions with_responses(sim::ReplayMode mode) {
  sim::SimOptions o;
  o.mode = mode;
  o.capture_responses = true;
  return o;
}

TEST(Streaming, ClosedLoopBitIdentical) {
  const workloads::Benchmark bench = workloads::make_galgel();
  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);
  check_equivalence(bench.program, gen,
                    with_responses(sim::ReplayMode::kClosedLoop),
                    [] { return policy::TpmPolicy(1'000.0); });
}

TEST(Streaming, OpenLoopBitIdentical) {
  const workloads::Benchmark bench = workloads::make_galgel();
  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);
  check_equivalence(bench.program, gen,
                    with_responses(sim::ReplayMode::kOpenLoop),
                    [] { return policy::BasePolicy(); });
}

TEST(Streaming, PrefetchLeadBitIdentical) {
  const workloads::Benchmark bench = workloads::make_galgel();
  for (const TimeMs lead : {0.5, 5.0, 50.0}) {
    trace::GeneratorOptions gen;
    gen.cache_bytes = kib(512);
    gen.prefetch_lead_ms = lead;
    check_equivalence(bench.program, gen,
                      with_responses(sim::ReplayMode::kClosedLoop),
                      [] { return policy::TpmPolicy(1'000.0); });
  }
}

TEST(Streaming, NoiseBitIdentical) {
  // The noisy actual timeline is keyed by an explicit seed; both paths
  // must realize the identical per-nest factors.
  const workloads::Benchmark bench = workloads::make_galgel();
  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);
  gen.noise = trace::CycleNoise{0.4, 0xfeedULL};
  check_equivalence(bench.program, gen,
                    with_responses(sim::ReplayMode::kClosedLoop),
                    [] { return policy::TpmPolicy(1'000.0); });
}

TEST(Streaming, PowerEventsBitIdentical) {
  // Manually placed compiler directives: the merged request/power-event
  // stream (power events win timestamp ties) must interleave identically.
  workloads::Benchmark bench = workloads::make_galgel();
  ir::Program& p = bench.program;
  const std::int64_t n0 = p.nests.front().iteration_count();
  p.directives.push_back(
      {ir::IterationPoint{0, 0},
       ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, 2, 0}});
  p.directives.push_back(
      {ir::IterationPoint{0, n0 / 2},
       ir::PowerDirective{ir::PowerDirective::Kind::kSpinUp, 2, 0}});
  p.directives.push_back(
      {ir::IterationPoint{0, n0},
       ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, 5, 0}});
  const int last = static_cast<int>(p.nests.size()) - 1;
  p.directives.push_back(
      {ir::IterationPoint{last, 0},
       ir::PowerDirective{ir::PowerDirective::Kind::kSpinUp, 5, 0}});
  p.sort_directives();
  p.validate();

  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);
  check_equivalence(p, gen, with_responses(sim::ReplayMode::kClosedLoop),
                    [] { return policy::ProactivePolicy("CMTPM"); });
}

TEST(Streaming, FaultsBitIdentical) {
  // Fault draws are consumed in stream order, so any divergence between
  // the two paths would desynchronize the RNG and show up immediately.
  const workloads::Benchmark bench = workloads::make_galgel();
  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);

  sim::FaultConfig faults;
  faults.seed = 77;
  faults.spin_up_failure_prob = 0.4;
  faults.media_error_prob = 0.05;
  faults.service_jitter = 0.2;
  faults.dropped_directive_prob = 0.2;

  sim::SimOptions options;
  options.mode = sim::ReplayMode::kClosedLoop;
  options.faults = faults;
  options.capture_responses = true;
  check_equivalence(bench.program, gen, options,
                    [] { return policy::TpmPolicy(1'000.0); });
}

TEST(Streaming, ResponsesAreOptIn) {
  // Without capture_responses the vector stays empty on both paths while
  // the aggregate statistics still agree.
  const workloads::Benchmark bench = workloads::make_galgel();
  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);
  const layout::LayoutTable table = layout_for(bench.program);
  const trace::Trace t =
      trace::TraceGenerator(bench.program, table, gen).generate();
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_TRUE(report.responses.empty());
  EXPECT_GT(report.requests, 0);
  EXPECT_GT(report.response_ms.count(), 0);
}

}  // namespace
}  // namespace sdpm
