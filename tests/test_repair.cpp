// Auto-repair engine: `analyze --fix` must drive every seeded-mutation
// schedule to a fixed point whose report is clean, whose simulated energy
// does not exceed the mutated original's, and whose replay never
// demand-spins-up a disk.  Plus the mechanics: conflict handling when two
// fix-its edit the same directive, idempotence of repairing an already
// repaired schedule, and the JSON round trip of the fix-it payload
// through api::JobResult.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/mutate.h"
#include "analysis/registry.h"
#include "analysis/repair.h"
#include "api/job_result.h"
#include "core/compiler.h"
#include "core/schedule.h"
#include "ir/builder.h"
#include "layout/layout_table.h"
#include "policy/proactive.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/json.h"
#include "workloads/benchmarks.h"

namespace sdpm::analysis {
namespace {

using core::PowerMode;
using core::ScheduleResult;
using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::GeneratorOptions access_options() {
  trace::GeneratorOptions o;
  o.cache_bytes = 0;  // noise-free: energy comparisons must be exact
  return o;
}

AnalyzeOptions analyze_options(
    core::Transformation transform = core::Transformation::kNone) {
  AnalyzeOptions o;
  o.access = access_options();
  o.transform = transform;
  return o;
}

// Same two-nest private-array fixture as test_analysis.cpp: one ~52 s
// cross-phase gap per disk for the scheduler (and the mutations) to act on.
struct TwoPhase {
  ir::Program program;
  std::vector<layout::Striping> striping;

  TwoPhase() {
    ProgramBuilder pb("twophase");
    const ArrayId a = pb.array("A", {64 * 8192});
    const ArrayId b = pb.array("B", {64 * 8192});
    pb.nest("phase1")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(a, {sym("i")})
        .done();
    pb.nest("phase2")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(b, {sym("i")})
        .done();
    program = pb.build();
    striping = {layout::Striping{0, 1, kib(64)},
                layout::Striping{1, 1, kib(64)}};
  }
};

sim::SimReport measure(const ScheduleResult& result,
                       const std::vector<layout::Striping>& striping,
                       int total_disks) {
  const layout::LayoutTable table(result.program, striping, total_disks);
  const trace::Trace trace =
      trace::TraceGenerator(result.program, table, access_options())
          .generate();
  policy::ProactivePolicy policy("repair-test");
  sim::SimOptions options;
  options.mode = sim::ReplayMode::kClosedLoop;
  return sim::simulate(trace, params(), policy, options);
}

/// A mutated (schedule, striping) pair plus the disk count to lay it out
/// with — the input of one repair scenario.
struct Mutated {
  ScheduleResult result;
  std::vector<layout::Striping> striping;
  int total_disks = 2;
  core::Transformation transform = core::Transformation::kNone;
};

Mutated mutated_two_phase(Mutation mutation, PowerMode mode) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  core::SchedulerOptions so;
  so.mode = mode;
  so.access = access_options();
  Mutated m;
  m.result = core::schedule_power_calls(tp.program, table, params(), so);
  m.striping = tp.striping;
  m.total_disks = 2;
  apply_mutation(mutation, m.result, m.striping, params());
  return m;
}

Mutated mutated_fission() {
  const workloads::Benchmark bench = workloads::make_benchmark("swim");
  core::CompilerOptions co;
  co.total_disks = 8;
  co.base_striping = layout::Striping{0, 8, kib(64)};
  co.disk_params = params();
  co.access = access_options();
  const core::CompileOutput out = core::compile(
      bench.program, core::Transformation::kLFDL, PowerMode::kTpm, co);
  Mutated m;
  m.result = ScheduleResult{out.program, out.plans, out.calls_inserted};
  m.striping = out.striping;
  m.total_disks = 8;
  m.transform = core::Transformation::kLFDL;
  apply_mutation(Mutation::kOverlappingFission, m.result, m.striping,
                 params());
  return m;
}

/// The acceptance contract for one scenario: repair converges, the final
/// report is clean (notes allowed), and the repaired schedule simulates
/// with energy <= the mutated original and zero demand spin-ups.
void expect_repaired(Mutated m, const std::string& what) {
  const int disks = m.total_disks;
  const sim::SimReport before = measure(m.result, m.striping, disks);
  const RepairOutcome outcome =
      repair_schedule(std::move(m.result), std::move(m.striping), disks,
                      params(), analyze_options(m.transform));

  EXPECT_TRUE(outcome.converged) << what;
  EXPECT_GT(outcome.fixits_applied, 0) << what;
  EXPECT_GT(outcome.rounds, 0) << what;
  EXPECT_EQ(outcome.final_report.fixit_count(), 0) << what;
  EXPECT_EQ(outcome.final_report.errors(), 0) << what;
  EXPECT_EQ(outcome.final_report.warnings(), 0) << what;

  const sim::SimReport after = measure(outcome.result, outcome.striping, disks);
  EXPECT_LE(after.total_energy, before.total_energy + 1e-6) << what;
  for (const sim::DiskReport& d : after.disks) {
    EXPECT_EQ(d.demand_spin_ups, 0) << what << " disk";
  }
}

TEST(Repair, FixesLatePreactivation) {
  expect_repaired(mutated_two_phase(Mutation::kLatePreactivation,
                                    PowerMode::kTpm),
                  "late-preact/CMTPM");
}

TEST(Repair, FixesShortGapSpinDown) {
  expect_repaired(mutated_two_phase(Mutation::kShortGapSpinDown,
                                    PowerMode::kTpm),
                  "short-gap/CMTPM");
}

TEST(Repair, FixesOverlappingFission) {
  expect_repaired(mutated_fission(), "overlap-fission/LFDL");
}

TEST(Repair, RepairIsIdempotent) {
  Mutated m = mutated_two_phase(Mutation::kLatePreactivation, PowerMode::kTpm);
  RepairOutcome first =
      repair_schedule(std::move(m.result), std::move(m.striping),
                      m.total_disks, params(), analyze_options());
  ASSERT_TRUE(first.converged);

  // Repairing the repaired schedule is a no-op: zero rounds, zero fix-its.
  const RepairOutcome second =
      repair_schedule(std::move(first.result), std::move(first.striping),
                      m.total_disks, params(), analyze_options());
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(second.rounds, 0);
  EXPECT_EQ(second.fixits_applied, 0);
  EXPECT_EQ(second.fixits_skipped, 0);
}

TEST(Repair, ConflictingFixitsOnOneDirectiveApplyFirstOnly) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  core::SchedulerOptions so;
  so.mode = PowerMode::kTpm;
  so.access = access_options();
  ScheduleResult result =
      core::schedule_power_calls(tp.program, table, params(), so);
  ASSERT_FALSE(result.program.directives.empty());
  const std::size_t n_before = result.program.directives.size();

  // Handcraft two fix-its editing the same directive: a retarget and a
  // removal.  The engine must apply the first (diagnostic order) and skip
  // the second — otherwise the removal would invalidate the retarget's
  // index mid-batch.
  core::ScheduleEdit retarget;
  retarget.kind = core::ScheduleEdit::Kind::kRetargetLevel;
  retarget.directive_index = 0;
  retarget.level = 0;
  core::ScheduleEdit remove;
  remove.kind = core::ScheduleEdit::Kind::kRemoveDirective;
  remove.directive_index = 0;

  AnalysisReport report;
  Diagnostic d = make_diagnostic("SDPM-W020", "test", DiagLocation{}, "first");
  d.fixits.push_back(FixIt{"SDPM-F004", "retarget", {retarget}});
  report.diagnostics.push_back(d);
  Diagnostic e = make_diagnostic("SDPM-W020", "test", DiagLocation{}, "second");
  e.fixits.push_back(FixIt{"SDPM-F003", "remove", {remove}});
  report.diagnostics.push_back(e);

  std::vector<layout::Striping> striping = tp.striping;
  const ApplyOutcome outcome = apply_fixits(report, result, striping);
  EXPECT_EQ(outcome.applied, 1);
  EXPECT_EQ(outcome.skipped, 1);
  ASSERT_EQ(outcome.applied_ids.size(), 1u);
  EXPECT_EQ(outcome.applied_ids[0], "SDPM-F004");
  // The retarget won; the conflicting removal was not applied.
  EXPECT_EQ(result.program.directives.size(), n_before);
}

TEST(Repair, FixitJsonRoundTripsThroughJobResult) {
  // A mutated schedule's report carries fix-its with edits; that payload
  // must survive JobResult::to_json / from_json structurally.
  Mutated m = mutated_two_phase(Mutation::kLatePreactivation, PowerMode::kTpm);
  const layout::LayoutTable table(m.result.program, m.striping,
                                  m.total_disks);
  AnalysisReport report =
      analyze(m.result, table, params(), analyze_options());
  ASSERT_GT(report.fixit_count(), 0);

  api::JobResult result;
  result.label = "roundtrip";
  result.benchmark = "twophase";
  result.analysis_json = render_json(report);

  const Json wire = result.to_json();
  const api::JobResult back = api::JobResult::from_json(wire);
  ASSERT_FALSE(back.analysis_json.empty());
  // Canonical dumps are equal: every diagnostic, fix-it, and edit made it
  // across the wire unchanged.
  EXPECT_EQ(Json::parse(back.analysis_json).dump(),
            Json::parse(result.analysis_json).dump());
  // And the embedded report still announces the fix-its.
  const Json* analysis = wire.find("analysis");
  ASSERT_NE(analysis, nullptr);
  const Json* summary = analysis->find("summary");
  ASSERT_NE(summary, nullptr);
  const Json* fixits = summary->find("fixits");
  ASSERT_NE(fixits, nullptr);
  EXPECT_EQ(fixits->as_int(), report.fixit_count());
}

}  // namespace
}  // namespace sdpm::analysis
