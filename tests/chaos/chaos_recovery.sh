#!/bin/sh
# Chaos harness for the crash-safe service: SIGKILL the daemon with a batch
# in flight, tear the journal tail, flip a bit in a stored result, restart
# on the same --state-dir, and assert that every admitted job completes
# exactly once and that the persistent store serves hits after the restart.
#
#   chaos_recovery.sh /path/to/sdpm_serviced /path/to/sdpm_cli
set -eu

SERVICED=${1:?usage: chaos_recovery.sh SERVICED_BIN CLI_BIN}
CLI=${2:?usage: chaos_recovery.sh SERVICED_BIN CLI_BIN}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/sdpm_chaos.XXXXXX")
SOCKET="$WORK/daemon.sock"
STATE="$WORK/state"
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ]; then kill -9 "$DAEMON_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "chaos_recovery: FAIL: $*" >&2
  exit 1
}

wait_listening() {
  attempts=0
  while ! grep -q "listening on" "$1" 2>/dev/null; do
    attempts=$((attempts + 1))
    if [ "$attempts" -gt 100 ]; then fail "daemon never started ($1)"; fi
    sleep 0.1
  done
}

json_int() {
  grep -o "\"$2\":[0-9]*" "$1" | head -n 1 | cut -d: -f2
}

# 24 distinct (benchmark, scheme) jobs so each lands under its own store
# key: identical specs would collapse onto one cached result and hide
# recovery bugs behind the fast path.
BENCHMARKS="swim mgrid applu galgel"
SCHEMES="Base TPM ITPM DRPM IDRPM CMTPM"
JOBS=24

# ---- life 1: admit the batch, then SIGKILL mid-flight ------------------
# A single slow worker (--jobs 1 --batch 1) keeps nearly all of the batch
# in flight when the kill lands.
"$SERVICED" --socket "$SOCKET" --state-dir "$STATE" \
    --jobs 1 --batch 1 > "$WORK/life1.log" 2>&1 &
DAEMON_PID=$!
wait_listening "$WORK/life1.log"

i=0
for benchmark in $BENCHMARKS; do
  for scheme in $SCHEMES; do
    "$CLI" client --socket "$SOCKET" --op submit \
        --benchmark "$benchmark" --scheme "$scheme" \
        > "$WORK/submit_$i.json" || fail "submit $benchmark/$scheme failed"
    i=$((i + 1))
  done
done
[ "$i" -eq "$JOBS" ] || fail "expected $JOBS submits, made $i"

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
rm -f "$SOCKET"

[ -f "$STATE/journal.bin" ] || fail "no journal was written"

# ---- fault injection ---------------------------------------------------
# A crash mid-append leaves a partial record: 4 length bytes promising 64,
# then garbage instead of a checksummed body.
printf '\000\000\000\100TORN-TAIL' >> "$STATE/journal.bin"
# Bit rot in one stored result, if any landed before the kill.  The entry
# must be quarantined and recomputed, never returned corrupted.
OBJECT=$(ls "$STATE/store/objects"/*.bin 2>/dev/null | head -n 1 || true)
if [ -n "$OBJECT" ]; then
  printf '\377' | dd of="$OBJECT" bs=1 seek=24 conv=notrunc 2>/dev/null
fi

# ---- life 2: recover on the same state dir -----------------------------
"$SERVICED" --socket "$SOCKET" --state-dir "$STATE" \
    > "$WORK/life2.log" 2>&1 &
DAEMON_PID=$!
wait_listening "$WORK/life2.log"
"$CLI" client --socket "$SOCKET" --op ping --retry-connect > /dev/null \
    || fail "recovered daemon does not answer pings"

# Every admitted job reaches done exactly once, under its original id.
i=0
while [ "$i" -lt "$JOBS" ]; do
  ID=$(json_int "$WORK/submit_$i.json" id)
  [ -n "$ID" ] || fail "submit $i produced no id: $(cat "$WORK/submit_$i.json")"
  "$CLI" client --socket "$SOCKET" --op result --id "$ID" --wait \
      > "$WORK/result_$i.json" || fail "result for job $ID failed"
  grep -q '"state":"done"' "$WORK/result_$i.json" \
      || fail "job $ID did not complete: $(cat "$WORK/result_$i.json")"
  i=$((i + 1))
done

# An identical resubmission is served from the persistent store.
"$CLI" client --socket "$SOCKET" --op run \
    --benchmark swim --scheme Base > "$WORK/rerun.json" \
    || fail "post-recovery rerun failed"
grep -q '"state":"done"' "$WORK/rerun.json" || fail "rerun did not complete"

"$CLI" client --socket "$SOCKET" --op stats > "$WORK/stats.json"
COMPLETED=$(json_int "$WORK/stats.json" completed)
FAILED=$(json_int "$WORK/stats.json" failed)
RECOVERED=$(json_int "$WORK/stats.json" recovered)
HITS=$(json_int "$WORK/stats.json" hits)

# Life 2 owns every admitted job plus the rerun: completions must match
# exactly (a duplicate would overshoot, a lost job would hang the waits).
[ "$COMPLETED" = $((JOBS + 1)) ] \
    || fail "expected $((JOBS + 1)) completions, saw '$COMPLETED'"
[ "$FAILED" = 0 ] || fail "'$FAILED' jobs failed after recovery"
[ "${RECOVERED:-0}" -ge 1 ] || fail "no jobs were recovered from the journal"
[ "${HITS:-0}" -ge 1 ] || fail "store served no hits after restart"

"$CLI" client --socket "$SOCKET" --op shutdown > /dev/null
wait "$DAEMON_PID" || fail "daemon exited non-zero after drain"
DAEMON_PID=""

echo "chaos_recovery: PASS" \
     "(completed=$COMPLETED recovered=$RECOVERED store_hits=$HITS)"
