// TraceCache under concurrency: many threads sharing one cache, mixed
// hit/miss/eviction traffic, and enable/clear toggles racing lookups.
// Primarily a TSan target (the CI tsan job runs it), but the assertions
// also pin the sharing contract: equal keys -> the exact same trace.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "experiments/runner.h"
#include "experiments/trace_cache.h"
#include "layout/layout_table.h"
#include "workloads/benchmarks.h"

namespace sdpm::experiments {
namespace {

struct Triple {
  ir::Program program;
  layout::LayoutTable layout;
  trace::GeneratorOptions options;
};

/// Distinct noise seeds produce distinct fingerprints over one program.
std::vector<Triple> make_triples(int count) {
  const workloads::Benchmark bench = workloads::make_benchmark("galgel");
  const ExperimentConfig config;
  std::vector<Triple> triples;
  for (int i = 0; i < count; ++i) {
    trace::GeneratorOptions options = config.gen;
    options.noise = trace::CycleNoise{0.20, 0x5eed + static_cast<std::uint64_t>(i)};
    triples.push_back(Triple{
        bench.program,
        layout::LayoutTable(bench.program, config.striping,
                            config.total_disks),
        options});
  }
  return triples;
}

TEST(TraceCacheConcurrency, EqualKeysShareOneTraceAcrossThreads) {
  TraceCache cache(8);
  const std::vector<Triple> triples = make_triples(3);

  constexpr int kThreads = 8;
  constexpr int kIters = 12;
  std::vector<std::shared_ptr<const trace::Trace>> seen(
      static_cast<std::size_t>(kThreads) * kIters);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const Triple& triple =
            triples[static_cast<std::size_t>((t + i) % 3)];
        auto trace = cache.get_or_generate(triple.program, triple.layout,
                                           triple.options);
        ASSERT_NE(trace, nullptr);
        seen[static_cast<std::size_t>(t) * kIters +
             static_cast<std::size_t>(i)] = trace;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Every result for the same key carries bit-identical content.  Pointer
  // identity is NOT guaranteed under concurrency (two threads racing the
  // same cold key may both generate), but the contract is that a hit
  // returns exactly what a fresh generation would produce.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIters; ++i) {
      const auto& trace =
          seen[static_cast<std::size_t>(t) * kIters +
               static_cast<std::size_t>(i)];
      // Thread 0's iteration (t + i) % 3 used the same triple.
      const auto& reference = seen[static_cast<std::size_t>((t + i) % 3)];
      EXPECT_EQ(trace->request_count(), reference->request_count());
      EXPECT_EQ(trace->bytes_transferred, reference->bytes_transferred);
      EXPECT_DOUBLE_EQ(trace->compute_total_ms,
                       reference->compute_total_ms);
    }
  }
  // Steady state: one entry per key survives.
  EXPECT_EQ(cache.size(), 3u);

  // Sequential lookups after the race ARE hits on the same object.
  const Triple& triple = triples[0];
  const auto a =
      cache.get_or_generate(triple.program, triple.layout, triple.options);
  const auto b =
      cache.get_or_generate(triple.program, triple.layout, triple.options);
  EXPECT_EQ(a.get(), b.get());
}

TEST(TraceCacheConcurrency, EvictionRacesKeepResultsValid) {
  // Capacity below the working set: every thread keeps evicting the
  // others' entries while holding shared_ptrs to its own traces.
  TraceCache cache(2);
  const std::vector<Triple> triples = make_triples(5);

  constexpr int kThreads = 6;
  std::atomic<int> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        const Triple& triple =
            triples[static_cast<std::size_t>((t * 7 + i) % 5)];
        auto trace = cache.get_or_generate(triple.program, triple.layout,
                                           triple.options);
        ASSERT_NE(trace, nullptr);
        // The evicted-but-held trace stays fully readable.
        ASSERT_FALSE(trace->requests.empty());
        lookups.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(lookups.load(), kThreads * 10);
  EXPECT_LE(cache.size(), 2u);
}

TEST(TraceCacheConcurrency, ToggleAndClearRaceLookups) {
  TraceCache cache(4);
  const std::vector<Triple> triples = make_triples(2);

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    // enable/disable/clear from one thread while others look up; every
    // combination must stay memory-safe (the TSan point of this test).
    for (int i = 0; i < 40; ++i) {
      cache.set_enabled(i % 4 != 0);
      if (i % 7 == 0) cache.clear();
    }
    cache.set_enabled(true);
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load() || i < 4) {
        const Triple& triple = triples[static_cast<std::size_t>(i % 2)];
        auto trace = cache.get_or_generate(triple.program, triple.layout,
                                           triple.options);
        ASSERT_NE(trace, nullptr);
        ++i;
        if (i > 200) break;  // bound the loop however the race unfolds
      }
    });
  }
  toggler.join();
  for (std::thread& th : readers) th.join();
  EXPECT_TRUE(cache.enabled());
}

}  // namespace
}  // namespace sdpm::experiments
