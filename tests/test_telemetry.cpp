// Telemetry substrate: concurrent latency histograms, rolling windows,
// Prometheus rendering, structured logging, trace-id codecs and the
// ServiceTelemetry aggregate.  The MetricsRegistry and LatencyHistogram
// hammer tests here run under TSan in CI — they are the thread-safety
// regression net for the recording hot paths.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/latency.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/rolling.h"
#include "service/protocol.h"
#include "service/telemetry.h"
#include "util/json.h"

namespace sdpm {
namespace {

TEST(LatencyHistogram, EmptyQuantilesAreZero) {
  obs::LatencyHistogram h;
  const auto q = h.quantiles();
  EXPECT_EQ(q.count, 0);
  EXPECT_EQ(q.p50, 0.0);
  EXPECT_EQ(q.p999, 0.0);
  EXPECT_EQ(q.max, 0.0);
}

TEST(LatencyHistogram, NegativeSamplesClampToZero) {
  obs::LatencyHistogram h;
  h.record(-0.001);  // steady-clock jitter can produce -0 stage deltas
  const auto q = h.quantiles();
  EXPECT_EQ(q.count, 1);
  EXPECT_GE(q.max, 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  obs::LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(0.5 + 0.001 * (t + 1) * (i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto q = h.quantiles();
  EXPECT_EQ(q.count, static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_GT(q.p50, 0.0);
  EXPECT_LE(q.p50, q.p99);
  EXPECT_LE(q.p99, q.p999);
  EXPECT_LE(q.p999, q.max * 1.05);
}

TEST(LatencyHistogram, ResetZeroesButKeepsBucketing) {
  obs::LatencyHistogram h(1e-3, 1.25);
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.quantiles().count, 0);
  h.record(2.0);
  EXPECT_EQ(h.quantiles().count, 1);
}

TEST(RollingWindow, DeterministicWithCallerClock) {
  obs::RollingWindow w(60);
  // 5 events/s for the last 10 seconds, ending at t=100s.
  for (int s = 90; s < 100; ++s) {
    for (int e = 0; e < 5; ++e) w.record(s * 1000.0 + e * 100.0);
  }
  // Windows cover whole seconds [now_sec - w + 1, now_sec]; pinning now
  // inside second 99 makes the 10s view span exactly seconds 90..99.
  const auto now = 99'999.0;
  const auto w10 = w.stats(now, 10.0);
  EXPECT_EQ(w10.count, 50);
  EXPECT_NEAR(w10.rate_per_sec, 5.0, 1e-9);
  const auto w60 = w.stats(now, 60.0);
  EXPECT_EQ(w60.count, 50);
  EXPECT_NEAR(w60.rate_per_sec, 50.0 / 60.0, 1e-9);
  // The trailing 1s window covers second 99 only.
  EXPECT_EQ(w.stats(now, 1.0).count, 5);
}

TEST(RollingWindow, OldSlotsExpire) {
  obs::RollingWindow w(60);
  w.record(1'000.0);
  EXPECT_EQ(w.stats(2'000.0, 60.0).count, 1);
  // 10 minutes later the ring has long since recycled that slot.
  EXPECT_EQ(w.stats(600'000.0, 60.0).count, 0);
}

TEST(MetricsRegistry, ConcurrentMixedRecordingIsSafe) {
  // TSan target: counters, gauges, histograms and snapshots from many
  // threads at once — the daemon's accept/worker/watchdog shape.
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOps = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      auto& cached = registry.counter("hammer.cached");
      for (int i = 0; i < kOps; ++i) {
        cached.fetch_add(1, std::memory_order_relaxed);
        registry.add("hammer.uncached");
        registry.set_gauge("hammer.gauge", t + i * 1e-6);
        registry.observe("hammer.hist", 0.1 * (i % 50));
        if (i % 512 == 0) {
          const auto snap = registry.snapshot();
          EXPECT_GE(snap.counters.at("hammer.cached"), 1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("hammer.cached"),
            static_cast<std::int64_t>(kThreads) * kOps);
  EXPECT_EQ(snap.counters.at("hammer.uncached"),
            static_cast<std::int64_t>(kThreads) * kOps);
  EXPECT_EQ(snap.histograms.at("hammer.hist").count,
            static_cast<std::int64_t>(kThreads) * kOps);
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("service.jobs_completed"),
            "sdpm_service_jobs_completed");
  EXPECT_EQ(obs::prometheus_name("trace-cache.hits"),
            "sdpm_trace_cache_hits");
}

TEST(Prometheus, RendersCountersGaugesAndSummaries) {
  obs::MetricsRegistry registry;
  registry.add("service.jobs_completed", 42);
  registry.set_gauge("service.queue_depth", 3);
  obs::PromSummary stage;
  stage.name = "service.stage_latency_ms";
  stage.labels = {{"stage", "eval"}};
  stage.quantiles.count = 10;
  stage.quantiles.sum = 25.0;
  stage.quantiles.p50 = 2.0;
  stage.quantiles.p99 = 4.0;
  const std::string text =
      obs::render_prometheus(registry.snapshot(), {stage});
  EXPECT_NE(text.find("# TYPE sdpm_service_jobs_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("sdpm_service_jobs_completed 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sdpm_service_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "sdpm_service_stage_latency_ms{quantile=\"0.5\",stage=\"eval\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("sdpm_service_stage_latency_ms_count{stage=\"eval\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("sdpm_service_stage_latency_ms_sum{stage=\"eval\"} 25"),
            std::string::npos);
}

TEST(StructuredLog, GoldenLineWithPinnedClock) {
  std::ostringstream os;
  obs::StructuredLog log(os);
  log.set_clock_for_testing(1'700'000'000'123LL);
  log.info("service.listening",
           Json::object().set("socket", "/tmp/s.sock").set("capacity", 64));
  EXPECT_EQ(os.str(),
            "{\"capacity\":64,\"event\":\"service.listening\","
            "\"level\":\"info\",\"socket\":\"/tmp/s.sock\","
            "\"ts_ms\":1700000000123}\n");
}

TEST(StructuredLog, MinLevelFilters) {
  std::ostringstream os;
  obs::StructuredLog log(os, obs::LogLevel::kWarn);
  EXPECT_FALSE(log.enabled(obs::LogLevel::kInfo));
  log.info("dropped");
  log.warn("kept");
  EXPECT_EQ(os.str().find("dropped"), std::string::npos);
  EXPECT_NE(os.str().find("kept"), std::string::npos);
}

TEST(StructuredLog, ConcurrentLinesNeverInterleave) {
  std::ostringstream os;
  obs::StructuredLog log(os);
  log.set_clock_for_testing(1);
  constexpr int kThreads = 4;
  constexpr int kLines = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kLines; ++i) {
        log.info("tick", Json::object().set("thread", t).set("i", i));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const Json parsed = Json::parse(line);  // throws on torn output
    EXPECT_EQ(parsed.at("event").as_string(), "tick");
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kLines);
}

TEST(TraceHex, RoundTripsAndRejectsGarbage) {
  EXPECT_EQ(service::trace_hex(0xbe5c0de5e55101ull), "00be5c0de5e55101");
  EXPECT_EQ(service::parse_trace_hex("00be5c0de5e55101"),
            0xbe5c0de5e55101ull);
  EXPECT_EQ(service::parse_trace_hex("ff"), 0xffull);
  EXPECT_EQ(service::parse_trace_hex(""), 0ull);
  EXPECT_EQ(service::parse_trace_hex("xyz"), 0ull);
  EXPECT_EQ(service::parse_trace_hex("0123456789abcdef0"), 0ull);  // 17 digits
}

TEST(ServiceTelemetry, RecordIfNullIsANoOp) {
  service::ServiceTelemetry::record_if(nullptr, service::Stage::kEval, 1.0);
  service::ServiceTelemetry t;
  service::ServiceTelemetry::record_if(&t, service::Stage::kEval, 1.0);
  EXPECT_EQ(t.stage_quantiles(service::Stage::kEval).count, 1);
}

TEST(ServiceTelemetry, SnapshotShapeAndReconciliation) {
  service::ServiceTelemetry t;
  t.record(service::Stage::kAdmit, 0.05);
  t.record_admit(/*session=*/7, /*now_ms=*/1'000.0);
  t.record_admit(7, 1'100.0);
  t.record_admit(9, 1'200.0);
  t.record_outcome(7, 12.0, /*ok=*/true, 1'500.0);
  t.record_outcome(7, 14.0, /*ok=*/false, 1'600.0);
  t.record_outcome(9, 9.0, /*ok=*/true, 1'700.0);

  const Json doc = t.to_json(/*now_ms=*/2'000.0);
  const Json& stages = doc.at("stages");
  EXPECT_EQ(stages.at("admit").at("count").as_int(), 1);
  EXPECT_EQ(stages.at("e2e").at("count").as_int(), 3);
  EXPECT_NEAR(stages.at("e2e").at("p50_ms").as_double(), 12.0, 1.5);

  const Json& windows = doc.at("windows");
  EXPECT_EQ(windows.at("admissions").at("10s").at("count").as_int(), 3);
  EXPECT_EQ(windows.at("completions").at("10s").at("count").as_int(), 3);

  const Json& clients = doc.at("clients");
  EXPECT_EQ(clients.at("7").at("submitted").as_int(), 2);
  EXPECT_EQ(clients.at("7").at("completed").as_int(), 1);
  EXPECT_EQ(clients.at("7").at("failed").as_int(), 1);
  EXPECT_EQ(clients.at("9").at("submitted").as_int(), 1);

  // The reconciliation invariant the service test asserts end-to-end:
  // e2e samples == terminal outcomes across all clients.
  std::int64_t terminal = 0;
  for (const auto& [session, agg] : clients.as_object()) {
    terminal += agg.at("completed").as_int() + agg.at("failed").as_int();
  }
  EXPECT_EQ(stages.at("e2e").at("count").as_int(), terminal);
}

TEST(ServiceTelemetry, ConcurrentStampsReconcile) {
  service::ServiceTelemetry t;
  constexpr int kThreads = 6;
  constexpr int kJobs = 2'000;
  std::vector<std::thread> threads;
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&t, c] {
      for (int j = 0; j < kJobs; ++j) {
        const double now = 1'000.0 + j;
        t.record_admit(static_cast<std::uint64_t>(c), now);
        t.record(service::Stage::kQueueWait, 0.2);
        t.record(service::Stage::kEval, 1.5);
        t.record_outcome(static_cast<std::uint64_t>(c), 2.0, j % 7 != 0,
                         now + 2.0);
      }
    });
  }
  for (auto& t2 : threads) t2.join();
  constexpr std::int64_t kTotal =
      static_cast<std::int64_t>(kThreads) * kJobs;
  EXPECT_EQ(t.stage_quantiles(service::Stage::kEndToEnd).count, kTotal);
  EXPECT_EQ(t.stage_quantiles(service::Stage::kEval).count, kTotal);
  const Json doc = t.to_json(5'000.0);
  std::int64_t submitted = 0;
  std::int64_t terminal = 0;
  for (const auto& [session, agg] : doc.at("clients").as_object()) {
    submitted += agg.at("submitted").as_int();
    terminal += agg.at("completed").as_int() + agg.at("failed").as_int();
  }
  EXPECT_EQ(submitted, kTotal);
  EXPECT_EQ(terminal, kTotal);
}

TEST(ServiceTelemetry, PrometheusTextCoversEveryStage) {
  service::ServiceTelemetry t;
  t.record(service::Stage::kEval, 3.0);
  const std::string text = t.prometheus_text();
  for (int s = 0; s < static_cast<int>(service::Stage::kCount); ++s) {
    const std::string label = std::string("stage=\"") +
                              service::to_string(static_cast<service::Stage>(s)) +
                              "\"";
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
  EXPECT_NE(text.find("sdpm_service_stage_latency_ms"), std::string::npos);
}

}  // namespace
}  // namespace sdpm
