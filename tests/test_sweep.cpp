// SweepEngine: parallel sweeps must be bit-identical to serial Runner
// evaluation, deterministic across repeats, and must surface cell failures
// as exceptions.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "experiments/runner.h"
#include "experiments/sweep.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "util/error.h"
#include "util/perf_counters.h"
#include "util/units.h"
#include "workloads/benchmarks.h"

namespace sdpm::experiments {
namespace {

ExperimentConfig fast_config(Bytes stripe = kib(64)) {
  ExperimentConfig c;
  c.total_disks = 4;
  c.striping = layout::Striping{0, 4, stripe};
  c.gen.cache_bytes = kib(512);
  return c;
}

std::vector<SweepCell> two_cells() {
  std::vector<SweepCell> cells;
  for (const Bytes stripe : {kib(32), kib(64)}) {
    SweepCell cell;
    cell.label = "galgel/s" + std::to_string(stripe / 1024) + "K";
    cell.benchmark = workloads::make_galgel();
    cell.config = fast_config(stripe);
    cells.push_back(cell);
  }
  return cells;
}

void expect_same_result(const SchemeResult& a, const SchemeResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.execution_ms, b.execution_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.normalized_energy, b.normalized_energy);
  EXPECT_EQ(a.normalized_time, b.normalized_time);
  EXPECT_EQ(a.power_calls, b.power_calls);
}

TEST(SweepEngine, ParallelMatchesSerialRunnerExactly) {
  const std::vector<SweepCell> cells = two_cells();
  SweepEngine engine(4);
  const std::vector<SweepCellResult> sweep = engine.run(cells);

  ASSERT_EQ(sweep.size(), cells.size());
  const std::vector<Scheme> schemes = all_schemes();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    EXPECT_EQ(sweep[c].label, cells[c].label);
    ASSERT_EQ(sweep[c].results.size(), schemes.size());
    Runner serial(cells[c].benchmark, cells[c].config);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      expect_same_result(sweep[c].results[s], serial.run(schemes[s]));
    }
    EXPECT_GE(sweep[c].wall_ms, 0.0);
  }
}

TEST(SweepEngine, RepeatedRunsAreIdentical) {
  const std::vector<SweepCell> cells = two_cells();
  const auto first = SweepEngine(4).run(cells);
  const auto second = SweepEngine(1).run(cells);  // serial engine, same cells
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t c = 0; c < first.size(); ++c) {
    ASSERT_EQ(first[c].results.size(), second[c].results.size());
    for (std::size_t s = 0; s < first[c].results.size(); ++s) {
      expect_same_result(first[c].results[s], second[c].results[s]);
    }
  }
}

TEST(SweepEngine, ExplicitSchemeSubsetIsHonored) {
  SweepCell cell;
  cell.label = "subset";
  cell.benchmark = workloads::make_galgel();
  cell.config = fast_config();
  cell.schemes = {Scheme::kBase, Scheme::kIdrpm};
  const auto sweep = SweepEngine(2).run({cell});
  ASSERT_EQ(sweep.size(), 1u);
  ASSERT_EQ(sweep[0].results.size(), 2u);
  EXPECT_EQ(sweep[0].results[0].scheme, Scheme::kBase);
  EXPECT_EQ(sweep[0].results[1].scheme, Scheme::kIdrpm);
  EXPECT_DOUBLE_EQ(sweep[0].results[0].normalized_energy, 1.0);
}

TEST(SweepEngine, RunAllMatchesSerialSchemes) {
  // Runner::run_all fans over the pool internally; its results must be
  // indistinguishable from a serial scheme loop on a fresh Runner.
  const workloads::Benchmark bench = workloads::make_galgel();
  const ExperimentConfig config = fast_config();
  Runner pooled(bench, config);
  const std::vector<SchemeResult> all = pooled.run_all();

  Runner serial(bench, config);
  const std::vector<Scheme> schemes = all_schemes();
  ASSERT_EQ(all.size(), schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    expect_same_result(all[s], serial.run(schemes[s]));
  }
}

TEST(SweepEngine, CellsForBenchmarksCoversAllSchemes) {
  const auto cells =
      cells_for_benchmarks(workloads::all_benchmarks(), fast_config());
  ASSERT_EQ(cells.size(), workloads::all_benchmarks().size());
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.label, cell.benchmark.name);
    EXPECT_TRUE(cell.schemes.empty());  // empty means all seven
  }
}

TEST(SweepEngine, CellFailurePropagatesFromRun) {
  // A block size that does not divide the stripe size makes trace
  // generation throw inside the pool task; run() must rethrow it.
  SweepCell bad;
  bad.label = "bad";
  bad.benchmark = workloads::make_galgel();
  bad.config = fast_config();
  bad.config.gen.block_size = kib(64) + 512;  // does not divide 64 KB
  SweepCell good;
  good.label = "good";
  good.benchmark = workloads::make_galgel();
  good.config = fast_config();
  good.schemes = {Scheme::kBase};
  SweepEngine engine(2);
  EXPECT_THROW(engine.run({bad, good}), Error);
}

TEST(SweepEngine, JobsAreConfigurable) {
  EXPECT_EQ(SweepEngine(3).jobs(), 3u);
  EXPECT_GE(SweepEngine().jobs(), 1u);  // 0 resolves to default_jobs()
}

TEST(SweepEngine, PerfCountersAdvanceBySnapshotDiff) {
  // The global counters are process-wide and other tests contribute to
  // them, so assertions go against the bracketed diff, never absolutes.
  const std::vector<SweepCell> cells = two_cells();
  const PerfSnapshot before = PerfCounters::global().snapshot();
  SweepEngine(2).run(cells);
  const PerfSnapshot delta = PerfCounters::global().snapshot() - before;
  EXPECT_EQ(delta.cells_completed, static_cast<std::int64_t>(cells.size()));
  EXPECT_GT(delta.simulations, 0);
  EXPECT_GT(delta.requests_simulated, 0);
  EXPECT_GE(delta.cell_wall_us, 0);
  EXPECT_GT(delta.trace_cache_hits + delta.trace_cache_misses, 0);
}

TEST(SweepEngine, TracerSeesEveryCellLifecycle) {
  const std::vector<SweepCell> cells = two_cells();
  obs::CountingSink sink;
  obs::EventTracer tracer;
  tracer.add_sink(sink);
  SweepEngine engine(2);
  engine.set_tracer(&tracer);

  const auto traced = engine.run(cells);
  tracer.close();
  // One begin/end pair per (cell, scheme) task; empty cell.schemes means
  // all seven schemes.
  const auto expected_tasks =
      static_cast<std::int64_t>(cells.size() * all_schemes().size());
  EXPECT_EQ(sink.count(obs::EventKind::kCellBegin), expected_tasks);
  EXPECT_EQ(sink.count(obs::EventKind::kCellEnd), expected_tasks);

  // Tracing must not perturb the sweep's numeric results.
  const auto untraced = SweepEngine(2).run(cells);
  ASSERT_EQ(traced.size(), untraced.size());
  for (std::size_t c = 0; c < traced.size(); ++c) {
    ASSERT_EQ(traced[c].results.size(), untraced[c].results.size());
    for (std::size_t s = 0; s < traced[c].results.size(); ++s) {
      expect_same_result(traced[c].results[s], untraced[c].results[s]);
    }
  }
}

}  // namespace
}  // namespace sdpm::experiments
