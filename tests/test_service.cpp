// sdpm_serviced core: admission-queue semantics (backpressure, fairness,
// lifecycle, lossless drain) and a live daemon/client round trip over a
// Unix socket.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/job_spec.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/queue.h"
#include "util/error.h"

namespace sdpm::service {
namespace {

api::JobSpec cheap_spec(const std::string& label) {
  api::JobSpec spec = api::JobSpecBuilder("galgel").scheme("Base").build();
  spec.label = label;
  return spec;
}

api::JobResult dummy_result(const api::JobSpec& spec) {
  api::JobResult result;
  result.label = spec.display_label();
  result.benchmark = spec.benchmark;
  result.transform = spec.transform;
  return result;
}

// ---------------------------------------------------------------------------
// BACKPRESSURE: a full queue rejects retryably and records nothing

TEST(AdmissionQueue, BackpressureRejectsRetryably) {
  AdmissionQueue queue(2);
  std::string error;
  bool retryable = false;
  EXPECT_GT(queue.submit(1, cheap_spec("a"), error, retryable), 0);
  EXPECT_GT(queue.submit(1, cheap_spec("b"), error, retryable), 0);
  EXPECT_EQ(queue.submit(1, cheap_spec("c"), error, retryable), 0);
  EXPECT_TRUE(retryable);
  EXPECT_FALSE(error.empty());

  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.rejected, 1);

  // Popping frees capacity: the retry succeeds.
  const auto batch = queue.pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GT(queue.submit(1, cheap_spec("c"), error, retryable), 0);
  queue.stop();
}

// ---------------------------------------------------------------------------
// FAIRNESS: round-robin across sessions, FIFO within a session

TEST(AdmissionQueue, PopsRoundRobinAcrossSessions) {
  AdmissionQueue queue(16);
  std::string error;
  bool retryable = false;
  // Session 1 dumps three jobs before session 2 submits one.
  const std::int64_t a1 = queue.submit(1, cheap_spec("a1"), error, retryable);
  const std::int64_t a2 = queue.submit(1, cheap_spec("a2"), error, retryable);
  const std::int64_t a3 = queue.submit(1, cheap_spec("a3"), error, retryable);
  const std::int64_t b1 = queue.submit(2, cheap_spec("b1"), error, retryable);

  const auto batch = queue.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  // One job per session per rotation: b1 runs second, not last.
  EXPECT_EQ(batch[0]->id, a1);
  EXPECT_EQ(batch[1]->id, b1);
  EXPECT_EQ(batch[2]->id, a2);
  EXPECT_EQ(batch[3]->id, a3);
  for (const auto& job : batch) EXPECT_EQ(job->state, JobState::kRunning);
  queue.stop();
}

// ---------------------------------------------------------------------------
// LIFECYCLE: exactly-once dispatch, terminal states stay queryable

TEST(AdmissionQueue, LifecycleIsExactlyOnce) {
  AdmissionQueue queue(8);
  std::string error;
  bool retryable = false;
  const std::int64_t id = queue.submit(1, cheap_spec("x"), error, retryable);

  auto batch = queue.pop_batch(4);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->runs, 1);
  queue.complete(batch[0], dummy_result(batch[0]->spec), 1.5);

  const auto snap = queue.snapshot(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kDone);
  ASSERT_TRUE(snap->result.has_value());
  EXPECT_DOUBLE_EQ(snap->wall_ms, 1.5);

  // wait_terminal on an already-terminal job returns immediately.
  const auto waited = queue.wait_terminal(id);
  ASSERT_TRUE(waited.has_value());
  EXPECT_EQ(waited->state, JobState::kDone);

  EXPECT_FALSE(queue.snapshot(9999).has_value());
  queue.stop();
}

TEST(AdmissionQueue, CancelOnlyTouchesQueuedJobs) {
  AdmissionQueue queue(8);
  std::string error;
  bool retryable = false;
  const std::int64_t queued =
      queue.submit(1, cheap_spec("q"), error, retryable);
  const std::int64_t running =
      queue.submit(2, cheap_spec("r"), error, retryable);

  // Pop session 2's job only (rotation starts after session 1... pop both
  // and re-submit is simpler: pop everything, then cancel must fail).
  auto batch = queue.pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  const std::int64_t popped = batch[0]->id;
  const std::int64_t still_queued = popped == queued ? running : queued;

  EXPECT_TRUE(queue.cancel(still_queued, error));
  EXPECT_EQ(queue.snapshot(still_queued)->state, JobState::kCancelled);
  EXPECT_FALSE(queue.cancel(popped, error));    // running
  EXPECT_FALSE(queue.cancel(still_queued, error));  // already terminal
  EXPECT_FALSE(queue.cancel(4242, error));      // unknown
  queue.stop();
}

// ---------------------------------------------------------------------------
// DRAIN: admission closes, nothing admitted is lost or double-run

TEST(AdmissionQueue, DrainIsLossless) {
  AdmissionQueue queue(64);
  queue.pause(true);  // hold the dispatcher back deterministically

  std::string error;
  bool retryable = true;
  std::vector<std::int64_t> admitted;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t session = 1 + static_cast<std::uint64_t>(i % 3);
    const std::int64_t id = queue.submit(
        session, cheap_spec("j" + std::to_string(i)), error, retryable);
    ASSERT_GT(id, 0);
    admitted.push_back(id);
  }

  // A dispatcher draining the queue concurrently with the SIGTERM path.
  std::atomic<int> dispatched{0};
  std::thread dispatcher([&] {
    while (true) {
      auto batch = queue.pop_batch(3);
      if (batch.empty()) return;
      for (const auto& job : batch) {
        EXPECT_EQ(job->runs, 1);
        dispatched.fetch_add(1);
        queue.complete(job, dummy_result(job->spec), 0.1);
      }
    }
  });

  queue.begin_drain();
  EXPECT_TRUE(queue.draining());
  // Post-drain submits are rejected NON-retryably: the client must not
  // spin against a closing daemon.
  EXPECT_EQ(queue.submit(1, cheap_spec("late"), error, retryable), 0);
  EXPECT_FALSE(retryable);

  queue.pause(false);
  queue.wait_drained();
  dispatcher.join();

  // Every admitted job reached a terminal state exactly once.
  EXPECT_EQ(dispatched.load(), 10);
  for (const std::int64_t id : admitted) {
    const auto snap = queue.snapshot(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kDone);
  }
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_EQ(stats.running, 0u);
  queue.stop();
}

// ---------------------------------------------------------------------------
// Daemon + client over a real socket

std::string test_socket_path(const char* tag) {
  return "/tmp/sdpm_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServiceDaemon, EndToEndSubmitAndDrain) {
  DaemonOptions options;
  options.socket_path = test_socket_path("e2e");
  options.queue_capacity = 32;
  options.max_batch = 4;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();

  std::thread waiter([&] { daemon.wait(); });

  {
    Client client(options.socket_path);
    const Json pong = client.ping();
    EXPECT_EQ(pong.at("protocol").as_int(), 1);

    // Two identical jobs: the second must ride the shared TraceCache.
    const std::int64_t first = client.submit(cheap_spec("one"));
    const std::int64_t second = client.submit(cheap_spec("two"));
    EXPECT_GT(first, 0);
    EXPECT_NE(first, second);

    const Json done = client.result(first, /*wait=*/true);
    EXPECT_EQ(done.at("state").as_string(), "done");
    ASSERT_TRUE(done.contains("result"));
    EXPECT_EQ(done.at("result").at("benchmark").as_string(), "galgel");

    client.result(second, /*wait=*/true);
    const Json stats = client.stats();
    EXPECT_EQ(stats.at("queue").at("completed").as_int(), 2);

    // A bad spec is rejected at the protocol level, not a crash.
    Json bad = Json::object();
    bad.set("op", std::string("submit"));
    Json spec_json = Json::object();
    spec_json.set("benchmark", std::string("not-a-benchmark"));
    bad.set("spec", spec_json);
    const Json rejected = client.request(bad);
    EXPECT_FALSE(rejected.at("ok").as_bool());

    client.shutdown();
  }

  waiter.join();
  EXPECT_TRUE(daemon.done());
  // The daemon unlinked its socket on the way out.
  Client* late = nullptr;
  EXPECT_THROW(late = new Client(options.socket_path), sdpm::Error);
  delete late;
}

TEST(ServiceDaemon, DrainRejectsNewWorkButFinishesAdmitted) {
  DaemonOptions options;
  options.socket_path = test_socket_path("drain");
  options.queue_capacity = 8;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });

  std::int64_t admitted = 0;
  {
    Client client(options.socket_path);
    admitted = client.submit(cheap_spec("before-drain"));
    client.drain();

    std::string error;
    bool retryable = true;
    EXPECT_EQ(client.try_submit(cheap_spec("after-drain"), error, retryable),
              0);
    EXPECT_FALSE(retryable);

    // The admitted job still runs to completion during the drain.
    const Json done = client.result(admitted, /*wait=*/true);
    EXPECT_EQ(done.at("state").as_string(), "done");
    client.shutdown();
  }
  waiter.join();
  EXPECT_TRUE(daemon.done());
}

}  // namespace
}  // namespace sdpm::service
