// sdpm_serviced core: admission-queue semantics (backpressure, fairness,
// lifecycle, lossless drain), worker supervision (deadlines, recovery,
// quarantine), protocol hardening, and live daemon/client round trips
// over a Unix socket.
#include <gtest/gtest.h>
#include <unistd.h>

#include <sys/socket.h>
#include <sys/un.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/job_spec.h"
#include "api/session.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "service/queue.h"
#include "service/store.h"
#include "util/error.h"

namespace sdpm::service {
namespace {

api::JobSpec cheap_spec(const std::string& label) {
  api::JobSpec spec = api::JobSpecBuilder("galgel").scheme("Base").build();
  spec.label = label;
  return spec;
}

api::JobResult dummy_result(const api::JobSpec& spec) {
  api::JobResult result;
  result.label = spec.display_label();
  result.benchmark = spec.benchmark;
  result.transform = spec.transform;
  return result;
}

// ---------------------------------------------------------------------------
// BACKPRESSURE: a full queue rejects retryably and records nothing

TEST(AdmissionQueue, BackpressureRejectsRetryably) {
  AdmissionQueue queue(2);
  std::string error;
  bool retryable = false;
  EXPECT_GT(queue.submit(1, cheap_spec("a"), error, retryable), 0);
  EXPECT_GT(queue.submit(1, cheap_spec("b"), error, retryable), 0);
  EXPECT_EQ(queue.submit(1, cheap_spec("c"), error, retryable), 0);
  EXPECT_TRUE(retryable);
  EXPECT_FALSE(error.empty());

  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.rejected, 1);

  // Popping frees capacity: the retry succeeds.
  const auto batch = queue.pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GT(queue.submit(1, cheap_spec("c"), error, retryable), 0);
  queue.stop();
}

// ---------------------------------------------------------------------------
// FAIRNESS: round-robin across sessions, FIFO within a session

TEST(AdmissionQueue, PopsRoundRobinAcrossSessions) {
  AdmissionQueue queue(16);
  std::string error;
  bool retryable = false;
  // Session 1 dumps three jobs before session 2 submits one.
  const std::int64_t a1 = queue.submit(1, cheap_spec("a1"), error, retryable);
  const std::int64_t a2 = queue.submit(1, cheap_spec("a2"), error, retryable);
  const std::int64_t a3 = queue.submit(1, cheap_spec("a3"), error, retryable);
  const std::int64_t b1 = queue.submit(2, cheap_spec("b1"), error, retryable);

  const auto batch = queue.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  // One job per session per rotation: b1 runs second, not last.
  EXPECT_EQ(batch[0]->id, a1);
  EXPECT_EQ(batch[1]->id, b1);
  EXPECT_EQ(batch[2]->id, a2);
  EXPECT_EQ(batch[3]->id, a3);
  for (const auto& job : batch) EXPECT_EQ(job->state, JobState::kRunning);
  queue.stop();
}

// ---------------------------------------------------------------------------
// LIFECYCLE: exactly-once dispatch, terminal states stay queryable

TEST(AdmissionQueue, LifecycleIsExactlyOnce) {
  AdmissionQueue queue(8);
  std::string error;
  bool retryable = false;
  const std::int64_t id = queue.submit(1, cheap_spec("x"), error, retryable);

  auto batch = queue.pop_batch(4);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->runs, 1);
  queue.complete(batch[0], dummy_result(batch[0]->spec), 1.5);

  const auto snap = queue.snapshot(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kDone);
  ASSERT_TRUE(snap->result.has_value());
  EXPECT_DOUBLE_EQ(snap->wall_ms, 1.5);

  // wait_terminal on an already-terminal job returns immediately.
  const auto waited = queue.wait_terminal(id);
  ASSERT_TRUE(waited.has_value());
  EXPECT_EQ(waited->state, JobState::kDone);

  EXPECT_FALSE(queue.snapshot(9999).has_value());
  queue.stop();
}

TEST(AdmissionQueue, CancelOnlyTouchesQueuedJobs) {
  AdmissionQueue queue(8);
  std::string error;
  bool retryable = false;
  const std::int64_t queued =
      queue.submit(1, cheap_spec("q"), error, retryable);
  const std::int64_t running =
      queue.submit(2, cheap_spec("r"), error, retryable);

  // Pop session 2's job only (rotation starts after session 1... pop both
  // and re-submit is simpler: pop everything, then cancel must fail).
  auto batch = queue.pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  const std::int64_t popped = batch[0]->id;
  const std::int64_t still_queued = popped == queued ? running : queued;

  EXPECT_TRUE(queue.cancel(still_queued, error));
  EXPECT_EQ(queue.snapshot(still_queued)->state, JobState::kCancelled);
  EXPECT_FALSE(queue.cancel(popped, error));    // running
  EXPECT_FALSE(queue.cancel(still_queued, error));  // already terminal
  EXPECT_FALSE(queue.cancel(4242, error));      // unknown
  queue.stop();
}

// ---------------------------------------------------------------------------
// DRAIN: admission closes, nothing admitted is lost or double-run

TEST(AdmissionQueue, DrainIsLossless) {
  AdmissionQueue queue(64);
  queue.pause(true);  // hold the dispatcher back deterministically

  std::string error;
  bool retryable = true;
  std::vector<std::int64_t> admitted;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t session = 1 + static_cast<std::uint64_t>(i % 3);
    const std::int64_t id = queue.submit(
        session, cheap_spec("j" + std::to_string(i)), error, retryable);
    ASSERT_GT(id, 0);
    admitted.push_back(id);
  }

  // A dispatcher draining the queue concurrently with the SIGTERM path.
  std::atomic<int> dispatched{0};
  std::thread dispatcher([&] {
    while (true) {
      auto batch = queue.pop_batch(3);
      if (batch.empty()) return;
      for (const auto& job : batch) {
        EXPECT_EQ(job->runs, 1);
        dispatched.fetch_add(1);
        queue.complete(job, dummy_result(job->spec), 0.1);
      }
    }
  });

  queue.begin_drain();
  EXPECT_TRUE(queue.draining());
  // Post-drain submits are rejected NON-retryably: the client must not
  // spin against a closing daemon.
  EXPECT_EQ(queue.submit(1, cheap_spec("late"), error, retryable), 0);
  EXPECT_FALSE(retryable);

  queue.pause(false);
  queue.wait_drained();
  dispatcher.join();

  // Every admitted job reached a terminal state exactly once.
  EXPECT_EQ(dispatched.load(), 10);
  for (const std::int64_t id : admitted) {
    const auto snap = queue.snapshot(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kDone);
  }
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_EQ(stats.running, 0u);
  queue.stop();
}

// ---------------------------------------------------------------------------
// Daemon + client over a real socket

std::string test_socket_path(const char* tag) {
  return "/tmp/sdpm_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServiceDaemon, EndToEndSubmitAndDrain) {
  DaemonOptions options;
  options.socket_path = test_socket_path("e2e");
  options.queue_capacity = 32;
  options.max_batch = 4;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();

  std::thread waiter([&] { daemon.wait(); });

  {
    Client client(options.socket_path);
    const Json pong = client.ping();
    EXPECT_EQ(pong.at("protocol").as_int(), 1);

    // Two identical jobs: the second must ride the shared TraceCache.
    const std::int64_t first = client.submit(cheap_spec("one"));
    const std::int64_t second = client.submit(cheap_spec("two"));
    EXPECT_GT(first, 0);
    EXPECT_NE(first, second);

    const Json done = client.result(first, /*wait=*/true);
    EXPECT_EQ(done.at("state").as_string(), "done");
    ASSERT_TRUE(done.contains("result"));
    EXPECT_EQ(done.at("result").at("benchmark").as_string(), "galgel");

    client.result(second, /*wait=*/true);
    const Json stats = client.stats();
    EXPECT_EQ(stats.at("queue").at("completed").as_int(), 2);

    // A bad spec is rejected at the protocol level, not a crash.
    Json bad = Json::object();
    bad.set("op", std::string("submit"));
    Json spec_json = Json::object();
    spec_json.set("benchmark", std::string("not-a-benchmark"));
    bad.set("spec", spec_json);
    const Json rejected = client.request(bad);
    EXPECT_FALSE(rejected.at("ok").as_bool());

    client.shutdown();
  }

  waiter.join();
  EXPECT_TRUE(daemon.done());
  // The daemon unlinked its socket on the way out.
  Client* late = nullptr;
  EXPECT_THROW(late = new Client(options.socket_path), sdpm::Error);
  delete late;
}

TEST(ServiceDaemon, DevicePresetsAndV1NotesTravelTheWire) {
  DaemonOptions options;
  options.socket_path = test_socket_path("device");
  options.queue_capacity = 8;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });

  {
    Client client(options.socket_path);

    // A v2 spec on a non-default device preset runs end to end.
    api::JobSpec preset_spec = api::JobSpecBuilder("galgel")
                                   .scheme("TPM")
                                   .device("nvme_tiered")
                                   .build();
    const std::int64_t preset_id = client.submit(preset_spec);
    const Json preset_done = client.result(preset_id, /*wait=*/true);
    EXPECT_EQ(preset_done.at("state").as_string(), "done");
    EXPECT_FALSE(preset_done.at("result").contains("notes"));
    EXPECT_GT(preset_done.at("result")
                  .at("schemes")
                  .as_array()
                  .front()
                  .at("energy_j")
                  .as_double(),
              0.0);

    // A v1 spec still runs, and its result carries the deprecation note.
    api::JobSpec v1 = api::JobSpecBuilder("galgel").scheme("Base").build();
    v1.version = 1;
    const std::int64_t v1_id = client.submit(v1);
    const Json v1_done = client.result(v1_id, /*wait=*/true);
    EXPECT_EQ(v1_done.at("state").as_string(), "done");
    ASSERT_TRUE(v1_done.at("result").contains("notes"));
    const std::string note =
        v1_done.at("result").at("notes").as_array().front().as_string();
    EXPECT_EQ(note.rfind("deprecation:", 0), 0u);

    client.shutdown();
  }
  waiter.join();
}

TEST(ServiceDaemon, DrainRejectsNewWorkButFinishesAdmitted) {
  DaemonOptions options;
  options.socket_path = test_socket_path("drain");
  options.queue_capacity = 8;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });

  std::int64_t admitted = 0;
  {
    Client client(options.socket_path);
    admitted = client.submit(cheap_spec("before-drain"));
    client.drain();

    std::string error;
    bool retryable = true;
    EXPECT_EQ(client.try_submit(cheap_spec("after-drain"), error, retryable),
              0);
    EXPECT_FALSE(retryable);

    // The admitted job still runs to completion during the drain.
    const Json done = client.result(admitted, /*wait=*/true);
    EXPECT_EQ(done.at("state").as_string(), "done");
    client.shutdown();
  }
  waiter.join();
  EXPECT_TRUE(daemon.done());
}

// ---------------------------------------------------------------------------
// SUPERVISION: deadlines, late-result drops, restore APIs

TEST(AdmissionQueue, WatchdogExpiresOverdueAndDropsLateResults) {
  AdmissionQueue queue(8);
  std::string error;
  bool retryable = false;
  queue.submit(1, cheap_spec("slow-a"), error, retryable);
  queue.submit(2, cheap_spec("slow-b"), error, retryable);

  auto batch = queue.pop_batch(2, /*now_ms=*/100.0);
  ASSERT_EQ(batch.size(), 2u);

  // Within the deadline nothing expires.
  EXPECT_TRUE(queue.expire_overdue(/*now_ms=*/5099.0, /*timeout_ms=*/5000.0)
                  .empty());
  // Past it, every running job fails with a structured JOB_TIMEOUT.
  const auto expired = queue.expire_overdue(5200.0, 5000.0);
  EXPECT_EQ(expired.size(), 2u);
  for (const auto& job : batch) {
    const auto snap = queue.snapshot(job->id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kFailed);
    EXPECT_EQ(snap->error_code, "JOB_TIMEOUT");
  }
  QueueStats stats = queue.stats();
  EXPECT_EQ(stats.timed_out, 2);
  EXPECT_EQ(stats.running, 0u);

  // The worker that was still computing those jobs eventually reports in;
  // its late transitions are dropped, not fatal, and the first terminal
  // state wins.
  EXPECT_FALSE(queue.complete(batch[0], dummy_result(batch[0]->spec), 9.0));
  EXPECT_FALSE(queue.fail(batch[1], "late failure", 9.0));
  EXPECT_EQ(queue.snapshot(batch[0]->id)->state, JobState::kFailed);
  EXPECT_EQ(queue.snapshot(batch[1]->id)->error_code, "JOB_TIMEOUT");
  EXPECT_EQ(queue.stats().completed, 0);
  queue.stop();
}

TEST(AdmissionQueue, RestoreRebuildsAPriorLife) {
  AdmissionQueue queue(8);
  queue.restore_done(3, 1, cheap_spec("was-done"),
                     dummy_result(cheap_spec("was-done")));
  queue.restore_failed(4, 1, cheap_spec("was-failed"), "boom", "EXEC_ERROR");
  queue.restore_cancelled(5, 1, cheap_spec("was-cancelled"));
  queue.restore_queued(6, 2, cheap_spec("was-queued"), /*prior_runs=*/2);

  QueueStats stats = queue.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.depth, 1u);
  EXPECT_EQ(stats.recovered, 1);
  EXPECT_EQ(stats.submitted, 4);

  EXPECT_EQ(queue.snapshot(3)->state, JobState::kDone);
  EXPECT_TRUE(queue.snapshot(3)->result.has_value());
  EXPECT_EQ(queue.snapshot(4)->error_code, "EXEC_ERROR");
  EXPECT_EQ(queue.snapshot(5)->state, JobState::kCancelled);

  // The id allocator starts past every restored id.
  std::string error;
  bool retryable = false;
  EXPECT_EQ(queue.submit(1, cheap_spec("fresh"), error, retryable), 7);

  // A re-queued job carries its dispatch history into the next run.
  auto batch = queue.pop_batch(4, 0.0);
  ASSERT_EQ(batch.size(), 2u);
  const auto recovered =
      batch[0]->id == 6 ? batch[0] : batch[1];
  EXPECT_EQ(recovered->id, 6);
  EXPECT_EQ(recovered->runs, 3);  // 2 prior lives + this dispatch
  queue.stop();
}

// ---------------------------------------------------------------------------
// DURABILITY: a second daemon on the same state dir finishes what the
// first one abandoned, exactly once, and serves repeats from the store

std::string test_state_dir(const char* tag) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("sdpm_state_" + std::string(tag) + "_" +
                     std::to_string(::getpid()));
  std::filesystem::remove_all(path);
  return path.string();
}

TEST(ServiceDaemon, RecoversAbandonedJobsAcrossRestart) {
  const std::string state_dir = test_state_dir("recover");
  DaemonOptions options;
  options.queue_capacity = 32;
  options.jobs = 2;
  options.state_dir = state_dir;

  // Life 1: admit five jobs but never let the dispatcher at them, then
  // tear the daemon down — the in-process analogue of a crash with a
  // populated queue.  Only the journal remembers the jobs.
  std::vector<std::int64_t> ids;
  options.socket_path = test_socket_path("recover1");
  {
    ServiceDaemon daemon(options);
    daemon.start();
    daemon.queue().pause(true);
    Client client(options.socket_path);
    for (int i = 0; i < 5; ++i) {
      ids.push_back(
          client.submit(cheap_spec("recover-" + std::to_string(i))));
    }
  }

  // Life 2: same state dir, fresh socket.  Every admitted job completes
  // under its ORIGINAL id without resubmission.
  options.socket_path = test_socket_path("recover2");
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    for (const std::int64_t id : ids) {
      const Json done = client.result(id, /*wait=*/true);
      EXPECT_EQ(done.at("state").as_string(), "done");
      EXPECT_TRUE(done.contains("result"));
    }
    Json stats = client.stats();
    EXPECT_EQ(stats.at("queue").at("recovered").as_int(), 5);
    EXPECT_EQ(stats.at("queue").at("completed").as_int(), 5);

    // A repeat of an already-computed job rides the persistent store.
    const std::int64_t again = client.submit(cheap_spec("recover-0"));
    EXPECT_EQ(client.result(again, true).at("state").as_string(), "done");
    stats = client.stats();
    ASSERT_TRUE(stats.contains("store"));
    EXPECT_GT(stats.at("store").at("hits").as_int(), 0);
    EXPECT_GT(stats.at("store").at("entries").as_int(), 0);
    client.shutdown();
  }
  waiter.join();
  std::filesystem::remove_all(state_dir);
}

TEST(ServiceDaemon, ResultsSurviveRestartWithoutRecompute) {
  const std::string state_dir = test_state_dir("store");
  DaemonOptions options;
  options.jobs = 2;
  options.state_dir = state_dir;

  options.socket_path = test_socket_path("store1");
  std::int64_t id = 0;
  {
    ServiceDaemon daemon(options);
    daemon.start();
    std::thread waiter([&] { daemon.wait(); });
    Client client(options.socket_path);
    id = client.submit(cheap_spec("durable"));
    EXPECT_EQ(client.result(id, true).at("state").as_string(), "done");
    client.shutdown();
    waiter.join();
  }

  // Life 2: the COMPLETE record + store entry restore the job terminal —
  // still queryable under its id, with zero recovered (nothing re-ran).
  options.socket_path = test_socket_path("store2");
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    const Json done = client.result(id, /*wait=*/false);
    EXPECT_EQ(done.at("state").as_string(), "done");
    EXPECT_TRUE(done.contains("result"));
    const Json stats = client.stats();
    EXPECT_EQ(stats.at("queue").at("recovered").as_int(), 0);
    client.shutdown();
  }
  waiter.join();
  std::filesystem::remove_all(state_dir);
}

TEST(ServiceDaemon, QuarantinesPoisonJobsAtRecovery) {
  const std::string state_dir = test_state_dir("poison");
  std::filesystem::create_directories(state_dir);
  // Forge the journal of a job that took three daemon lives down:
  // three DISPATCH records, no completion.
  {
    Journal journal(JournalOptions{.path = state_dir + "/journal.bin"});
    journal.open();
    journal.admit(1, 1, cheap_spec("poison").canonical_json());
    for (int i = 0; i < 3; ++i) journal.dispatch(1);
    journal.admit(2, 1, cheap_spec("innocent").canonical_json());
    journal.dispatch(2);
  }

  DaemonOptions options;
  options.socket_path = test_socket_path("poison");
  options.jobs = 2;
  options.state_dir = state_dir;
  options.max_attempts = 3;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    // The poison job is a structured failure, not an infinite re-queue.
    const Json poisoned = client.result(1, /*wait=*/true);
    EXPECT_EQ(poisoned.at("state").as_string(), "failed");
    EXPECT_EQ(poisoned.at("code").as_string(), "QUARANTINED");
    // The job with attempts to spare still runs to completion.
    EXPECT_EQ(client.result(2, true).at("state").as_string(), "done");
    client.shutdown();
  }
  waiter.join();

  // The quarantine itself was journaled: the NEXT life restores the job
  // as failed instead of counting attempts again.
  DaemonOptions next = options;
  next.socket_path = test_socket_path("poison2");
  ServiceDaemon daemon2(next);
  daemon2.start();
  const auto snap = daemon2.queue().snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kFailed);
  EXPECT_EQ(snap->error_code, "QUARANTINED");
  EXPECT_EQ(daemon2.queue().stats().recovered, 0);
  daemon2.request_shutdown();
  daemon2.wait();
  std::filesystem::remove_all(state_dir);
}

TEST(ServiceDaemon, WatchdogFailsOverrunningJobsEndToEnd) {
  // A 0.01 ms deadline: every real job overruns it, so the watchdog must
  // convert the whole batch into structured JOB_TIMEOUT failures.
  DaemonOptions options;
  options.socket_path = test_socket_path("watchdog");
  options.jobs = 2;
  options.job_timeout_ms = 0.01;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    const std::int64_t id = client.submit(cheap_spec("overrun"));
    const Json result = client.result(id, /*wait=*/true);
    if (result.at("state").as_string() == "failed") {
      EXPECT_EQ(result.at("code").as_string(), "JOB_TIMEOUT");
      const Json stats = client.stats();
      EXPECT_GE(stats.at("queue").at("timed_out").as_int(), 1);
    }  // else the job won the race — legal, the deadline is best-effort
    client.shutdown();
  }
  waiter.join();
}

// ---------------------------------------------------------------------------
// PROTOCOL HARDENING: oversized frames, torn frames, fuzz

int raw_connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(w);
  }
}

std::string be32(std::uint32_t v) {
  std::string out;
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
  return out;
}

TEST(ServiceDaemon, OversizedFrameGetsStructuredErrorAndResyncs) {
  DaemonOptions options;
  options.socket_path = test_socket_path("oversize");
  options.jobs = 2;
  options.max_frame_bytes = 1024;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    const int fd = raw_connect(options.socket_path);
    // 2 KB payload against a 1 KB cap: the daemon discards it, answers
    // with FRAME_TOO_LARGE, and KEEPS SERVING on the same connection.
    raw_send(fd, be32(2048) + std::string(2048, 'x'));
    std::string payload;
    ASSERT_TRUE(read_frame(fd, payload));
    Json response = Json::parse(payload);
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("code").as_string(), "FRAME_TOO_LARGE");

    write_frame(fd, "{\"op\":\"ping\"}");
    ASSERT_TRUE(read_frame(fd, payload));
    EXPECT_TRUE(Json::parse(payload).at("ok").as_bool());

    // A "negative" length prefix cannot be resynchronized: the daemon
    // still answers with a structured error, then closes.
    raw_send(fd, be32(0x80000001u));
    ASSERT_TRUE(read_frame(fd, payload));
    response = Json::parse(payload);
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("code").as_string(), "FRAME_TOO_LARGE");
    EXPECT_FALSE(read_frame(fd, payload));  // clean EOF
    ::close(fd);
  }
  // The daemon survived all of it.
  {
    Client client(options.socket_path);
    client.ping();
    client.shutdown();
  }
  waiter.join();
}

TEST(ServiceDaemon, SurvivesMalformedAndTruncatedFrames) {
  DaemonOptions options;
  options.socket_path = test_socket_path("fuzz");
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });

  // Garbage payloads inside well-formed frames: structured errors, the
  // connection stays healthy.
  {
    const int fd = raw_connect(options.socket_path);
    for (const std::string bad :
         {std::string("this is not json"), std::string("[1,2,3"),
          std::string("{\"no_op\":true}"), std::string("{\"op\":42}"),
          std::string("\x00\xff\x7f garbage \x01", 12)}) {
      write_frame(fd, bad);
      std::string payload;
      ASSERT_TRUE(read_frame(fd, payload));
      const Json response = Json::parse(payload);
      EXPECT_FALSE(response.at("ok").as_bool());
      EXPECT_TRUE(response.contains("error"));
    }
    write_frame(fd, "{\"op\":\"ping\"}");
    std::string payload;
    ASSERT_TRUE(read_frame(fd, payload));
    EXPECT_TRUE(Json::parse(payload).at("ok").as_bool());
    ::close(fd);
  }

  // Torn frames: announce more than is sent, then hang up mid-frame.  The
  // daemon drops that connection and nothing else.
  for (const std::string torn :
       {be32(100) + std::string(10, 'y'), be32(1), std::string("\x00", 1),
        std::string("ABC")}) {
    const int fd = raw_connect(options.socket_path);
    raw_send(fd, torn);
    ::close(fd);
  }
  {
    Client client(options.socket_path);
    client.ping();
    client.shutdown();
  }
  waiter.join();
  EXPECT_TRUE(daemon.done());
}

TEST(ServiceDaemon, OverCapResultIsStructuredNotTruncated) {
  // Find the gap between "submit fits" and "result does not": the real
  // result document for this spec, measured directly.  All seven schemes
  // make the result several times larger than the submit frame.
  api::JobSpec spec = api::JobSpecBuilder("galgel").build();
  spec.label = "too-big";
  Json submit = Json::object();
  submit.set("op", std::string("submit")).set("spec", spec.to_json());
  const std::size_t submit_bytes = submit.dump().size();
  api::Session session(api::SessionOptions{.jobs = 2});
  const std::size_t result_bytes =
      session.run(spec).to_json().dump().size();
  const std::uint32_t cap = static_cast<std::uint32_t>(submit_bytes + 256);
  ASSERT_GT(result_bytes, cap) << "result unexpectedly small; the cap "
                                  "cannot sit between submit and result";

  DaemonOptions options;
  options.socket_path = test_socket_path("toolarge");
  options.jobs = 2;
  options.max_frame_bytes = cap;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    const std::int64_t id = client.submit(spec);
    Json message = Json::object();
    message.set("op", std::string("result")).set("id", id).set("wait", true);
    const Json response = client.request(message);
    // Silent-data-loss guard: never a truncated frame, never a hang — a
    // structured RESULT_TOO_LARGE error.
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("code").as_string(), "RESULT_TOO_LARGE");
    // The job itself completed; only the transport refused the payload.
    EXPECT_EQ(daemon.queue().snapshot(id)->state, JobState::kDone);
    client.shutdown();
  }
  waiter.join();
}

// ---------------------------------------------------------------------------
// SIGTERM drain racing concurrent cancels: every job terminal exactly once

TEST(ServiceDaemon, DrainRacesConcurrentCancelsLosslessly) {
  DaemonOptions options;
  options.socket_path = test_socket_path("drainrace");
  options.queue_capacity = 64;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });

  daemon.queue().pause(true);  // hold dispatch so cancels have targets
  std::vector<std::int64_t> ids;
  {
    Client client(options.socket_path);
    for (int i = 0; i < 24; ++i) {
      ids.push_back(client.submit(cheap_spec("race-" + std::to_string(i))));
    }
  }

  // Three cancellers race the drain (the SIGTERM path) while the
  // dispatcher is still held; each cancel either wins or reports a clean
  // failure — never a crash, never a lost job.
  std::atomic<int> cancelled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Client client(options.socket_path);
      for (std::size_t i = static_cast<std::size_t>(t); i < ids.size();
           i += 3) {
        try {
          client.cancel(ids[i]);
          cancelled.fetch_add(1);
        } catch (const sdpm::Error&) {
          // already running/terminal — someone else won the race
        }
      }
    });
  }
  threads.emplace_back([&] {
    Client client(options.socket_path);
    client.drain();
  });
  for (std::thread& t : threads) t.join();
  daemon.queue().pause(false);
  daemon.queue().wait_drained();

  // Exactly-once accounting: done + cancelled covers every admitted job.
  int done = 0;
  int cancelled_seen = 0;
  for (const std::int64_t id : ids) {
    const auto snap = daemon.queue().snapshot(id);
    ASSERT_TRUE(snap.has_value());
    ASSERT_TRUE(is_terminal(snap->state));
    if (snap->state == JobState::kDone) ++done;
    if (snap->state == JobState::kCancelled) ++cancelled_seen;
  }
  EXPECT_EQ(done + cancelled_seen, 24);
  EXPECT_EQ(cancelled_seen, cancelled.load());
  const QueueStats stats = daemon.queue().stats();
  EXPECT_EQ(stats.completed + stats.cancelled, 24);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_EQ(stats.running, 0u);

  daemon.request_shutdown();
  waiter.join();
}

// ---------------------------------------------------------------------------
// CLIENT RETRY: seeded jitter, bounded backoff, connect retries

TEST(Client, ConnectRetriesUntilTheDaemonAppears) {
  DaemonOptions options;
  options.socket_path = test_socket_path("lateboot");
  options.jobs = 2;
  ServiceDaemon daemon(options);

  // Start the daemon AFTER the client begins connecting: only the retry
  // path can succeed.
  std::thread booter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    daemon.start();
  });
  ClientOptions retry;
  retry.connect_attempts = 50;
  retry.backoff_base_ms = 5;
  Client client(options.socket_path, retry);
  booter.join();
  client.ping();
  client.shutdown();
  daemon.wait();
}

TEST(Client, FailsFastOnPermanentConnectErrors) {
  ClientOptions retry;
  retry.connect_attempts = 3;
  retry.backoff_base_ms = 1;
  EXPECT_THROW(Client("/tmp/sdpm_definitely_absent.sock", retry),
               sdpm::Error);
}

// ---------------------------------------------------------------------------
// TELEMETRY: the telemetry op, counter reconciliation, journal counters,
// trace-id propagation and Chrome-trace stitching

TEST(ServiceDaemon, TelemetryReconcilesWithQueueStats) {
  DaemonOptions options;
  options.socket_path = test_socket_path("telemetry");
  options.queue_capacity = 32;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    std::vector<std::int64_t> ids;
    for (int i = 0; i < 5; ++i) {
      ids.push_back(client.submit(cheap_spec("tel-" + std::to_string(i))));
    }
    // One job cancelled before it can possibly run is still fine for the
    // invariant: cancellation is a terminal state without an e2e sample.
    for (const std::int64_t id : ids) client.result(id, /*wait=*/true);

    const Json stats = client.stats().at("queue");
    // Telemetry outcome stamps land just after the queue's terminal
    // transition (the client can observe "done" in between), so give the
    // counters a bounded moment to converge before asserting equality.
    Json telemetry = client.telemetry().at("telemetry");
    for (int spin = 0; spin < 200; ++spin) {
      if (telemetry.at("stages").at("e2e").at("count").as_int() ==
          stats.at("completed").as_int() + stats.at("failed").as_int()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      telemetry = client.telemetry().at("telemetry");
    }
    const Json& stages = telemetry.at("stages");

    // Invariant: submitted == completed + failed + cancelled + rejected +
    // in-flight, and the e2e histogram saw exactly the evaluated
    // terminals (completed + failed).
    const std::int64_t submitted = stats.at("submitted").as_int();
    const std::int64_t completed = stats.at("completed").as_int();
    const std::int64_t failed = stats.at("failed").as_int();
    const std::int64_t in_flight =
        stats.at("depth").as_int() + stats.at("running").as_int();
    EXPECT_EQ(submitted, completed + failed + stats.at("cancelled").as_int() +
                             stats.at("rejected").as_int() + in_flight);
    EXPECT_EQ(stages.at("e2e").at("count").as_int(), completed + failed);
    EXPECT_EQ(stages.at("admit").at("count").as_int(), submitted);
    EXPECT_EQ(stages.at("queue_wait").at("count").as_int(),
              completed + failed);
    // Every op handled so far wrote a response.
    EXPECT_GT(stages.at("respond").at("count").as_int(), 0);
    // Quantiles are ordered within every stage.
    for (const auto& [name, stage] : stages.as_object()) {
      EXPECT_LE(stage.at("p50_ms").as_double(),
                stage.at("p99_ms").as_double() + 1e-9)
          << name;
    }

    // Rolling windows and per-client aggregates reconcile too.
    EXPECT_EQ(telemetry.at("windows")
                  .at("completions")
                  .at("60s")
                  .at("count")
                  .as_int(),
              completed + failed);
    std::int64_t client_submitted = 0;
    for (const auto& [session, agg] : telemetry.at("clients").as_object()) {
      client_submitted += agg.at("submitted").as_int();
    }
    EXPECT_EQ(client_submitted, submitted);

    // The Prometheus rendering includes the stage summaries.
    const Json prom = client.telemetry(/*prometheus=*/true);
    EXPECT_NE(prom.at("text").as_string().find(
                  "sdpm_service_stage_latency_ms"),
              std::string::npos);
    client.shutdown();
  }
  waiter.join();
}

TEST(ServiceDaemon, StatsReportJournalCounters) {
  const std::string state_dir = test_state_dir("telemetry_journal");
  DaemonOptions options;
  options.socket_path = test_socket_path("telemetry_journal");
  options.state_dir = state_dir;
  options.fsync_journal = true;
  options.jobs = 2;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    const std::int64_t id = client.submit(cheap_spec("journal-counters"));
    client.result(id, /*wait=*/true);
    const Json stats = client.stats();
    ASSERT_TRUE(stats.contains("journal"));
    const Json& journal = stats.at("journal");
    // ADMIT + DISPATCH + DONE for one job: at least three appends, each
    // fsynced (fsync_journal is on).  Opening the journal always compacts
    // it to live state once; a clean file has no torn tail.
    EXPECT_GE(journal.at("appends").as_int(), 3);
    EXPECT_GE(journal.at("fsyncs").as_int(), 3);
    EXPECT_EQ(journal.at("compactions").as_int(), 1);
    EXPECT_EQ(journal.at("torn_tail_truncations").as_int(), 0);
    // The durability stages saw those fsyncs.
    const Json stages = client.telemetry().at("telemetry").at("stages");
    EXPECT_GE(stages.at("journal_fsync").at("count").as_int(), 3);
    client.shutdown();
  }
  waiter.join();
  std::filesystem::remove_all(state_dir);
}

TEST(ServiceDaemon, TraceIdStitchesServiceAndDiskTracks) {
  std::ostringstream trace_out;
  obs::EventTracer tracer;
  obs::ChromeTraceSink sink(trace_out);
  tracer.add_sink(sink);

  DaemonOptions options;
  options.socket_path = test_socket_path("stitch");
  options.jobs = 2;
  options.tracer = &tracer;
  ServiceDaemon daemon(options);
  daemon.start();
  std::thread waiter([&] { daemon.wait(); });
  {
    Client client(options.socket_path);
    TraceContext trace;
    trace.trace_id = 0xabcdef12ull;
    trace.span_id = 7;
    const std::int64_t id = client.submit(cheap_spec("stitched"), 8, trace);
    const Json done = client.result(id, /*wait=*/true);
    EXPECT_EQ(done.at("state").as_string(), "done");
    client.shutdown();
  }
  waiter.join();
  tracer.close();

  // One trace file, one trace_id, two clocks: the service stages ride
  // pid 3 (wall time), the replayed job span rides pid 1 (simulated
  // time), and the shared trace_id is what a viewer joins them on.
  const Json doc = Json::parse(trace_out.str());
  const std::string want_id = trace_hex(0xabcdef12ull);
  bool service_stage_tagged = false;
  bool sim_span_tagged = false;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    const Json* event_args = event.find("args");
    if (event_args == nullptr) continue;
    const Json* tagged = event_args->find("trace_id");
    if (tagged == nullptr || tagged->as_string() != want_id) continue;
    const std::int64_t pid = event.at("pid").as_int();
    if (pid == 3) service_stage_tagged = true;
    if (pid == 1) sim_span_tagged = true;
  }
  EXPECT_TRUE(service_stage_tagged);
  EXPECT_TRUE(sim_span_tagged);
}

}  // namespace
}  // namespace sdpm::service
