// Extensions beyond the paper: adaptive-threshold TPM, the PDC layout
// baseline, open-loop trace replay, and trace text round-tripping.
#include <gtest/gtest.h>

#include <sstream>

#include "core/pdc.h"
#include "ir/builder.h"
#include "layout/layout_table.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/text_io.h"
#include "util/error.h"

namespace sdpm {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Request make_request(TimeMs arrival, int disk, BlockNo sector,
                            Bytes size) {
  trace::Request r;
  r.arrival_ms = arrival;
  r.disk = disk;
  r.start_sector = sector;
  r.size_bytes = size;
  return r;
}

// ---- adaptive TPM -----------------------------------------------------------

TEST(AdaptiveTpm, SpinsDownOnLongGaps) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_request(0.0, 0, 0, kib(64)));
  t.requests.push_back(make_request(60'000.0, 0, 1'000'000, kib(64)));
  t.compute_total_ms = 61'000.0;
  policy::AdaptiveTpmPolicy policy;
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 1);
}

TEST(AdaptiveTpm, ThresholdGrowsAfterPrematureWake) {
  // Gaps just above the initial threshold but below break-even: each
  // spin-down is judged premature and the threshold doubles.
  trace::Trace t;
  t.total_disks = 1;
  for (int i = 0; i < 6; ++i) {
    t.requests.push_back(
        make_request(i * 3'000.0, 0, i * 1'000'000, kib(64)));
  }
  t.compute_total_ms = 20'000.0;
  policy::AdaptiveTpmPolicy policy(
      policy::AdaptiveTpmOptions{2'000.0, 500.0, 120'000.0, 2.0});
  sim::simulate(t, params(), policy);
  EXPECT_GT(policy.threshold_of(0), 2'000.0);
}

TEST(AdaptiveTpm, ThresholdShrinksAfterProfitableStandby) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_request(0.0, 0, 0, kib(64)));
  t.requests.push_back(make_request(200'000.0, 0, 1'000'000, kib(64)));
  t.compute_total_ms = 201'000.0;
  policy::AdaptiveTpmPolicy policy(
      policy::AdaptiveTpmOptions{20'000.0, 1'000.0, 120'000.0, 2.0});
  sim::simulate(t, params(), policy);
  EXPECT_LT(policy.threshold_of(0), 20'000.0);
}

TEST(AdaptiveTpm, ThresholdRespectsBounds) {
  trace::Trace t;
  t.total_disks = 1;
  for (int i = 0; i < 20; ++i) {
    t.requests.push_back(
        make_request(i * 2'500.0, 0, i * 1'000'000, kib(64)));
  }
  t.compute_total_ms = 60'000.0;
  policy::AdaptiveTpmPolicy policy(
      policy::AdaptiveTpmOptions{2'000.0, 1'000.0, 4'000.0, 2.0});
  sim::simulate(t, params(), policy);
  EXPECT_LE(policy.threshold_of(0), 4'000.0);
  EXPECT_GE(policy.threshold_of(0), 1'000.0);
}

TEST(AdaptiveTpm, RejectsBadAdjustFactor) {
  trace::Trace t;
  t.total_disks = 1;
  t.compute_total_ms = 1'000.0;
  policy::AdaptiveTpmPolicy policy(
      policy::AdaptiveTpmOptions{-1.0, 1'000.0, 2'000.0, 1.0});
  sim::Simulator sim(t, params(), policy);
  EXPECT_THROW(sim.run(), Error);
}

// ---- PDC --------------------------------------------------------------------

ir::Program skewed_program() {
  // HOT is swept 8x, COLD once: PDC should pack HOT tightly and push COLD
  // behind it.
  ir::ProgramBuilder pb("skewed");
  const ir::ArrayId hot = pb.array("HOT", {16 * 8192});
  const ir::ArrayId cold = pb.array("COLD", {16 * 8192});
  for (int k = 0; k < 8; ++k) {
    pb.nest("hot" + std::to_string(k))
        .loop("i", 0, 16 * 8192)
        .stmt(100.0)
        .read(hot, {ir::sym("i")})
        .done();
  }
  pb.nest("cold").loop("i", 0, 16 * 8192).stmt(100.0).read(
      cold, {ir::sym("i")}).done();
  return pb.build();
}

TEST(Pdc, PopularityOrderByRequests) {
  core::PdcOptions options;
  options.total_disks = 4;
  options.access.cache_bytes = 0;
  const core::PdcResult result = core::apply_pdc(skewed_program(), options);
  ASSERT_EQ(result.popularity_order.size(), 2u);
  EXPECT_EQ(result.popularity_order[0], 0);  // HOT first
}

TEST(Pdc, LoadConcentratesOnPrefix) {
  core::PdcOptions options;
  options.total_disks = 8;
  options.access.cache_bytes = 0;
  const core::PdcResult result = core::apply_pdc(skewed_program(), options);
  // Loads never increase along the disk order.
  for (std::size_t d = 1; d < result.projected_load.size(); ++d) {
    EXPECT_LE(result.projected_load[d], result.projected_load[d - 1] + 1e-9);
  }
  EXPECT_GT(result.unused_disks, 0);
}

TEST(Pdc, StripingStaysWithinDiskRange) {
  core::PdcOptions options;
  options.total_disks = 8;
  options.access.cache_bytes = 0;
  const core::PdcResult result = core::apply_pdc(skewed_program(), options);
  for (const layout::Striping& s : result.striping) {
    EXPECT_GE(s.starting_disk, 0);
    EXPECT_LE(s.starting_disk + s.stripe_factor, 8);
  }
  // The result is a valid layout.
  const layout::LayoutTable table(skewed_program(), result.striping, 8);
  EXPECT_EQ(table.array_count(), 2u);
}

TEST(Pdc, UniformLoadSpreadsEvenly) {
  // With headroom 1.0 and two equally hot arrays, no disk may exceed the
  // fair share: the layout degenerates toward plain striping.
  ir::ProgramBuilder pb("uniform");
  const ir::ArrayId a = pb.array("A", {16 * 8192});
  const ir::ArrayId b = pb.array("B", {16 * 8192});
  pb.nest("n")
      .loop("i", 0, 16 * 8192)
      .stmt(1.0)
      .read(a, {ir::sym("i")})
      .read(b, {ir::sym("i")})
      .done();
  core::PdcOptions options;
  options.total_disks = 4;
  options.load_headroom = 1.0;
  options.access.cache_bytes = 0;
  const core::PdcResult result = core::apply_pdc(pb.build(), options);
  EXPECT_EQ(result.unused_disks, 0);
}

TEST(Pdc, RejectsBadHeadroom) {
  core::PdcOptions options;
  options.load_headroom = 0.5;
  EXPECT_THROW(core::apply_pdc(skewed_program(), options), Error);
}

// ---- open-loop replay -------------------------------------------------------

TEST(OpenLoop, OverlappingArrivalsQueuePerDisk) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_request(0.0, 0, 0, kib(64)));
  t.requests.push_back(make_request(1.0, 0, 1'000'000, kib(64)));
  t.compute_total_ms = 2.0;
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(
      t, params(), policy,
      sim::SimOptions{.mode = sim::ReplayMode::kOpenLoop,
                      .capture_responses = true});
  const TimeMs service = params().service_time(kib(64), 10, false);
  // Second request waits behind the first.
  EXPECT_NEAR(report.responses[1], (service - 1.0) + service, 1e-9);
}

TEST(OpenLoop, IndependentDisksOverlapInTime) {
  trace::Trace t;
  t.total_disks = 2;
  t.requests.push_back(make_request(0.0, 0, 0, kib(64)));
  t.requests.push_back(make_request(0.0, 1, 0, kib(64)));
  t.compute_total_ms = 0.0;
  policy::BasePolicy open_policy;
  const sim::SimReport open = sim::simulate(
      t, params(), open_policy, sim::ReplayMode::kOpenLoop);
  policy::BasePolicy closed_policy;
  const sim::SimReport closed = sim::simulate(t, params(), closed_policy);
  // Open loop: both disks serve concurrently -> completion is one service
  // time; closed loop serializes the blocking application.
  EXPECT_LT(open.execution_ms, closed.execution_ms - 1.0);
}

TEST(OpenLoop, EnergyAccountingStillExhaustive) {
  trace::Trace t;
  t.total_disks = 2;
  t.requests.push_back(make_request(5.0, 0, 0, kib(64)));
  t.requests.push_back(make_request(5.0, 1, 0, kib(64)));
  t.compute_total_ms = 100.0;
  policy::BasePolicy policy;
  const sim::SimReport report =
      sim::simulate(t, params(), policy, sim::ReplayMode::kOpenLoop);
  for (const auto& d : report.disks) {
    EXPECT_NEAR(d.breakdown.total_ms(), report.execution_ms, 1e-6);
  }
}

// ---- trace text I/O --------------------------------------------------------

TEST(TraceTextIo, RoundTripsExactly) {
  ir::ProgramBuilder pb("p");
  const ir::ArrayId u = pb.array("U", {8 * 8192});
  pb.nest("r").loop("i", 0, 8 * 8192).stmt(50.0).read(u, {ir::sym("i")})
      .done();
  pb.nest("w").loop("i", 0, 8 * 8192).stmt(50.0).write(u, {ir::sym("i")})
      .done();
  const ir::Program p = pb.build();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  trace::GeneratorOptions gen;
  gen.cache_bytes = 0;
  trace::TraceGenerator generator(p, table, gen);
  const trace::Trace original = generator.generate();

  std::stringstream buffer;
  trace::write_trace_text(original, buffer);
  const trace::Trace parsed = trace::read_trace_text(buffer);

  EXPECT_EQ(parsed.total_disks, original.total_disks);
  EXPECT_NEAR(parsed.compute_total_ms, original.compute_total_ms, 1e-6);
  ASSERT_EQ(parsed.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < parsed.requests.size(); ++i) {
    EXPECT_EQ(parsed.requests[i].disk, original.requests[i].disk);
    EXPECT_EQ(parsed.requests[i].start_sector,
              original.requests[i].start_sector);
    EXPECT_EQ(parsed.requests[i].size_bytes,
              original.requests[i].size_bytes);
    EXPECT_EQ(parsed.requests[i].kind, original.requests[i].kind);
    EXPECT_NEAR(parsed.requests[i].arrival_ms,
                original.requests[i].arrival_ms, 1e-6);
  }
}

TEST(TraceTextIo, HeaderlessFileInfersShape) {
  std::stringstream buffer;
  buffer << "1.5 0 100 65536 R\n2.5 3 200 4096 W\n";
  const trace::Trace parsed = trace::read_trace_text(buffer);
  EXPECT_EQ(parsed.total_disks, 4);
  ASSERT_EQ(parsed.requests.size(), 2u);
  EXPECT_EQ(parsed.requests[1].kind, ir::AccessKind::kWrite);
  EXPECT_NEAR(parsed.compute_total_ms, 2.5, 1e-9);
}

TEST(TraceTextIo, MalformedLinesRejected) {
  {
    std::stringstream buffer;
    buffer << "not a trace line\n";
    EXPECT_THROW(trace::read_trace_text(buffer), Error);
  }
  {
    std::stringstream buffer;
    buffer << "1.0 0 0 65536 X\n";  // unknown type
    EXPECT_THROW(trace::read_trace_text(buffer), Error);
  }
  {
    std::stringstream buffer;
    buffer << "2.0 0 0 65536 R\n1.0 0 0 65536 R\n";  // unsorted
    EXPECT_THROW(trace::read_trace_text(buffer), Error);
  }
}

TEST(TraceTextIo, ParsedTraceReplaysOpenLoop) {
  std::stringstream buffer;
  buffer << "# sdpm-trace v1 disks=2 compute_ms=50\n";
  buffer << "0.0 0 0 65536 R\n10.0 1 0 65536 R\n";
  const trace::Trace parsed = trace::read_trace_text(buffer);
  policy::BasePolicy policy;
  const sim::SimReport report =
      sim::simulate(parsed, params(), policy, sim::ReplayMode::kOpenLoop);
  EXPECT_EQ(report.requests, 2);
  EXPECT_NEAR(report.execution_ms, 50.0, 1e-9);
}

}  // namespace
}  // namespace sdpm
