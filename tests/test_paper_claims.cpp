// The paper's concluding claims (§7), asserted end-to-end.
//
// "Based on our experimental evaluation, we conclude that: ..." — each
// bullet of the conclusion, measured on this reproduction with the default
// configuration.  If any of these fail, the reproduction no longer supports
// the paper's argument.
#include <gtest/gtest.h>

#include "analysis/verify_schedule.h"
#include "core/schedule.h"
#include "experiments/runner.h"
#include "trace/dap.h"

namespace sdpm {
namespace {

// Claim 1: "For array-intensive scientific applications, the compiler can
// extract disk access pattern, and use it for placing disks into the most
// suitable low-power modes.  In principle, this approach can be used with
// both TPM and DRPM."
TEST(PaperClaims, CompilerExtractsDapAndSchedulesBothModes) {
  for (const std::string& name : workloads::benchmark_names()) {
    const workloads::Benchmark b = workloads::make_benchmark(name);
    const experiments::ExperimentConfig config;
    const layout::LayoutTable table(b.program, config.striping,
                                    config.total_disks);
    // The DAP exists and covers every disk.
    const auto dap =
        trace::DiskAccessPattern::analyze(b.program, table, config.gen);
    ASSERT_EQ(dap.disk_count(), config.total_disks);

    // Both call families schedule without error and verify statically.
    for (const core::PowerMode mode :
         {core::PowerMode::kTpm, core::PowerMode::kDrpm}) {
      core::SchedulerOptions so;
      so.mode = mode;
      so.access = config.gen;
      const core::ScheduleResult result =
          core::schedule_power_calls(b.program, table, config.disk, so);
      EXPECT_TRUE(analysis::check_schedule(result, config.total_disks,
                                           config.disk)
                      .empty())
          << name;
    }
  }
}

// Claim 2: "The compiler-directed proactive approach to disk power
// management is successful in improving the behavior of the DRPM based
// scheme.  On average, it brings an additional 18% energy savings over the
// hardware-based DRPM."
TEST(PaperClaims, CmdrpmBeatsReactiveDrpmOnAverage) {
  double drpm_sum = 0, cmdrpm_sum = 0, cmdrpm_time_sum = 0;
  int count = 0;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    drpm_sum += runner.run(experiments::Scheme::kDrpm).normalized_energy;
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
    cmdrpm_sum += cmdrpm.normalized_energy;
    cmdrpm_time_sum += cmdrpm.normalized_time;
    ++count;
  }
  const double drpm_avg = drpm_sum / count;
  const double cmdrpm_avg = cmdrpm_sum / count;
  // Paper: 26% -> 46% savings (an additional ~18 points).  Our substrate:
  // the compiler scheme must beat reactive DRPM by a clear margin...
  EXPECT_LT(cmdrpm_avg, drpm_avg - 0.05);
  // ...while erasing DRPM's double-digit performance penalty.
  EXPECT_LT(cmdrpm_time_sum / count, 1.02);
}

// Claim 3: "loop distribution and loop tiling ... can make TPM a serious
// alternative for array-based scientific codes."
TEST(PaperClaims, TransformationsMakeTpmViable) {
  // Untransformed, CMTPM finds nothing anywhere...
  double untransformed_sum = 0;
  // ...and with the better of LF+DL / TL+DL it must save for five of the
  // six benchmarks' DRPM mode and for the fissionable four under TPM.
  int tpm_winners = 0;
  int count = 0;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig plain;
    experiments::Runner plain_runner(b, plain);
    untransformed_sum +=
        plain_runner.run(experiments::Scheme::kCmtpm).normalized_energy;
    const double base_energy = plain_runner.base_report().total_energy;

    double best = 1.0;
    for (const auto t :
         {core::Transformation::kLFDL, core::Transformation::kTLDL}) {
      experiments::ExperimentConfig config;
      config.transform = t;
      experiments::Runner runner(b, config);
      best = std::min(best, runner.run(experiments::Scheme::kCmtpm).energy_j /
                                base_energy);
    }
    if (best < 0.95) ++tpm_winners;
    ++count;
  }
  EXPECT_NEAR(untransformed_sum / count, 1.0, 1e-6);
  // swim, mgrid, applu, mesa (the fissionable four) gain under CMTPM.
  EXPECT_GE(tpm_winners, 4);
}

// §6.2: "five out of our six benchmark codes can achieve further energy
// savings from one of the LF+DL and TL+DL versions" (all but galgel).
TEST(PaperClaims, FiveOfSixBenefitFromTransformations) {
  int winners = 0;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig plain;
    experiments::Runner plain_runner(b, plain);
    const double base_energy = plain_runner.base_report().total_energy;
    const double untransformed =
        plain_runner.run(experiments::Scheme::kCmdrpm).energy_j / base_energy;

    double best = 1.0;
    for (const auto t :
         {core::Transformation::kLFDL, core::Transformation::kTLDL}) {
      experiments::ExperimentConfig config;
      config.transform = t;
      experiments::Runner runner(b, config);
      best = std::min(best,
                      runner.run(experiments::Scheme::kCmdrpm).energy_j /
                          base_energy);
    }
    if (best < untransformed - 0.01) {
      ++winners;
    } else {
      EXPECT_EQ(b.name, "galgel") << "only galgel may fail to benefit";
    }
  }
  EXPECT_EQ(winners, 5);
}

}  // namespace
}  // namespace sdpm
