// Property-based pipeline fuzzing over random synthetic programs.
//
// For a sweep of seeds, the full stack — trace generation, DAP analysis,
// every policy, the scheduler, and the code transformations — must uphold
// its invariants on arbitrary valid programs, not just the curated
// benchmarks.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/fission.h"
#include "core/tiling.h"
#include "experiments/runner.h"
#include "policy/base.h"
#include "policy/tpm.h"
#include "sim/faults.h"
#include "sim/invariants.h"
#include "sim/simulator.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "workloads/synthetic.h"

namespace sdpm {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  workloads::Benchmark benchmark() const {
    workloads::SyntheticOptions options;
    options.seed = GetParam();
    workloads::Benchmark b;
    b.name = "synthetic";
    b.program = workloads::make_synthetic(options);
    return b;
  }

  experiments::ExperimentConfig config() const {
    experiments::ExperimentConfig c;
    c.total_disks = 4;
    c.striping = layout::Striping{0, 4, kib(64)};
    c.gen.cache_bytes = kib(512);  // small cache: plenty of disk traffic
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

TEST_P(FuzzTest, ProgramIsValidAndDeterministic) {
  const workloads::Benchmark a = benchmark();
  const workloads::Benchmark b = benchmark();
  a.program.validate();
  EXPECT_EQ(a.program.to_string(), b.program.to_string());
}

TEST_P(FuzzTest, TraceInvariants) {
  const workloads::Benchmark bench = benchmark();
  const experiments::ExperimentConfig c = config();
  const layout::LayoutTable table(bench.program, c.striping, c.total_disks);
  trace::TraceGenerator generator(bench.program, table, c.gen);
  const trace::Trace t = generator.generate();
  TimeMs prev = -1;
  for (const trace::Request& r : t.requests) {
    ASSERT_GE(r.arrival_ms, prev);
    ASSERT_GE(r.disk, 0);
    ASSERT_LT(r.disk, c.total_disks);
    ASSERT_GT(r.size_bytes, 0);
    prev = r.arrival_ms;
  }
  EXPECT_GE(t.compute_total_ms, prev);
}

TEST_P(FuzzTest, DapPartitionsIterationSpace) {
  const workloads::Benchmark bench = benchmark();
  const experiments::ExperimentConfig c = config();
  const layout::LayoutTable table(bench.program, c.striping, c.total_disks);
  const auto dap =
      trace::DiskAccessPattern::analyze(bench.program, table, c.gen);
  for (int d = 0; d < dap.disk_count(); ++d) {
    EXPECT_EQ(dap.active_iterations(d).total_length() +
                  dap.idle_periods(d).total_length(),
              dap.space().total());
  }
}

TEST_P(FuzzTest, EnergyConservation) {
  workloads::Benchmark bench = benchmark();
  experiments::Runner runner(bench, config());
  const sim::SimReport& base = runner.base_report();
  sim::check_invariants(base, config().disk);
}

TEST_P(FuzzTest, SchemeOrderings) {
  workloads::Benchmark bench = benchmark();
  experiments::Runner runner(bench, config());
  const auto base = runner.run(experiments::Scheme::kBase);
  const auto itpm = runner.run(experiments::Scheme::kItpm);
  const auto idrpm = runner.run(experiments::Scheme::kIdrpm);
  const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
  // Oracles never lose to Base; IDRPM never loses to ITPM's standby-only
  // playbook... (ITPM <= Base always; IDRPM <= Base always.)
  EXPECT_LE(itpm.energy_j, base.energy_j + 1e-6);
  EXPECT_LE(idrpm.energy_j, base.energy_j + 1e-6);
  // The compiler-managed scheme must not blow up execution time.
  EXPECT_LT(cmdrpm.normalized_time, 1.25);
  EXPECT_GT(cmdrpm.energy_j, 0.0);
}

TEST_P(FuzzTest, FissionPreservesWork) {
  const workloads::Benchmark bench = benchmark();
  core::FissionOptions options;
  options.total_disks = 4;
  options.base_striping = layout::Striping{0, 4, kib(64)};
  const core::FissionResult result =
      core::apply_loop_fission(bench.program, options);
  result.program.validate();
  EXPECT_DOUBLE_EQ(result.program.total_cycles(),
                   bench.program.total_cycles());
  EXPECT_EQ(result.program.total_data_bytes(),
            bench.program.total_data_bytes());
}

TEST_P(FuzzTest, TilingKeepsIterationCount) {
  const workloads::Benchmark bench = benchmark();
  core::TilingOptions options;
  options.total_disks = 4;
  options.base_striping = layout::Striping{0, 4, kib(64)};
  options.access.cache_bytes = kib(512);
  const core::TilingResult result =
      core::apply_loop_tiling(bench.program, options);
  result.program.validate();
  std::int64_t before = 0, after = 0;
  for (const auto& nest : bench.program.nests) {
    before += nest.iteration_count();
  }
  for (const auto& nest : result.program.nests) {
    after += nest.iteration_count();
  }
  EXPECT_EQ(before, after);
}

TEST_P(FuzzTest, FaultedRunsAreDeterministicAndInvariant) {
  // Arbitrary programs under arbitrary fault mixes: the same seed must
  // yield the same report twice, and every run must conserve energy.
  const workloads::Benchmark bench = benchmark();
  const experiments::ExperimentConfig c = config();
  const layout::LayoutTable table(bench.program, c.striping, c.total_disks);
  trace::TraceGenerator generator(bench.program, table, c.gen);
  const trace::Trace t = generator.generate();

  sim::FaultConfig faults;
  faults.seed = GetParam();
  faults.spin_up_failure_prob = 0.2;
  faults.media_error_prob = 0.05;
  faults.service_jitter = 0.15;
  faults.dropped_directive_prob = 0.1;

  // An aggressive threshold forces spin-downs, hence spin-up fault draws.
  policy::TpmPolicy first_policy(50.0);
  policy::TpmPolicy second_policy(50.0);
  const sim::SimOptions options{.mode = sim::ReplayMode::kClosedLoop,
                                .faults = faults,
                                .capture_responses = true};
  const sim::SimReport first =
      sim::simulate(t, c.disk, first_policy, options);
  const sim::SimReport second =
      sim::simulate(t, c.disk, second_policy, options);

  sim::check_invariants(first, c.disk);
  EXPECT_EQ(first.total_energy, second.total_energy);
  EXPECT_EQ(first.execution_ms, second.execution_ms);
  EXPECT_EQ(first.spin_up_retries(), second.spin_up_retries());
  EXPECT_EQ(first.media_errors(), second.media_errors());
  EXPECT_EQ(first.dropped_directives(), second.dropped_directives());
  ASSERT_EQ(first.responses.size(), second.responses.size());
  for (std::size_t i = 0; i < first.responses.size(); ++i) {
    ASSERT_EQ(first.responses[i], second.responses[i]);
  }
}

TEST_P(FuzzTest, TransformedConfigurationsStillConserveEnergy) {
  for (const auto transform :
       {core::Transformation::kLFDL, core::Transformation::kTLDL}) {
    workloads::Benchmark bench = benchmark();
    experiments::ExperimentConfig c = config();
    c.transform = transform;
    experiments::Runner runner(bench, c);
    const sim::SimReport& base = runner.base_report();
    Joules sum = 0;
    for (const sim::DiskReport& d : base.disks) {
      sum += d.breakdown.total_j();
    }
    EXPECT_NEAR(sum, base.total_energy, 1e-6) << core::to_string(transform);
  }
}

}  // namespace
}  // namespace sdpm
