// Mechanical loop transformations: semantics preservation.
//
// The key property: strip-mining, tiling, and fission must preserve the
// multiset of element accesses a nest performs (order may change).  We
// verify by brute-force enumeration of every iteration.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "ir/builder.h"
#include "ir/transform.h"
#include "util/error.h"

namespace sdpm::ir {
namespace {

using Access = std::tuple<ArrayId, std::int64_t, AccessKind>;

std::vector<Access> enumerate_accesses(const Program& program,
                                       const LoopNest& nest) {
  std::vector<Access> out;
  for (std::int64_t flat = 0; flat < nest.iteration_count(); ++flat) {
    const std::vector<std::int64_t> iters = nest.iteration_at(flat);
    for (const Statement& stmt : nest.body) {
      for (const ArrayRef& ref : stmt.refs) {
        std::vector<std::int64_t> index;
        index.reserve(ref.subscripts.size());
        for (const AffineExpr& sub : ref.subscripts) {
          index.push_back(sub.eval(iters));
        }
        out.emplace_back(ref.array,
                         program.array(ref.array).linear_index(index),
                         ref.kind);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Program make_test_program() {
  ProgramBuilder pb("t");
  const ArrayId u = pb.array("U", {12, 8});
  const ArrayId v = pb.array("V", {12, 8});
  const ArrayId w = pb.array("W", {8, 16});
  pb.nest("n")
      .loop("i", 0, 12)
      .loop("j", 0, 8)
      .stmt(3.0)
      .read(u, {sym("i"), sym("j")})
      .write(v, {sym("i"), sym("j")})
      .stmt(2.0)
      .read(w, {sym("j"), sym("i") + 4})  // transposed, shifted access
      .done();
  return pb.build();
}

Program make_simple_program() {
  ProgramBuilder pb("t");
  const ArrayId u = pb.array("U", {12, 8});
  const ArrayId v = pb.array("V", {8, 12});
  pb.nest("n")
      .loop("i", 0, 12)
      .loop("j", 0, 8)
      .stmt(3.0)
      .read(u, {sym("i"), sym("j")})
      .write(v, {sym("j"), sym("i")})  // transposed access
      .done();
  return pb.build();
}

TEST(StripMine, PreservesAccessesAndCount) {
  const Program p = make_simple_program();
  const LoopNest& original = p.nests[0];
  for (const int loop : {0, 1}) {
    for (const std::int64_t factor : {2, 4}) {
      const LoopNest mined = strip_mine(original, loop, factor);
      EXPECT_EQ(mined.depth(), 3);
      EXPECT_EQ(mined.iteration_count(), original.iteration_count());
      EXPECT_EQ(enumerate_accesses(p, mined), enumerate_accesses(p, original))
          << "loop " << loop << " factor " << factor;
    }
  }
}

TEST(StripMine, RejectsNonDividingFactor) {
  const Program p = make_simple_program();
  EXPECT_THROW(strip_mine(p.nests[0], 0, 5), Error);
}

TEST(StripMine, RejectsBadLoopIndex) {
  const Program p = make_simple_program();
  EXPECT_THROW(strip_mine(p.nests[0], 2, 2), Error);
}

TEST(StripMine, NonZeroLowerBound) {
  ProgramBuilder pb("t");
  const ArrayId u = pb.array("U", {20});
  pb.nest("n").loop("i", 4, 16).stmt(1.0).read(u, {sym("i")}).done();
  const Program p = pb.build();
  const LoopNest mined = strip_mine(p.nests[0], 0, 3);
  EXPECT_EQ(enumerate_accesses(p, mined),
            enumerate_accesses(p, p.nests[0]));
}

TEST(Tile, PreservesAccesses) {
  const Program p = make_simple_program();
  const LoopNest tiled = tile(p.nests[0], {4, 2});
  EXPECT_EQ(tiled.depth(), 4);
  EXPECT_EQ(tiled.iteration_count(), p.nests[0].iteration_count());
  EXPECT_EQ(enumerate_accesses(p, tiled),
            enumerate_accesses(p, p.nests[0]));
}

TEST(Tile, TileIteratorsAreOuter) {
  const Program p = make_simple_program();
  const LoopNest tiled = tile(p.nests[0], {4, 2});
  EXPECT_EQ(tiled.loops[0].var, "ii");
  EXPECT_EQ(tiled.loops[1].var, "jj");
  EXPECT_EQ(tiled.loops[0].trip_count(), 3);
  EXPECT_EQ(tiled.loops[1].trip_count(), 4);
  EXPECT_EQ(tiled.loops[2].trip_count(), 4);
  EXPECT_EQ(tiled.loops[3].trip_count(), 2);
}

TEST(Tile, InnerPairWithOuterTimeLoop) {
  ProgramBuilder pb("t");
  const ArrayId u = pb.array("U", {12, 8});
  pb.nest("n")
      .loop("t", 0, 3)
      .loop("i", 0, 12)
      .loop("j", 0, 8)
      .stmt(1.0)
      .read(u, {sym("i"), sym("j")})
      .done();
  const Program p = pb.build();
  const LoopNest tiled = tile(p.nests[0], {4, 4}, /*first_loop=*/1);
  EXPECT_EQ(tiled.depth(), 5);
  EXPECT_EQ(tiled.loops[0].var, "t");
  EXPECT_EQ(enumerate_accesses(p, tiled),
            enumerate_accesses(p, p.nests[0]));
}

TEST(Tile, RejectsNonDividingSizes) {
  const Program p = make_simple_program();
  EXPECT_THROW(tile(p.nests[0], {5, 2}), Error);
}

TEST(Fission, SplitsStatementsIntoLoops) {
  const Program p = make_test_program();
  const std::vector<LoopNest> parts = fission(p.nests[0], {{0}, {1}});
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].body.size(), 1u);
  EXPECT_EQ(parts[1].body.size(), 1u);
  EXPECT_EQ(parts[0].loops.size(), p.nests[0].loops.size());

  // Union of accesses equals original.
  std::vector<Access> combined = enumerate_accesses(p, parts[0]);
  const std::vector<Access> second = enumerate_accesses(p, parts[1]);
  combined.insert(combined.end(), second.begin(), second.end());
  std::sort(combined.begin(), combined.end());
  EXPECT_EQ(combined, enumerate_accesses(p, p.nests[0]));
}

TEST(Fission, PreservesStatementCosts) {
  const Program p = make_test_program();
  const std::vector<LoopNest> parts = fission(p.nests[0], {{0}, {1}});
  EXPECT_DOUBLE_EQ(parts[0].cycles_per_iteration() +
                       parts[1].cycles_per_iteration(),
                   p.nests[0].cycles_per_iteration());
}

TEST(Fission, RejectsNonPartition) {
  const Program p = make_test_program();
  EXPECT_THROW(fission(p.nests[0], {{0}}), Error);          // missing stmt
  EXPECT_THROW(fission(p.nests[0], {{0, 1}, {1}}), Error);  // duplicated
  EXPECT_THROW(fission(p.nests[0], {{0}, {2}}), Error);     // out of range
}

TEST(Interchange, PreservesAccessMultiset) {
  const Program p = make_simple_program();
  const LoopNest swapped = interchange(p.nests[0], 0, 1);
  EXPECT_EQ(swapped.loops[0].var, "j");
  EXPECT_EQ(swapped.loops[1].var, "i");
  EXPECT_EQ(enumerate_accesses(p, swapped),
            enumerate_accesses(p, p.nests[0]));
}

TEST(Interchange, ChangesTraversalOrder) {
  // U[i][j] row-major: after interchange the innermost loop walks i, i.e.
  // the non-contiguous dimension — the subscript/loop association moved.
  const Program p = make_simple_program();
  const LoopNest swapped = interchange(p.nests[0], 0, 1);
  const ir::AffineExpr& sub0 = swapped.body[0].refs[0].subscripts[0];
  // Subscript 0 of U is "i", which is now loop 1 (inner).
  EXPECT_EQ(sub0.coef(0), 0);
  EXPECT_EQ(sub0.coef(1), 1);
}

TEST(Interchange, SelfInterchangeIsIdentity) {
  const Program p = make_simple_program();
  const LoopNest same = interchange(p.nests[0], 1, 1);
  EXPECT_EQ(enumerate_accesses(p, same), enumerate_accesses(p, p.nests[0]));
  EXPECT_EQ(same.loops[0].var, "i");
}

TEST(Interchange, RejectsBadIndices) {
  const Program p = make_simple_program();
  EXPECT_THROW(interchange(p.nests[0], 0, 2), Error);
}

TEST(Fuse, ConcatenatesBodies) {
  const Program p = make_test_program();
  const std::vector<LoopNest> parts = fission(p.nests[0], {{0}, {1}});
  const LoopNest refused = fuse(parts[0], parts[1]);
  EXPECT_EQ(refused.body.size(), 2u);
  EXPECT_EQ(enumerate_accesses(p, refused),
            enumerate_accesses(p, p.nests[0]));
  EXPECT_DOUBLE_EQ(refused.cycles_per_iteration(),
                   p.nests[0].cycles_per_iteration());
}

TEST(Fuse, RejectsMismatchedBounds) {
  ProgramBuilder pb("t");
  const ArrayId u = pb.array("U", {32});
  pb.nest("a").loop("i", 0, 16).stmt(1.0).read(u, {sym("i")}).done();
  pb.nest("b").loop("i", 0, 32).stmt(1.0).read(u, {sym("i")}).done();
  const Program p = pb.build();
  EXPECT_THROW(fuse(p.nests[0], p.nests[1]), Error);
}

TEST(TransposeLayout, FlipsStorageOrder) {
  Program p = make_simple_program();
  EXPECT_EQ(p.arrays[0].layout, StorageLayout::kRowMajor);
  transpose_layout(p, 0);
  EXPECT_EQ(p.arrays[0].layout, StorageLayout::kColMajor);
  transpose_layout(p, 0);
  EXPECT_EQ(p.arrays[0].layout, StorageLayout::kRowMajor);
}

TEST(CoupledComponents, SingleStatementSingleComponent) {
  const Program p = make_simple_program();
  const auto components = coupled_statement_components(p.nests[0]);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], (std::vector<int>{0}));
}

TEST(CoupledComponents, IndependentStatementsSeparate) {
  ProgramBuilder pb("t");
  const ArrayId a = pb.array("A", {8});
  const ArrayId b = pb.array("B", {8});
  pb.nest("n")
      .loop("i", 0, 8)
      .stmt(1.0)
      .read(a, {sym("i")})
      .stmt(1.0)
      .read(b, {sym("i")})
      .done();
  const Program p = pb.build();
  const auto components = coupled_statement_components(p.nests[0]);
  EXPECT_EQ(components.size(), 2u);
}

TEST(CoupledComponents, TransitiveCoupling) {
  ProgramBuilder pb("t");
  const ArrayId a = pb.array("A", {8});
  const ArrayId b = pb.array("B", {8});
  const ArrayId c = pb.array("C", {8});
  pb.nest("n")
      .loop("i", 0, 8)
      .stmt(1.0)
      .read(a, {sym("i")})
      .read(b, {sym("i")})
      .stmt(1.0)
      .read(c, {sym("i")})
      .stmt(1.0)
      .read(b, {sym("i")})
      .read(c, {sym("i")})
      .done();
  const Program p = pb.build();
  // Statement 3 couples B and C, so all three statements end up together.
  const auto components = coupled_statement_components(p.nests[0]);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 3u);
}

}  // namespace
}  // namespace sdpm::ir
