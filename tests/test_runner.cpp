// Experiment runner: the paper's qualitative scheme orderings (Fig. 3/4)
// must hold for every benchmark under the default configuration.
#include <gtest/gtest.h>

#include "experiments/runner.h"

namespace sdpm::experiments {
namespace {

// Swim is the paper's sensitivity subject; use it for the detailed checks
// and run the cheaper orderings across all six.
class SchemeOrderingTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSix, SchemeOrderingTest,
                         ::testing::ValuesIn(workloads::benchmark_names()),
                         [](const auto& param_info) { return param_info.param; });

TEST_P(SchemeOrderingTest, PaperFigure3And4Shape) {
  workloads::Benchmark b = workloads::make_benchmark(GetParam());
  ExperimentConfig config;
  Runner runner(b, config);

  const SchemeResult base = runner.run(Scheme::kBase);
  const SchemeResult tpm = runner.run(Scheme::kTpm);
  const SchemeResult itpm = runner.run(Scheme::kItpm);
  const SchemeResult drpm = runner.run(Scheme::kDrpm);
  const SchemeResult idrpm = runner.run(Scheme::kIdrpm);
  const SchemeResult cmtpm = runner.run(Scheme::kCmtpm);
  const SchemeResult cmdrpm = runner.run(Scheme::kCmdrpm);

  // Base normalizes to 1.
  EXPECT_DOUBLE_EQ(base.normalized_energy, 1.0);
  EXPECT_DOUBLE_EQ(base.normalized_time, 1.0);

  // "the TPM version (ideal or otherwise) does not achieve any energy
  // savings" — idle periods are below the break-even threshold.
  EXPECT_NEAR(tpm.normalized_energy, 1.0, 1e-6);
  EXPECT_NEAR(itpm.normalized_energy, 1.0, 1e-6);
  EXPECT_NEAR(tpm.normalized_time, 1.0, 1e-6);
  EXPECT_NEAR(cmtpm.normalized_energy, 1.0, 1e-6);

  // DRPM saves energy but pays execution time.
  EXPECT_LT(drpm.normalized_energy, 0.95);
  EXPECT_GT(drpm.normalized_time, 1.01);

  // The oracle dominates every implementable DRPM scheme.
  EXPECT_LE(idrpm.energy_j, drpm.energy_j + 1e-6);
  EXPECT_LE(idrpm.energy_j, cmdrpm.energy_j + 1e-6);
  EXPECT_DOUBLE_EQ(idrpm.normalized_time, 1.0);

  // CMDRPM: close to the oracle's savings (within 15 percentage points)...
  EXPECT_LT(cmdrpm.normalized_energy, 1.0);
  EXPECT_LT(cmdrpm.normalized_energy - idrpm.normalized_energy, 0.15);
  // ...with (near) no performance penalty, unlike reactive DRPM.
  EXPECT_LT(cmdrpm.normalized_time, 1.05);
  EXPECT_LT(cmdrpm.normalized_time, drpm.normalized_time);

  // Misprediction statistics only exist for the compiler-managed schemes.
  EXPECT_TRUE(cmdrpm.mispredict_pct.has_value());
  EXPECT_FALSE(drpm.mispredict_pct.has_value());
  EXPECT_GE(*cmdrpm.mispredict_pct, 0.0);
  EXPECT_LE(*cmdrpm.mispredict_pct, 60.0);

  // CM schemes actually inserted calls.
  EXPECT_GT(cmdrpm.power_calls, 0);
}

TEST(Runner, RunAllCoversSevenSchemes) {
  workloads::Benchmark b = workloads::make_galgel();
  ExperimentConfig config;
  Runner runner(b, config);
  const auto results = runner.run_all();
  ASSERT_EQ(results.size(), 7u);
  EXPECT_EQ(results[0].scheme, Scheme::kBase);
  EXPECT_EQ(results[6].scheme, Scheme::kCmdrpm);
}

TEST(Runner, SchemeNames) {
  EXPECT_STREQ(to_string(Scheme::kBase), "Base");
  EXPECT_STREQ(to_string(Scheme::kItpm), "ITPM");
  EXPECT_STREQ(to_string(Scheme::kCmdrpm), "CMDRPM");
  EXPECT_EQ(all_schemes().size(), 7u);
}

TEST(Runner, NoNoiseMeansNoMisprediction) {
  workloads::Benchmark b = workloads::make_galgel();
  ExperimentConfig config;
  config.actual_noise = trace::CycleNoise::none();
  config.profile_noise = trace::CycleNoise::none();
  Runner runner(b, config);
  const SchemeResult cmdrpm = runner.run(Scheme::kCmdrpm);
  EXPECT_DOUBLE_EQ(*cmdrpm.mispredict_pct, 0.0);
  // And with perfect estimates the compiler tracks the oracle tightly.
  const SchemeResult idrpm = runner.run(Scheme::kIdrpm);
  EXPECT_LT(cmdrpm.normalized_energy - idrpm.normalized_energy, 0.08);
  EXPECT_LT(cmdrpm.normalized_time, 1.01);
}

TEST(Runner, PreactivationAblation) {
  // Without pre-activation the compiler still saves energy, but requests
  // catch disks mid-transition: execution time suffers relative to the
  // pre-activated schedule.
  workloads::Benchmark b = workloads::make_swim();
  ExperimentConfig on;
  Runner runner_on(b, on);
  ExperimentConfig off;
  off.preactivate = false;
  Runner runner_off(b, off);
  const SchemeResult with = runner_on.run(Scheme::kCmdrpm);
  const SchemeResult without = runner_off.run(Scheme::kCmdrpm);
  EXPECT_GT(without.normalized_time, with.normalized_time);
}

TEST(Runner, MoreDisksMoreSavings) {
  // Fig. 7's trend: normalized CMDRPM energy improves with the stripe
  // factor.
  workloads::Benchmark b = workloads::make_swim();
  double prev = 1.0;
  for (const int disks : {4, 8, 16}) {
    ExperimentConfig config;
    config.total_disks = disks;
    config.striping.stripe_factor = disks;
    Runner runner(b, config);
    const double now = runner.run(Scheme::kCmdrpm).normalized_energy;
    EXPECT_LT(now, prev) << disks;
    prev = now;
  }
}

TEST(Runner, TransformedConfigurationsRun) {
  workloads::Benchmark b = workloads::make_mgrid();
  for (const auto t : {core::Transformation::kLF, core::Transformation::kLFDL,
                       core::Transformation::kTL,
                       core::Transformation::kTLDL}) {
    ExperimentConfig config;
    config.transform = t;
    Runner runner(b, config);
    const SchemeResult r = runner.run(Scheme::kCmdrpm);
    EXPECT_GT(r.energy_j, 0.0) << core::to_string(t);
  }
}

TEST(Runner, LfDlMakesTpmViableForMgrid) {
  // Fig. 13's headline: the transformations create spin-down opportunities
  // that CMTPM exploits.
  workloads::Benchmark b = workloads::make_mgrid();
  ExperimentConfig plain;
  Runner plain_runner(b, plain);
  const double untransformed =
      plain_runner.run(Scheme::kCmtpm).energy_j;
  ExperimentConfig lfdl;
  lfdl.transform = core::Transformation::kLFDL;
  Runner lfdl_runner(b, lfdl);
  const double transformed = lfdl_runner.run(Scheme::kCmtpm).energy_j;
  EXPECT_LT(transformed, 0.8 * untransformed);
}

TEST(Runner, GalgelUnaffectedByTransformations) {
  workloads::Benchmark b = workloads::make_galgel();
  ExperimentConfig plain;
  Runner plain_runner(b, plain);
  const double base_energy = plain_runner.base_report().total_energy;
  for (const auto t :
       {core::Transformation::kLFDL, core::Transformation::kTLDL}) {
    ExperimentConfig config;
    config.transform = t;
    Runner runner(b, config);
    // Energy within 2% of the untransformed base run.
    EXPECT_NEAR(runner.base_report().total_energy, base_energy,
                0.02 * base_energy)
        << core::to_string(t);
  }
}

}  // namespace
}  // namespace sdpm::experiments
