// Loop fission (Fig. 11): array grouping, disk allocation, consolidation.
#include <gtest/gtest.h>

#include "core/fission.h"
#include "ir/builder.h"

namespace sdpm::core {
namespace {

using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

// The paper's Figure 9(a): three loop nests accessing ten arrays U1..U10.
// Expected groups: {U1,U2,U5}, {U3,U4,U8}, {U6,U7}, {U9,U10} — "U2 and U5
// belong to the same group, as they are coupled via array U1".
struct Figure9 {
  ir::Program program;
  std::array<ArrayId, 10> u{};

  Figure9() {
    ProgramBuilder pb("figure9");
    for (int k = 0; k < 10; ++k) {
      u[static_cast<std::size_t>(k)] =
          pb.array("U" + std::to_string(k + 1), {1024});
    }
    // nest1: s1 couples U1,U2; s2 couples U3,U4; s3 couples U6,U7.
    pb.nest("nest1")
        .loop("i", 0, 1024)
        .stmt(1.0)
        .read(u[0], {sym("i")})
        .write(u[1], {sym("i")})
        .stmt(1.0)
        .read(u[2], {sym("i")})
        .write(u[3], {sym("i")})
        .stmt(1.0)
        .read(u[5], {sym("i")})
        .write(u[6], {sym("i")})
        .done();
    // nest2: s1 couples U1,U5 (links U5 into group 1); s2 couples U9,U10.
    pb.nest("nest2")
        .loop("i", 0, 1024)
        .stmt(1.0)
        .read(u[0], {sym("i")})
        .write(u[4], {sym("i")})
        .stmt(1.0)
        .read(u[8], {sym("i")})
        .write(u[9], {sym("i")})
        .done();
    // nest3: s1 couples U3,U8 (links U8 into group 2).
    pb.nest("nest3")
        .loop("i", 0, 1024)
        .stmt(1.0)
        .read(u[2], {sym("i")})
        .write(u[7], {sym("i")})
        .stmt(1.0)
        .read(u[5], {sym("i")})
        .done();
    program = pb.build();
  }
};

TEST(ArrayGroups, PaperFigure9Groups) {
  const Figure9 fig;
  const auto groups = array_groups(fig.program);
  ASSERT_EQ(groups.size(), 4u);
  // Group membership by array id (U1=0, ...): order within group is by id.
  EXPECT_EQ(groups[0], (std::vector<ArrayId>{0, 1, 4}));  // U1,U2,U5
  EXPECT_EQ(groups[1], (std::vector<ArrayId>{2, 3, 7}));  // U3,U4,U8
  EXPECT_EQ(groups[2], (std::vector<ArrayId>{5, 6}));     // U6,U7
  EXPECT_EQ(groups[3], (std::vector<ArrayId>{8, 9}));     // U9,U10
}

TEST(ArrayGroups, UnaccessedArraysExcluded) {
  ProgramBuilder pb("p");
  pb.array("DEAD", {8});
  const ArrayId live = pb.array("LIVE", {8});
  pb.nest("n").loop("i", 0, 8).stmt(1.0).read(live, {sym("i")}).done();
  const auto groups = array_groups(pb.build());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<ArrayId>{live}));
}

TEST(Fission, Figure9ProducesGroupedLoops) {
  const Figure9 fig;
  FissionOptions options;
  options.total_disks = 8;
  const FissionResult result = apply_loop_fission(fig.program, options);
  EXPECT_TRUE(result.any_fissioned);
  // nest1 splits in 3, nest2 in 2, nest3 in 2 -> 7 loops.
  EXPECT_EQ(result.program.nests.size(), 7u);
  ASSERT_EQ(result.groups.size(), 4u);
}

TEST(Fission, ConsolidatesLoopsPerGroup) {
  // Figure 9(b): the transformed code runs group 1's loops first, then
  // group 2's, etc.
  const Figure9 fig;
  const FissionResult result = apply_loop_fission(fig.program, {});
  // Map each emitted nest to the array group of its first reference.
  const auto groups = array_groups(fig.program);
  std::vector<int> group_of_array(fig.program.arrays.size(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (ArrayId a : groups[g]) {
      group_of_array[static_cast<std::size_t>(a)] = static_cast<int>(g);
    }
  }
  std::vector<int> nest_groups;
  for (const ir::LoopNest& nest : result.program.nests) {
    nest_groups.push_back(group_of_array[static_cast<std::size_t>(
        nest.body[0].refs[0].array)]);
  }
  // Group ids must be non-decreasing across the program.
  for (std::size_t i = 1; i < nest_groups.size(); ++i) {
    EXPECT_LE(nest_groups[i - 1], nest_groups[i]);
  }
}

TEST(Fission, DiskAllocationDisjointAndComplete) {
  const Figure9 fig;
  FissionOptions options;
  options.total_disks = 8;
  const FissionResult result = apply_loop_fission(fig.program, options);
  std::vector<bool> used(8, false);
  int total = 0;
  for (const ArrayGroup& g : result.groups) {
    EXPECT_GE(g.disk_count, 1);
    for (int d = g.first_disk; d < g.first_disk + g.disk_count; ++d) {
      EXPECT_FALSE(used[static_cast<std::size_t>(d)]);
      used[static_cast<std::size_t>(d)] = true;
    }
    total += g.disk_count;
  }
  EXPECT_EQ(total, 8);
}

TEST(Fission, AllocationProportionalToGroupBytes) {
  ProgramBuilder pb("p");
  const ArrayId big = pb.array("BIG", {6 * 8192});    // 6 units
  const ArrayId small = pb.array("SMALL", {1 * 8192});  // 1 unit
  pb.nest("n")
      .loop("i", 0, 8192)
      .stmt(1.0)
      .read(big, {sym("i")})
      .stmt(1.0)
      .read(small, {sym("i")})
      .done();
  FissionOptions options;
  options.total_disks = 7;
  const FissionResult result = apply_loop_fission(pb.build(), options);
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_EQ(result.groups[0].disk_count, 6);
  EXPECT_EQ(result.groups[1].disk_count, 1);
}

TEST(Fission, StripingReflectsAllocation) {
  const Figure9 fig;
  FissionOptions options;
  options.total_disks = 8;
  const FissionResult result = apply_loop_fission(fig.program, options);
  for (const ArrayGroup& g : result.groups) {
    for (ArrayId a : g.arrays) {
      const layout::Striping& s =
          result.striping[static_cast<std::size_t>(a)];
      EXPECT_EQ(s.starting_disk, g.first_disk);
      EXPECT_EQ(s.stripe_factor, g.disk_count);
    }
  }
}

TEST(Fission, LayoutObliviousKeepsBaseStriping) {
  const Figure9 fig;
  FissionOptions options;
  options.layout_aware = false;
  const FissionResult result = apply_loop_fission(fig.program, options);
  EXPECT_TRUE(result.any_fissioned);
  for (const layout::Striping& s : result.striping) {
    EXPECT_EQ(s, options.base_striping);
  }
}

TEST(Fission, CoupledProgramIsNoOp) {
  // Every statement couples both arrays: nothing fissionable, and — per the
  // paper's wupwise/galgel observation — the striping stays untouched.
  ProgramBuilder pb("coupled");
  const ArrayId a = pb.array("A", {8192});
  const ArrayId b = pb.array("B", {8192});
  pb.nest("n")
      .loop("i", 0, 8192)
      .stmt(1.0)
      .read(a, {sym("i")})
      .write(b, {sym("i")})
      .done();
  const FissionResult result = apply_loop_fission(pb.build(), {});
  EXPECT_FALSE(result.any_fissioned);
  EXPECT_EQ(result.program.nests.size(), 1u);
  for (const layout::Striping& s : result.striping) {
    EXPECT_EQ(s, layout::Striping{});
  }
}

TEST(Fission, MoreGroupsThanDisksFallsBack) {
  ProgramBuilder pb2("many");
  std::vector<ArrayId> arrays2;
  for (int k = 0; k < 4; ++k) {
    arrays2.push_back(pb2.array("A" + std::to_string(k), {8192}));
  }
  auto nb2 = pb2.nest("n");
  nb2.loop("i", 0, 8192);
  for (int k = 0; k < 4; ++k) {
    nb2.stmt(1.0).read(arrays2[static_cast<std::size_t>(k)], {sym("i")});
  }
  nb2.done();
  FissionOptions options;
  options.total_disks = 2;  // fewer disks than groups
  const FissionResult result = apply_loop_fission(pb2.build(), options);
  EXPECT_TRUE(result.any_fissioned);
  for (const layout::Striping& s : result.striping) {
    EXPECT_EQ(s, options.base_striping);
  }
}

TEST(Fission, PreservesTotalCycles) {
  const Figure9 fig;
  const FissionResult result = apply_loop_fission(fig.program, {});
  EXPECT_DOUBLE_EQ(result.program.total_cycles(), fig.program.total_cycles());
}

}  // namespace
}  // namespace sdpm::core
