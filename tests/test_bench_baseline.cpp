// Bench snapshot persistence and the regression comparator: JSON
// round-trips, calibration normalization, the tolerance band, the
// null-tracer overhead gate, and the release-build assertion contract.
// All deterministic — no timing-sensitive assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "experiments/bench_baseline.h"
#include "util/error.h"

namespace sdpm {
namespace {

experiments::BenchSnapshot simulator_snapshot() {
  experiments::BenchSnapshot snap;
  snap.suite = "simulator";
  snap.jobs = 1;
  snap.calib_score = 400.0;
  snap.wall_ms = 900.0;
  snap.requests_simulated = 3'000'000;
  snap.requests_per_sec = 40'000'000.0;
  snap.null_tracer_overhead_pct = 1.2;
  return snap;
}

experiments::BenchSnapshot sweep_snapshot() {
  experiments::BenchSnapshot snap;
  snap.suite = "sweep";
  snap.jobs = 8;
  snap.calib_score = 400.0;
  snap.wall_ms = 150.0;
  snap.requests_simulated = 230'440;
  snap.requests_per_sec = 20'000'000.0;
  snap.cells_completed = 8;
  return snap;
}

TEST(BenchSnapshot, JsonRoundTrip) {
  const experiments::BenchSnapshot original = simulator_snapshot();
  const experiments::BenchSnapshot parsed =
      experiments::BenchSnapshot::from_json(original.to_json());
  EXPECT_EQ(parsed.suite, original.suite);
  EXPECT_EQ(parsed.schema, original.schema);
  EXPECT_EQ(parsed.jobs, original.jobs);
  EXPECT_EQ(parsed.calib_score, original.calib_score);
  EXPECT_EQ(parsed.wall_ms, original.wall_ms);
  EXPECT_EQ(parsed.requests_simulated, original.requests_simulated);
  EXPECT_EQ(parsed.requests_per_sec, original.requests_per_sec);
  EXPECT_EQ(parsed.null_tracer_overhead_pct,
            original.null_tracer_overhead_pct);
  EXPECT_EQ(parsed.cells_completed, original.cells_completed);
}

TEST(BenchSnapshot, DumpIsDeterministic) {
  EXPECT_EQ(simulator_snapshot().to_json(), simulator_snapshot().to_json());
}

TEST(BenchSnapshot, RejectsMalformedInput) {
  EXPECT_THROW(experiments::BenchSnapshot::from_json("not json"), Error);
  EXPECT_THROW(experiments::BenchSnapshot::from_json("{}"), Error);
  EXPECT_THROW(experiments::BenchSnapshot::from_json(
                   R"({"schema": 2, "suite": "simulator"})"),
               Error);
  EXPECT_THROW(experiments::BenchSnapshot::from_json(
                   R"({"schema": 1, "suite": "nonsense", "jobs": 1,
                       "calib_score": 1, "wall_ms": 1,
                       "requests_simulated": 1, "requests_per_sec": 1})"),
               Error);
}

TEST(BenchCompare, IdenticalSnapshotsPass) {
  const auto snap = simulator_snapshot();
  const experiments::BenchComparison cmp =
      experiments::compare_snapshots(snap, snap, 15.0);
  EXPECT_FALSE(cmp.regressed);
  EXPECT_EQ(cmp.delta_pct, 0.0);
}

TEST(BenchCompare, DropBeyondToleranceRegresses) {
  const auto baseline = simulator_snapshot();
  auto fresh = baseline;
  fresh.requests_per_sec = baseline.requests_per_sec * 0.80;  // -20%
  EXPECT_TRUE(experiments::compare_snapshots(baseline, fresh, 15.0)
                  .regressed);
  EXPECT_FALSE(experiments::compare_snapshots(baseline, fresh, 25.0)
                   .regressed);
}

TEST(BenchCompare, ImprovementNeverRegresses) {
  const auto baseline = simulator_snapshot();
  auto fresh = baseline;
  fresh.requests_per_sec = baseline.requests_per_sec * 3.0;
  const auto cmp = experiments::compare_snapshots(baseline, fresh, 15.0);
  EXPECT_FALSE(cmp.regressed);
  EXPECT_GT(cmp.delta_pct, 0.0);
}

TEST(BenchCompare, CalibrationNormalizesAcrossMachines) {
  // The fresh machine is 2x slower on the calibration loop AND on the
  // suite: normalized throughput is unchanged, so no regression.
  const auto baseline = simulator_snapshot();
  auto fresh = baseline;
  fresh.calib_score = baseline.calib_score / 2.0;
  fresh.requests_per_sec = baseline.requests_per_sec / 2.0;
  const auto cmp = experiments::compare_snapshots(baseline, fresh, 15.0);
  EXPECT_FALSE(cmp.regressed);
  EXPECT_EQ(cmp.delta_pct, 0.0);
  // Same raw drop without the calibration drop: a real regression.
  auto really_slow = baseline;
  really_slow.requests_per_sec = baseline.requests_per_sec / 2.0;
  EXPECT_TRUE(experiments::compare_snapshots(baseline, really_slow, 15.0)
                  .regressed);
}

TEST(BenchCompare, NullTracerOverheadGate) {
  const auto baseline = simulator_snapshot();
  auto fresh = baseline;
  // Limit at tolerance 15 is 2.0 + 0.2 * 15 = 5.0%.
  fresh.null_tracer_overhead_pct = 4.9;
  EXPECT_FALSE(experiments::compare_snapshots(baseline, fresh, 15.0)
                   .regressed);
  fresh.null_tracer_overhead_pct = 5.1;
  const auto cmp = experiments::compare_snapshots(baseline, fresh, 15.0);
  EXPECT_TRUE(cmp.regressed);
  EXPECT_EQ(cmp.null_tracer_limit_pct, 5.0);
}

TEST(BenchCompare, SweepSuiteHasNoTracerGate) {
  const auto baseline = sweep_snapshot();
  auto fresh = baseline;
  fresh.null_tracer_overhead_pct = 50.0;  // ignored for sweep
  EXPECT_FALSE(experiments::compare_snapshots(baseline, fresh, 15.0)
                   .regressed);
}

TEST(BenchCompare, JobsMismatchIsNotedButNonFatal) {
  const auto baseline = sweep_snapshot();
  auto fresh = baseline;
  fresh.jobs = 1;
  const auto cmp = experiments::compare_snapshots(baseline, fresh, 15.0);
  EXPECT_FALSE(cmp.regressed);
  const bool noted =
      std::any_of(cmp.notes.begin(), cmp.notes.end(), [](const auto& n) {
        return n.find("jobs differ") != std::string::npos;
      });
  EXPECT_TRUE(noted);
}

TEST(BenchCompare, EqualJobsHasNoMismatchNote) {
  const auto baseline = sweep_snapshot();
  const auto cmp = experiments::compare_snapshots(baseline, baseline, 15.0);
  for (const auto& note : cmp.notes) {
    EXPECT_EQ(note.find("jobs differ"), std::string::npos) << note;
  }
}

TEST(BenchCompare, SuiteMismatchThrows) {
  EXPECT_THROW(experiments::compare_snapshots(simulator_snapshot(),
                                              sweep_snapshot(), 15.0),
               Error);
}

TEST(BenchCompare, NegativeToleranceThrows) {
  const auto snap = simulator_snapshot();
  EXPECT_THROW(experiments::compare_snapshots(snap, snap, -1.0), Error);
}

TEST(Calibration, ScoreIsPositiveAndFinite) {
  const double score = experiments::calibration_score();
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 1e9);
}

// The assertion audit (hot-path hygiene): SDPM_ASSERT must cost nothing
// in NDEBUG builds and throw in debug builds, while SDPM_REQUIRE always
// throws.  This pins the contract the replay engine's hoisted validation
// relies on.
TEST(AssertionAudit, AssertCompilesOutUnderNdebug) {
#ifdef NDEBUG
  SDPM_ASSERT(false, "must be compiled out in release builds");
  SUCCEED();
#else
  EXPECT_THROW(SDPM_ASSERT(false, "must fire in debug builds"), Error);
#endif
}

TEST(AssertionAudit, RequireAlwaysActive) {
  EXPECT_THROW(SDPM_REQUIRE(false, "always active"), Error);
  SDPM_REQUIRE(true, "no throw on satisfied precondition");
}

}  // namespace
}  // namespace sdpm
