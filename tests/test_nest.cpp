// LoopNest: trip counts, flat-iteration decoding, validation.
#include <gtest/gtest.h>

#include "ir/nest.h"
#include "util/error.h"

namespace sdpm::ir {
namespace {

LoopNest two_level_nest() {
  LoopNest nest;
  nest.name = "n";
  nest.loops = {Loop{"i", 2, 10, 2}, Loop{"j", 0, 3, 1}};
  Statement s;
  s.cycles = 10;
  nest.body.push_back(s);
  return nest;
}

TEST(Loop, TripCount) {
  EXPECT_EQ((Loop{"i", 0, 10, 1}).trip_count(), 10);
  EXPECT_EQ((Loop{"i", 2, 10, 2}).trip_count(), 4);
  EXPECT_EQ((Loop{"i", 0, 10, 3}).trip_count(), 4);
  EXPECT_EQ((Loop{"i", 5, 5, 1}).trip_count(), 0);
}

TEST(Loop, ValueAt) {
  const Loop loop{"i", 2, 10, 2};
  EXPECT_EQ(loop.value_at(0), 2);
  EXPECT_EQ(loop.value_at(3), 8);
}

TEST(LoopNest, IterationCount) {
  EXPECT_EQ(two_level_nest().iteration_count(), 12);
}

TEST(LoopNest, CyclesPerIteration) {
  LoopNest nest = two_level_nest();
  nest.loop_overhead_cycles = 2;
  Statement s2;
  s2.cycles = 5;
  nest.body.push_back(s2);
  EXPECT_DOUBLE_EQ(nest.cycles_per_iteration(), 17.0);
  EXPECT_DOUBLE_EQ(nest.total_cycles(), 17.0 * 12);
}

TEST(LoopNest, IterationAtDecodesRowMajor) {
  const LoopNest nest = two_level_nest();
  // flat 0 -> (i=2, j=0); flat 1 -> (i=2, j=1); flat 3 -> (i=4, j=0)
  EXPECT_EQ(nest.iteration_at(0), (std::vector<std::int64_t>{2, 0}));
  EXPECT_EQ(nest.iteration_at(1), (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(nest.iteration_at(3), (std::vector<std::int64_t>{4, 0}));
  EXPECT_EQ(nest.iteration_at(11), (std::vector<std::int64_t>{8, 2}));
}

TEST(LoopNest, FlatOfTripsInvertsIterationAt) {
  const LoopNest nest = two_level_nest();
  for (std::int64_t flat = 0; flat < nest.iteration_count(); ++flat) {
    const auto iters = nest.iteration_at(flat);
    // convert iterator values back to trip indices
    std::vector<std::int64_t> trips(iters.size());
    for (std::size_t k = 0; k < iters.size(); ++k) {
      trips[k] = (iters[k] - nest.loops[k].lower) / nest.loops[k].step;
    }
    EXPECT_EQ(nest.flat_of_trips(trips), flat);
  }
}

TEST(LoopNest, LoopNames) {
  EXPECT_EQ(two_level_nest().loop_names(),
            (std::vector<std::string>{"i", "j"}));
}

TEST(LoopNest, ValidateRejectsEmptyLoop) {
  LoopNest nest = two_level_nest();
  nest.loops[0].upper = nest.loops[0].lower;
  EXPECT_THROW(nest.validate({}), Error);
}

TEST(LoopNest, ValidateRejectsUnknownArray) {
  LoopNest nest = two_level_nest();
  ArrayRef ref;
  ref.array = 3;  // no arrays exist
  ref.subscripts = {affine_var(0, 2)};
  nest.body[0].refs.push_back(ref);
  EXPECT_THROW(nest.validate({}), Error);
}

TEST(LoopNest, ValidateRejectsRankMismatch) {
  LoopNest nest = two_level_nest();
  Array a;
  a.name = "U";
  a.extents = {8, 8};
  ArrayRef ref;
  ref.array = 0;
  ref.subscripts = {affine_var(0, 2)};  // 1 subscript for rank-2 array
  nest.body[0].refs.push_back(ref);
  const Array arrays[] = {a};
  EXPECT_THROW(nest.validate(arrays), Error);
}

TEST(Statement, ReferencedArrays) {
  Statement s;
  ArrayRef r1;
  r1.array = 2;
  ArrayRef r2;
  r2.array = 5;
  s.refs = {r1, r2};
  EXPECT_EQ(s.referenced_arrays(), (std::vector<ArrayId>{2, 5}));
}

TEST(AccessKind, Names) {
  EXPECT_STREQ(to_string(AccessKind::kRead), "read");
  EXPECT_STREQ(to_string(AccessKind::kWrite), "write");
}

}  // namespace
}  // namespace sdpm::ir
