// Fault injection: deterministic draws, retry timing/energy, media-error
// remapping, dropped directives, and the none() bit-identity guarantee.
#include <gtest/gtest.h>

#include <vector>

#include "policy/base.h"
#include "policy/tpm.h"
#include "sim/disk_unit.h"
#include "sim/faults.h"
#include "sim/invariants.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace sdpm::sim {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Trace gap_trace(int disks, int rounds, TimeMs gap_ms) {
  // One request per disk per round, rounds separated by a long gap so TPM
  // policies spin down and demand spin-ups (hence spin-up faults) occur.
  trace::Trace t;
  t.total_disks = disks;
  TimeMs at = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int d = 0; d < disks; ++d) {
      trace::Request req;
      req.arrival_ms = at;
      req.disk = d;
      req.start_sector = 128 * r;
      req.size_bytes = kib(64);
      t.requests.push_back(req);
      t.bytes_transferred += req.size_bytes;
    }
    at += gap_ms;
  }
  t.compute_total_ms = at;
  return t;
}

TEST(FaultConfig, ValidateRejectsBadRanges) {
  FaultConfig fc;
  fc.spin_up_failure_prob = 1.5;
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.service_jitter = 1.0;  // must be < 1
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.max_spin_up_retries = -1;
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.media_error_prob = -0.1;
  EXPECT_THROW(fc.validate(), Error);
  FaultConfig::none().validate();  // default is always valid
}

TEST(FaultModel, SameSeedSameDraws) {
  FaultConfig fc;
  fc.spin_up_failure_prob = 0.3;
  fc.media_error_prob = 0.2;
  fc.service_jitter = 0.1;
  FaultModel a(fc);
  FaultModel b(fc);
  for (int i = 0; i < 200; ++i) {
    const int disk = i % 3;
    EXPECT_EQ(a.spin_up_fails(disk), b.spin_up_fails(disk));
    const FaultModel::MediaOutcome ma = a.media_check(disk, i);
    const FaultModel::MediaOutcome mb = b.media_check(disk, i);
    EXPECT_EQ(ma.error, mb.error);
    EXPECT_EQ(ma.new_remap, mb.new_remap);
    EXPECT_DOUBLE_EQ(a.service_jitter_factor(disk),
                     b.service_jitter_factor(disk));
  }
}

TEST(FaultModel, DisabledClassesConsumeNoRandomness) {
  // Interleaving draws of *disabled* classes must not perturb the enabled
  // spin-up stream: a config with only spin-up faults produces the same
  // fail/succeed sequence whether or not the other draws happen.
  FaultConfig fc;
  fc.spin_up_failure_prob = 0.5;
  FaultModel pure(fc);
  FaultModel interleaved(fc);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(interleaved.media_check(0, i).error, false);
    EXPECT_DOUBLE_EQ(interleaved.service_jitter_factor(0), 1.0);
    EXPECT_EQ(interleaved.drops_directive(0), false);
    EXPECT_EQ(pure.spin_up_fails(0), interleaved.spin_up_fails(0));
  }
}

TEST(FaultModel, PerDiskStreamsAreIndependent) {
  FaultConfig fc;
  fc.spin_up_failure_prob = 0.5;
  FaultModel a(fc);
  FaultModel b(fc);
  // Drawing heavily from disk 0 on one model must not change disk 1.
  for (int i = 0; i < 500; ++i) a.spin_up_fails(0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.spin_up_fails(1), b.spin_up_fails(1));
  }
}

TEST(FaultModel, BackoffIsCappedExponential) {
  FaultConfig fc;
  fc.spin_up_failure_prob = 0.5;
  fc.retry_backoff_base_ms = 100.0;
  fc.retry_backoff_factor = 2.0;
  fc.retry_backoff_cap_ms = 5'000.0;
  FaultModel model(fc);
  EXPECT_DOUBLE_EQ(model.backoff_ms(0), 100.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(1), 200.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(2), 400.0);
  EXPECT_DOUBLE_EQ(model.backoff_ms(10), 5'000.0);  // capped
}

TEST(DiskUnitFaults, RetriesPayTimeEnergyAndBackoff) {
  FaultConfig fc;
  fc.spin_up_failure_prob = 1.0;  // every attempt fails...
  fc.max_spin_up_retries = 2;     // ...until the forced final attempt
  fc.spin_up_attempt_ms = 500.0;
  fc.retry_backoff_base_ms = 100.0;
  fc.retry_backoff_factor = 2.0;
  FaultModel model(fc);
  DiskUnit unit(params(), 0, &model);
  unit.spin_down(0.0);
  // Demand serve long after the spin-down transition has settled.
  const DiskUnit::ServeResult r = unit.serve(60'000.0, 0, kib(64));
  EXPECT_TRUE(r.demand_spin_up);
  EXPECT_EQ(unit.spin_up_retries(), 2);
  // Two failed attempts (500 ms + backoff 100, 200 ms) then a full spin-up.
  const TimeMs wake = 60'000.0 + (500.0 + 100.0) + (500.0 + 200.0) +
                      params().tpm.spin_up_time;
  EXPECT_NEAR(r.start, wake, 1e-9);
  // Each failed attempt is billed pro-rata at spin-up power.
  const Joules attempt_j =
      params().tpm.spin_up_energy * 500.0 / params().tpm.spin_up_time;
  unit.finish(r.completion);
  EXPECT_NEAR(unit.breakdown().spin_up_j,
              params().tpm.spin_up_energy + 2 * attempt_j, 1e-9);
}

TEST(DiskUnitFaults, DroppedDirectiveLeavesDiskSpinning) {
  FaultConfig fc;
  fc.dropped_directive_prob = 1.0;
  FaultModel model(fc);
  DiskUnit unit(params(), 0, &model);
  unit.spin_down(1'000.0);
  EXPECT_FALSE(unit.heading_to_standby());
  EXPECT_EQ(unit.dropped_directives(), 1);
  EXPECT_EQ(unit.commanded_spin_downs(), 0);
}

TEST(DiskUnitFaults, MediaErrorRemapsOnceThenPaysReposition) {
  FaultConfig fc;
  fc.media_error_prob = 1.0;
  FaultModel model(fc);
  DiskUnit unit(params(), 0, &model);
  DiskUnit clean(params(), 0, nullptr);

  const DiskUnit::ServeResult faulty = unit.serve(0.0, 42, kib(64));
  const DiskUnit::ServeResult ok = clean.serve(0.0, 42, kib(64));
  EXPECT_EQ(unit.media_errors(), 1);
  EXPECT_EQ(unit.remapped_sectors(), 1);
  EXPECT_TRUE(model.is_remapped(0, 42));
  EXPECT_GT(faulty.completion, ok.completion);  // re-read costs extra

  // Touching the same sector again: another error draw fires (prob 1) but
  // the remap entry already exists.
  unit.serve(faulty.completion + 1.0, 42, kib(64));
  EXPECT_EQ(unit.media_errors(), 2);
  EXPECT_EQ(unit.remapped_sectors(), 1);
  EXPECT_EQ(model.remapped_count(0), 1);
}

TEST(SimulatorFaults, NoneIsBitIdenticalToFaultFree) {
  const trace::Trace t = gap_trace(4, 6, 45'000.0);
  policy::TpmPolicy a;
  policy::TpmPolicy b;
  const SimReport plain =
      simulate(t, params(), a, SimOptions{.capture_responses = true});
  const SimReport with_none =
      simulate(t, params(), b,
               SimOptions{.mode = ReplayMode::kClosedLoop,
                          .faults = FaultConfig::none(),
                          .capture_responses = true});
  EXPECT_EQ(plain.total_energy, with_none.total_energy);  // exact, not NEAR
  EXPECT_EQ(plain.execution_ms, with_none.execution_ms);
  ASSERT_EQ(plain.responses.size(), with_none.responses.size());
  for (std::size_t i = 0; i < plain.responses.size(); ++i) {
    EXPECT_EQ(plain.responses[i], with_none.responses[i]);
  }
  EXPECT_EQ(with_none.spin_up_retries(), 0);
  EXPECT_EQ(with_none.media_errors(), 0);
  EXPECT_EQ(with_none.dropped_directives(), 0);
}

TEST(SimulatorFaults, SameSeedTwiceIsIdentical) {
  const trace::Trace t = gap_trace(4, 8, 45'000.0);
  FaultConfig fc;
  fc.spin_up_failure_prob = 0.4;
  fc.media_error_prob = 0.05;
  fc.service_jitter = 0.2;
  fc.dropped_directive_prob = 0.3;
  fc.seed = 1234;

  policy::TpmPolicy a;
  policy::TpmPolicy b;
  const SimReport first = simulate(t, params(), a,
                                   ReplayMode::kClosedLoop, fc);
  const SimReport second = simulate(t, params(), b,
                                    ReplayMode::kClosedLoop, fc);
  EXPECT_EQ(first.total_energy, second.total_energy);
  EXPECT_EQ(first.execution_ms, second.execution_ms);
  EXPECT_EQ(first.spin_up_retries(), second.spin_up_retries());
  EXPECT_EQ(first.media_errors(), second.media_errors());
  EXPECT_EQ(first.dropped_directives(), second.dropped_directives());
  ASSERT_EQ(first.disks.size(), second.disks.size());
  for (std::size_t d = 0; d < first.disks.size(); ++d) {
    EXPECT_EQ(first.disks[d].breakdown.total_j(),
              second.disks[d].breakdown.total_j());
    EXPECT_EQ(first.disks[d].spin_up_retries,
              second.disks[d].spin_up_retries);
  }
  check_invariants(first, params());
}

TEST(SimulatorFaults, FaultyRunUpholdsInvariants) {
  const trace::Trace t = gap_trace(4, 8, 45'000.0);
  for (const std::uint64_t seed : {7u, 99u, 2026u}) {
    FaultConfig fc;
    fc.spin_up_failure_prob = 0.5;
    fc.media_error_prob = 0.1;
    fc.service_jitter = 0.3;
    fc.dropped_directive_prob = 0.5;
    fc.seed = seed;
    policy::TpmPolicy policy;
    const SimReport report = simulate(t, params(), policy,
                                      ReplayMode::kClosedLoop, fc);
    check_invariants(report, params());
    EXPECT_GT(report.spin_up_retries(), 0);
    EXPECT_GT(report.media_errors(), 0);
  }
}

}  // namespace
}  // namespace sdpm::sim
