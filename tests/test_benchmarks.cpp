// Workloads: Table 2 characteristics and the §6 structural properties.
#include <gtest/gtest.h>

#include "core/fission.h"
#include "core/tiling.h"
#include "experiments/runner.h"
#include "util/error.h"
#include "sim/invariants.h"
#include "workloads/benchmarks.h"
#include "workloads/extra.h"

namespace sdpm::workloads {
namespace {

class BenchmarkTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSix, BenchmarkTest,
                         ::testing::ValuesIn(benchmark_names()),
                         [](const auto& param_info) { return param_info.param; });

TEST_P(BenchmarkTest, ProgramValidates) {
  const Benchmark b = make_benchmark(GetParam());
  b.program.validate();
  EXPECT_EQ(b.name, GetParam());
  EXPECT_GT(b.program.nests.size(), 0u);
}

TEST_P(BenchmarkTest, DataSizeMatchesTable2) {
  const Benchmark b = make_benchmark(GetParam());
  const double mb =
      static_cast<double>(b.program.total_data_bytes()) / (1024.0 * 1024.0);
  // Within 5% of the paper's reported dataset size.
  EXPECT_NEAR(mb, b.paper.data_mb, b.paper.data_mb * 0.05);
}

TEST_P(BenchmarkTest, RequestCountMatchesTable2) {
  Benchmark b = make_benchmark(GetParam());
  experiments::ExperimentConfig config;
  experiments::Runner runner(b, config);
  const auto& base = runner.base_report();
  EXPECT_NEAR(static_cast<double>(base.requests),
              static_cast<double>(b.paper.disk_requests),
              0.05 * static_cast<double>(b.paper.disk_requests));
}

TEST_P(BenchmarkTest, BaseEnergyAndTimeMatchTable2) {
  Benchmark b = make_benchmark(GetParam());
  experiments::ExperimentConfig config;
  experiments::Runner runner(b, config);
  const auto& base = runner.base_report();
  EXPECT_NEAR(base.total_energy, b.paper.base_energy_j,
              0.06 * b.paper.base_energy_j);
  EXPECT_NEAR(base.execution_ms, b.paper.execution_ms,
              0.06 * b.paper.execution_ms);
}

TEST_P(BenchmarkTest, Deterministic) {
  Benchmark b1 = make_benchmark(GetParam());
  Benchmark b2 = make_benchmark(GetParam());
  experiments::ExperimentConfig config;
  experiments::Runner r1(b1, config);
  experiments::Runner r2(b2, config);
  EXPECT_DOUBLE_EQ(r1.base_report().total_energy,
                   r2.base_report().total_energy);
  EXPECT_DOUBLE_EQ(r1.base_report().execution_ms,
                   r2.base_report().execution_ms);
}

TEST(Benchmarks, AllSixPresent) {
  const auto all = all_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "wupwise");
  EXPECT_EQ(all[5].name, "galgel");
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("nosuch"), Error);
}

TEST(Benchmarks, FissionabilityMatchesPaper) {
  // §6.2: "wupwise and galgel do not contain any fissionable loop nests".
  for (const Benchmark& b : all_benchmarks()) {
    core::FissionOptions fo;
    const core::FissionResult fr = core::apply_loop_fission(b.program, fo);
    const bool expected =
        b.name != "wupwise" && b.name != "galgel";
    EXPECT_EQ(fr.any_fissioned, expected) << b.name;
  }
}

TEST(Benchmarks, TilingLayoutStepMatchesPaper) {
  // §6.2: TL+DL yields additional savings for wupwise, applu and mesa; the
  // other three have no array private to their costliest nest.
  for (const Benchmark& b : all_benchmarks()) {
    core::TilingOptions to;
    const core::TilingResult tr = core::apply_loop_tiling(b.program, to);
    const bool expect_reshape =
        b.name == "wupwise" || b.name == "applu" || b.name == "mesa";
    EXPECT_EQ(!tr.reshaped_arrays.empty(), expect_reshape) << b.name;
  }
}

TEST(Benchmarks, WupwiseLayoutMismatchDetected) {
  // wupwise's M2 is stored column-major but read row-wise: the blocked
  // reshape must report an access-order permutation (the paper's layout
  // transformation).
  const Benchmark b = make_wupwise();
  core::TilingOptions to;
  const core::TilingResult tr = core::apply_loop_tiling(b.program, to);
  EXPECT_FALSE(tr.permuted_arrays.empty());
}

TEST(Benchmarks, GalgelConformsToLayout) {
  // galgel's accesses conform: even when tiled, nothing needs permuting.
  const Benchmark b = make_galgel();
  core::TilingOptions to;
  const core::TilingResult tr = core::apply_loop_tiling(b.program, to);
  EXPECT_TRUE(tr.permuted_arrays.empty());
}

TEST(Benchmarks, SwimHasThreeArrayGroups) {
  const Benchmark b = make_swim();
  EXPECT_EQ(core::array_groups(b.program).size(), 3u);
}

TEST(Benchmarks, MesaHasFourArrayGroups) {
  const Benchmark b = make_mesa();
  EXPECT_EQ(core::array_groups(b.program).size(), 4u);
}

TEST(Benchmarks, GalgelIsOneArrayGroup) {
  const Benchmark b = make_galgel();
  EXPECT_EQ(core::array_groups(b.program).size(), 1u);
}

TEST(ExtraWorkloads, AllValidateAndSimulate) {
  for (Benchmark& b : extra_benchmarks()) {
    b.program.validate();
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    sim::check_invariants(runner.base_report(), config.disk);
  }
}

TEST(ExtraWorkloads, CheckpointMakesTpmViableWithoutTransformation) {
  // Unlike the paper's six, the checkpoint/restart shape has >15.2 s
  // compute epochs: plain CMTPM profits with no code restructuring.
  Benchmark b = make_checkpoint();
  experiments::ExperimentConfig config;
  config.actual_noise = trace::CycleNoise::none();
  config.profile_noise = trace::CycleNoise::none();
  experiments::Runner runner(b, config);
  const auto cmtpm = runner.run(experiments::Scheme::kCmtpm);
  EXPECT_LT(cmtpm.normalized_energy, 0.82);
  EXPECT_LT(cmtpm.normalized_time, 1.01);
  // With the default 20% profiling noise the savings shrink and a late
  // wake-up can leak through, but the scheme stays clearly worthwhile.
  experiments::ExperimentConfig noisy;
  experiments::Runner noisy_runner(b, noisy);
  const auto noisy_cmtpm = noisy_runner.run(experiments::Scheme::kCmtpm);
  EXPECT_LT(noisy_cmtpm.normalized_energy, 0.90);
  EXPECT_LT(noisy_cmtpm.normalized_time, 1.08);
}

TEST(ExtraWorkloads, TransposeGainsFromTiling) {
  Benchmark b = make_transpose();
  experiments::ExperimentConfig plain;
  experiments::Runner plain_runner(b, plain);
  const auto& base = plain_runner.base_report();

  experiments::ExperimentConfig tldl;
  tldl.transform = core::Transformation::kTLDL;
  experiments::Runner tldl_runner(b, tldl);
  // The blocked layout collapses the write-thrash misses dramatically.
  EXPECT_LT(tldl_runner.base_report().requests, base.requests / 4);
}

TEST(ExtraWorkloads, ScanIsStreamingBound) {
  Benchmark b = make_scan();
  experiments::ExperimentConfig config;
  experiments::Runner runner(b, config);
  const auto drpm = runner.run(experiments::Scheme::kDrpm);
  // Reactive DRPM saves on a pure streaming scan (steady load per disk).
  EXPECT_LT(drpm.normalized_energy, 0.95);
}

}  // namespace
}  // namespace sdpm::workloads
