// Observability layer: null-tracer fast path, sink formats, byte-stable
// exports, the bit-identical traced-vs-untraced guarantee across policies
// and delivery paths, pre-activation accounting, and the metrics registry.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "layout/layout_table.h"
#include "obs/metrics.h"
#include "obs/preactivation.h"
#include "obs/sim_metrics.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/source.h"
#include "workloads/benchmarks.h"

namespace sdpm {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Request make_request(TimeMs arrival, int disk, BlockNo sector,
                            Bytes size) {
  trace::Request r;
  r.arrival_ms = arrival;
  r.disk = disk;
  r.start_sector = sector;
  r.size_bytes = size;
  return r;
}

trace::PowerEvent make_power(TimeMs at, ir::PowerDirective::Kind kind,
                             int disk, int level = 0) {
  trace::PowerEvent pe;
  pe.app_time_ms = at;
  pe.directive.kind = kind;
  pe.directive.disk = disk;
  pe.directive.rpm_level = level;
  return pe;
}

/// One request per disk per round, rounds separated by a long gap so TPM
/// spins disks down and every event kind the reactive path can produce
/// actually occurs.
trace::Trace gap_trace(int disks, int rounds, TimeMs gap_ms) {
  trace::Trace t;
  t.total_disks = disks;
  TimeMs at = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int d = 0; d < disks; ++d) {
      t.requests.push_back(make_request(at, d, 128 * r, kib(64)));
      t.bytes_transferred += kib(64);
    }
    at += gap_ms;
  }
  t.compute_total_ms = at;
  return t;
}

// ---------------------------------------------------------------------------
// Tracer core

TEST(Tracer, EffectiveTracerCollapsesInactive) {
  EXPECT_EQ(obs::effective_tracer(nullptr), nullptr);
  obs::EventTracer sinkless;
  EXPECT_EQ(obs::effective_tracer(&sinkless), nullptr);
  obs::CountingSink sink;
  obs::EventTracer active;
  active.add_sink(sink);
  EXPECT_EQ(obs::effective_tracer(&active), &active);
}

TEST(Tracer, EmitFansOutToEverySink) {
  obs::CountingSink a;
  obs::CountingSink b;
  obs::EventTracer tracer;
  tracer.add_sink(a);
  tracer.add_sink(b);
  obs::Event e;
  e.kind = obs::EventKind::kDirective;
  tracer.emit(e);
  e.kind = obs::EventKind::kService;
  tracer.emit(e);
  EXPECT_EQ(tracer.events_emitted(), 2);
  EXPECT_EQ(a.total(), 2);
  EXPECT_EQ(b.total(), 2);
  EXPECT_EQ(a.count(obs::EventKind::kDirective), 1);
  EXPECT_EQ(b.count(obs::EventKind::kService), 1);
  EXPECT_EQ(a.count(obs::EventKind::kMediaError), 0);
}

TEST(Tracer, SpanEmitsBeginAndEnd) {
  obs::CountingSink sink;
  obs::EventTracer tracer;
  tracer.add_sink(sink);
  {
    obs::Span span(&tracer, "run", 10.0);
    span.end(25.0);
  }
  // end() already fired; the destructor must not double-emit.
  EXPECT_EQ(sink.count(obs::EventKind::kSpanBegin), 1);
  EXPECT_EQ(sink.count(obs::EventKind::kSpanEnd), 1);
  {
    obs::Span span(&tracer, "abandoned", 0.0);
  }
  EXPECT_EQ(sink.count(obs::EventKind::kSpanEnd), 2);
  {
    obs::Span span(nullptr, "untraced", 0.0);  // null tracer: no-op
    span.end(1.0);
  }
  EXPECT_EQ(sink.total(), 4);
}

// ---------------------------------------------------------------------------
// Bit-identical traced vs untraced

void expect_reports_bit_identical(const sim::SimReport& a,
                                  const sim::SimReport& b) {
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.execution_ms, b.execution_ms);
  EXPECT_EQ(a.compute_ms, b.compute_ms);
  EXPECT_EQ(a.io_stall_ms, b.io_stall_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    ASSERT_EQ(a.responses[i], b.responses[i]) << "request " << i;
  }
  ASSERT_EQ(a.disks.size(), b.disks.size());
  for (std::size_t d = 0; d < a.disks.size(); ++d) {
    EXPECT_EQ(a.disks[d].breakdown.total_j(), b.disks[d].breakdown.total_j());
    EXPECT_EQ(a.disks[d].breakdown.total_ms(), b.disks[d].breakdown.total_ms());
    EXPECT_EQ(a.disks[d].services, b.disks[d].services);
    EXPECT_EQ(a.disks[d].spin_downs, b.disks[d].spin_downs);
    EXPECT_EQ(a.disks[d].demand_spin_ups, b.disks[d].demand_spin_ups);
    EXPECT_EQ(a.disks[d].rpm_transitions, b.disks[d].rpm_transitions);
    EXPECT_EQ(a.disks[d].spin_up_retries, b.disks[d].spin_up_retries);
    EXPECT_EQ(a.disks[d].media_errors, b.disks[d].media_errors);
    EXPECT_EQ(a.disks[d].remapped_sectors, b.disks[d].remapped_sectors);
    EXPECT_EQ(a.disks[d].dropped_directives, b.disks[d].dropped_directives);
  }
}

/// The tracing contract: attaching a tracer must not perturb the replay by
/// a single bit.  Runs the same simulation untraced and traced (fresh
/// policy each time) and compares the reports exactly.
template <typename MakePolicy>
void check_traced_identical(const trace::Trace& t, MakePolicy make_policy,
                            sim::SimOptions options) {
  options.capture_responses = true;

  options.tracer = nullptr;
  auto policy_a = make_policy();
  const sim::SimReport untraced = sim::simulate(t, params(), policy_a, options);

  obs::CountingSink sink;
  obs::EventTracer tracer;
  tracer.add_sink(sink);
  options.tracer = &tracer;
  auto policy_b = make_policy();
  const sim::SimReport traced = sim::simulate(t, params(), policy_b, options);
  tracer.close();

  expect_reports_bit_identical(untraced, traced);
  EXPECT_GT(sink.total(), 0);
  // Every serviced request shows up, and state segments cover the run.
  EXPECT_EQ(sink.count(obs::EventKind::kService), traced.requests);
  EXPECT_GT(sink.count(obs::EventKind::kStateSegment), 0);

  // Streaming delivery of the same trace, traced, must also agree.
  trace::TraceCursor cursor(t);
  auto policy_c = make_policy();
  const sim::SimReport streamed =
      sim::simulate(cursor, params(), policy_c, options);
  expect_reports_bit_identical(untraced, streamed);
}

sim::SimOptions faulty_options() {
  sim::SimOptions o;
  o.faults.spin_up_failure_prob = 0.3;
  o.faults.media_error_prob = 0.05;
  o.faults.dropped_directive_prob = 0.2;
  o.faults.service_jitter = 0.1;
  o.faults.seed = 42;
  return o;
}

TEST(TracedIdentical, TpmGapTrace) {
  const trace::Trace t = gap_trace(4, 6, 30'000.0);
  check_traced_identical(
      t, [] { return policy::TpmPolicy(); }, sim::SimOptions{});
}

TEST(TracedIdentical, TpmGapTraceWithFaults) {
  const trace::Trace t = gap_trace(4, 6, 30'000.0);
  check_traced_identical(
      t, [] { return policy::TpmPolicy(); }, faulty_options());
}

TEST(TracedIdentical, DrpmGapTrace) {
  const trace::Trace t = gap_trace(4, 8, 4'000.0);
  check_traced_identical(
      t, [] { return policy::DrpmPolicy(); }, sim::SimOptions{});
}

TEST(TracedIdentical, OpenLoopWithFaults) {
  const trace::Trace t = gap_trace(2, 6, 30'000.0);
  sim::SimOptions o = faulty_options();
  o.mode = sim::ReplayMode::kOpenLoop;
  check_traced_identical(t, [] { return policy::TpmPolicy(); }, o);
}

TEST(TracedIdentical, ProactiveBenchmarkTrace) {
  // A real compiler-produced trace with power events (CMDRPM on galgel
  // inserts thousands of set_rpm calls).
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(
      bench.program, layout::Striping{0, 4, kib(64)}, 4);
  trace::TraceGenerator generator(bench.program, table, {});
  trace::Trace t = generator.generate();
  check_traced_identical(
      t, [] { return policy::ProactivePolicy("CM"); }, sim::SimOptions{});
}

// ---------------------------------------------------------------------------
// Sink formats

TEST(JsonlSink, FixedFieldOrder) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  obs::Event e;
  e.kind = obs::EventKind::kDirective;
  e.disk = 3;
  e.t0 = 1'234.5;
  e.t1 = 1'234.5;
  e.level = 2;
  e.label = "set_rpm";
  sink.on_event(e);
  sink.close();
  EXPECT_EQ(os.str(),
            "{\"kind\":\"directive\",\"disk\":3,\"t0\":1234.5,"
            "\"t1\":1234.5,\"state\":\"idle\",\"level\":2,"
            "\"energy_j\":0,\"value\":0,\"value2\":0,"
            "\"label\":\"set_rpm\"}\n");
}

TEST(JsonlSink, EscapesLabel) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  obs::Event e;
  e.kind = obs::EventKind::kCacheHit;
  e.label = "a\"b\\c";
  sink.on_event(e);
  EXPECT_NE(os.str().find("\"label\":\"a\\\"b\\\\c\""), std::string::npos);
}

/// Run a fixed simulation into a fresh sink of type Sink and return the
/// exported text.
template <typename Sink>
std::string export_fixed_run() {
  const trace::Trace t = gap_trace(3, 5, 30'000.0);
  std::ostringstream os;
  Sink sink(os);
  obs::EventTracer tracer;
  tracer.add_sink(sink);
  policy::TpmPolicy policy;
  sim::SimOptions options;
  options.tracer = &tracer;
  sim::simulate(t, params(), policy, options);
  tracer.close();
  return os.str();
}

TEST(ChromeTraceSink, ByteStableAcrossRuns) {
  const std::string first = export_fixed_run<obs::ChromeTraceSink>();
  const std::string second = export_fixed_run<obs::ChromeTraceSink>();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(first.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // One thread_name metadata record per disk track.
  EXPECT_NE(first.find("\"name\":\"disk 0\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"disk 2\""), std::string::npos);
}

TEST(JsonlSink, ByteStableAcrossRuns) {
  const std::string first = export_fixed_run<obs::JsonlSink>();
  EXPECT_EQ(first, export_fixed_run<obs::JsonlSink>());
}

TEST(TimelineCsvSink, MergesAndCoversTheRun) {
  const trace::Trace t = gap_trace(2, 4, 30'000.0);
  std::ostringstream os;
  obs::TimelineCsvSink sink(os);
  obs::EventTracer tracer;
  tracer.add_sink(sink);
  policy::TpmPolicy policy;
  sim::SimOptions options;
  options.tracer = &tracer;
  const sim::SimReport report = sim::simulate(t, params(), policy, options);
  tracer.close();

  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "disk,state,level,start_ms,end_ms,duration_ms,energy_j");
  // Per disk: rows tile [0, execution_ms] with no gaps or overlaps, and
  // consecutive rows never repeat the same (state, level).
  std::vector<TimeMs> cursor(2, 0.0);
  std::vector<std::string> prev_key(2);
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    const std::size_t c1 = line.find(',');
    const std::size_t c2 = line.find(',', c1 + 1);
    const std::size_t c3 = line.find(',', c2 + 1);
    const std::size_t c4 = line.find(',', c3 + 1);
    const int disk_id = std::stoi(line.substr(0, c1));
    const std::string key = line.substr(c1 + 1, c3 - c1 - 1);  // state,level
    const double start = std::stod(line.substr(c3 + 1, c4 - c3 - 1));
    const double end = std::stod(line.substr(c4 + 1));
    ASSERT_GE(disk_id, 0);
    ASSERT_LT(disk_id, 2);
    EXPECT_NEAR(start, cursor[static_cast<std::size_t>(disk_id)], 1e-6);
    EXPECT_NE(key, prev_key[static_cast<std::size_t>(disk_id)])
        << "unmerged adjacent rows";
    cursor[static_cast<std::size_t>(disk_id)] = end;
    prev_key[static_cast<std::size_t>(disk_id)] = key;
  }
  EXPECT_GT(rows, 2);
  // Timestamps pass through the CSV's %.9g rendering: 9 significant
  // digits, so ~1e-3 ms of absolute slack at a ~2e5 ms run length.
  EXPECT_NEAR(cursor[0], report.execution_ms, 1e-2);
  EXPECT_NEAR(cursor[1], report.execution_ms, 1e-2);
}

// ---------------------------------------------------------------------------
// Pre-activation accounting

struct PreactRun {
  obs::PreactivationReport report;
  sim::SimReport sim;
};

/// Open-loop replay of a synthetic trace under ProactivePolicy: power
/// events fire at their recorded timestamps, so hit/late/wasted outcomes
/// are exactly computable from spin_up_time (10.9 s) / spin_down_time
/// (1.5 s).
PreactRun preact_run(const trace::Trace& t) {
  obs::PreactivationAccountant accountant;
  obs::EventTracer tracer;
  tracer.add_sink(accountant);
  policy::ProactivePolicy policy;
  sim::SimOptions options;
  options.mode = sim::ReplayMode::kOpenLoop;
  options.tracer = &tracer;
  PreactRun run;
  run.sim = sim::simulate(t, params(), policy, options);
  tracer.close();
  run.report = accountant.report();
  return run;
}

trace::Trace preact_base(TimeMs compute_ms) {
  trace::Trace t;
  t.total_disks = 1;
  t.compute_total_ms = compute_ms;
  t.requests.push_back(make_request(100.0, 0, 0, kib(64)));
  t.power_events.push_back(
      make_power(1'000.0, ir::PowerDirective::Kind::kSpinDown, 0));
  return t;
}

TEST(Preactivation, TimelySpinUpIsAHit) {
  // Spin-up at 5 s is ready at 15.9 s; the request lands at 20 s with
  // 4.1 s of slack.
  trace::Trace t = preact_base(25'000.0);
  t.power_events.push_back(
      make_power(5'000.0, ir::PowerDirective::Kind::kSpinUp, 0));
  t.requests.push_back(make_request(20'000.0, 0, 512, kib(64)));
  const PreactRun run = preact_run(t);
  EXPECT_EQ(run.report.issued(), 1);
  EXPECT_EQ(run.report.hits(), 1);
  EXPECT_EQ(run.report.late(), 0);
  EXPECT_EQ(run.report.wasted(), 0);
  EXPECT_EQ(run.report.demand_spin_ups(), 0);
  ASSERT_EQ(run.report.early_by_ms.count(), 1);
  EXPECT_NEAR(run.report.early_by_ms.mean(), 4'100.0, 1e-6);
}

TEST(Preactivation, InFlightSpinUpIsLate) {
  // Spin-up at 12 s is ready at 22.9 s; the request lands at 20 s and
  // stalls on the residual 2.9 s of transition.
  trace::Trace t = preact_base(30'000.0);
  t.power_events.push_back(
      make_power(12'000.0, ir::PowerDirective::Kind::kSpinUp, 0));
  t.requests.push_back(make_request(20'000.0, 0, 512, kib(64)));
  const PreactRun run = preact_run(t);
  EXPECT_EQ(run.report.issued(), 1);
  EXPECT_EQ(run.report.hits(), 0);
  EXPECT_EQ(run.report.late(), 1);
  EXPECT_EQ(run.report.wasted(), 0);
  ASSERT_EQ(run.report.late_by_ms.count(), 1);
  EXPECT_NEAR(run.report.late_by_ms.mean(), 2'900.0, 1e-6);
}

TEST(Preactivation, SpinUpWithNoRequestIsWasted) {
  trace::Trace t = preact_base(30'000.0);
  t.power_events.push_back(
      make_power(5'000.0, ir::PowerDirective::Kind::kSpinUp, 0));
  const PreactRun run = preact_run(t);
  EXPECT_EQ(run.report.issued(), 1);
  EXPECT_EQ(run.report.hits(), 0);
  EXPECT_EQ(run.report.wasted(), 1);
}

TEST(Preactivation, ReSpinDownBeforeRequestIsWasted) {
  // The pre-activation completes at 15.9 s but the compiler spins the
  // disk back down at 18 s; the request at 40 s pays a demand spin-up.
  trace::Trace t = preact_base(60'000.0);
  t.power_events.push_back(
      make_power(5'000.0, ir::PowerDirective::Kind::kSpinUp, 0));
  t.power_events.push_back(
      make_power(18'000.0, ir::PowerDirective::Kind::kSpinDown, 0));
  t.requests.push_back(make_request(40'000.0, 0, 512, kib(64)));
  const PreactRun run = preact_run(t);
  EXPECT_EQ(run.report.issued(), 1);
  EXPECT_EQ(run.report.hits(), 0);
  EXPECT_EQ(run.report.wasted(), 1);
  EXPECT_EQ(run.report.demand_spin_ups(), 1);
  EXPECT_EQ(run.sim.disks[0].demand_spin_ups, 1);
}

TEST(Preactivation, DemandWakeWithoutPreactivation) {
  trace::Trace t = preact_base(40'000.0);
  t.requests.push_back(make_request(25'000.0, 0, 512, kib(64)));
  const PreactRun run = preact_run(t);
  EXPECT_EQ(run.report.issued(), 0);
  EXPECT_EQ(run.report.demand_spin_ups(), 1);
  EXPECT_EQ(run.report.hits(), 0);
  EXPECT_EQ(run.report.wasted(), 0);
}

TEST(Preactivation, EnergyMatrixReconcilesWithBreakdown) {
  // The matrix rebuilt from the state-segment stream must agree with the
  // simulator's own EnergyBreakdown bit for bit: segments are emitted with
  // the exact (dt, energy) values the breakdown accumulates, in the same
  // order, so even the floating-point sums are identical.
  const trace::Trace t = gap_trace(3, 6, 30'000.0);
  obs::PreactivationAccountant accountant;
  obs::EventTracer tracer;
  tracer.add_sink(accountant);
  policy::TpmPolicy policy;
  sim::SimOptions options;
  options.tracer = &tracer;
  const sim::SimReport report = sim::simulate(t, params(), policy, options);
  tracer.close();
  const obs::PreactivationReport& pr = accountant.report();
  ASSERT_EQ(pr.energy.size(), report.disks.size());
  for (std::size_t d = 0; d < report.disks.size(); ++d) {
    const disk::EnergyBreakdown& b = report.disks[d].breakdown;
    const obs::PreactivationReport::StateEnergy& m = pr.energy[d];
    EXPECT_EQ(m.ms[0], b.active_ms);
    EXPECT_EQ(m.ms[1], b.idle_ms);
    EXPECT_EQ(m.ms[2], b.standby_ms);
    EXPECT_EQ(m.ms[3], b.spin_down_ms);
    EXPECT_EQ(m.ms[4], b.spin_up_ms);
    EXPECT_EQ(m.ms[5], b.rpm_shift_ms);
    EXPECT_EQ(m.j[0], b.active_j);
    EXPECT_EQ(m.j[1], b.idle_j);
    EXPECT_EQ(m.j[2], b.standby_j);
    EXPECT_EQ(m.j[3], b.spin_down_j);
    EXPECT_EQ(m.j[4], b.spin_up_j);
    EXPECT_EQ(m.j[5], b.rpm_shift_j);
  }
  EXPECT_NE(pr.to_string().find("pre-activation accounting"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, CounterHandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::Counter& c = reg.counter("a.count");
  c.fetch_add(3, std::memory_order_relaxed);
  // Creating many more metrics must not invalidate the handle.
  for (int i = 0; i < 100; ++i) {
    reg.add("filler." + std::to_string(i));
  }
  c.fetch_add(4, std::memory_order_relaxed);
  EXPECT_EQ(reg.snapshot().counters.at("a.count"), 7);
  EXPECT_EQ(&reg.counter("a.count"), &c);
}

TEST(MetricsRegistry, GaugesLastWriteWins) {
  obs::MetricsRegistry reg;
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", 2.5);
  EXPECT_EQ(reg.snapshot().gauges.at("g"), 2.5);
}

TEST(MetricsRegistry, HistogramStats) {
  obs::MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.observe("h", static_cast<double>(i));
  }
  const obs::MetricsRegistry::HistogramStats h =
      reg.snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 100);
  EXPECT_NEAR(h.mean, 50.5, 1e-9);
  EXPECT_GT(h.p95, h.p50);
  EXPECT_GE(h.p99, h.p95);
  EXPECT_EQ(h.max, 100.0);
}

TEST(MetricsRegistry, JsonIsDeterministicAndSorted) {
  obs::MetricsRegistry reg;
  reg.add("z.last", 2);
  reg.add("a.first", 1);
  reg.set_gauge("mid", 0.5);
  reg.observe("h", 10.0);
  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json());
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, ResetForTestingKeepsHandlesValid) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::Counter& c = reg.counter("keep");
  c.fetch_add(9, std::memory_order_relaxed);
  reg.set_gauge("g", 4.0);
  reg.observe("h", 2.0);
  reg.reset_for_testing();
  const obs::MetricsRegistry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("keep"), 0);   // name survives, value zeroed
  EXPECT_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0);
  c.fetch_add(1, std::memory_order_relaxed);  // handle still valid
  EXPECT_EQ(reg.snapshot().counters.at("keep"), 1);
}

TEST(MetricsRegistry, RecordReportMetrics) {
  obs::MetricsRegistry reg;
  const trace::Trace t = gap_trace(2, 4, 30'000.0);
  policy::TpmPolicy policy;
  sim::SimOptions options;
  options.capture_responses = true;
  const sim::SimReport report = sim::simulate(t, params(), policy, options);
  obs::record_report_metrics(reg, report);
  const obs::MetricsRegistry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("sim.reports_recorded"), 1);
  EXPECT_EQ(snap.counters.at("sim.report_requests"), report.requests);
  EXPECT_EQ(snap.counters.at("sim.spin_up_retries"), 0);
  EXPECT_EQ(snap.gauges.at("sim.last_energy_j"), report.total_energy);
  EXPECT_EQ(snap.histograms.at("sim.response_ms").count, report.requests);
}

}  // namespace
}  // namespace sdpm
