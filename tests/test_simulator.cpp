// Closed-loop simulator: think time, blocking I/O, energy accounting.
#include <gtest/gtest.h>

#include "policy/base.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace sdpm::sim {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Trace empty_trace(int disks, TimeMs compute_ms) {
  trace::Trace t;
  t.total_disks = disks;
  t.compute_total_ms = compute_ms;
  return t;
}

trace::Request make_request(TimeMs arrival, int disk, BlockNo sector,
                            Bytes size) {
  trace::Request r;
  r.arrival_ms = arrival;
  r.disk = disk;
  r.start_sector = sector;
  r.size_bytes = size;
  return r;
}

TEST(Simulator, NoRequestsPureIdle) {
  const trace::Trace t = empty_trace(4, 10'000.0);
  policy::BasePolicy policy;
  const SimReport report = simulate(t, params(), policy);
  EXPECT_EQ(report.requests, 0);
  EXPECT_NEAR(report.execution_ms, 10'000.0, 1e-9);
  EXPECT_NEAR(report.total_energy, 4 * 10.2 * 10.0, 1e-6);
  EXPECT_NEAR(report.io_stall_ms, 0.0, 1e-9);
}

TEST(Simulator, BlockingIoExtendsExecution) {
  trace::Trace t = empty_trace(1, 1'000.0);
  t.requests.push_back(make_request(500.0, 0, 0, kib(64)));
  policy::BasePolicy policy;
  const SimReport report =
      simulate(t, params(), policy, SimOptions{.capture_responses = true});
  const TimeMs service = params().service_time(kib(64), 10, false);
  EXPECT_NEAR(report.execution_ms, 1'000.0 + service, 1e-9);
  EXPECT_NEAR(report.io_stall_ms, service, 1e-9);
  ASSERT_EQ(report.responses.size(), 1u);
  EXPECT_NEAR(report.responses[0], service, 1e-9);
}

TEST(Simulator, StallsCascadeThroughThinkTimes) {
  trace::Trace t = empty_trace(1, 1'000.0);
  // Two requests 100 ms of compute apart.
  t.requests.push_back(make_request(100.0, 0, 0, kib(64)));
  t.requests.push_back(make_request(200.0, 0, 999'999, kib(64)));
  policy::BasePolicy policy;
  const SimReport report = simulate(
      t, params(), policy, SimOptions{.capture_busy_periods = true});
  const TimeMs service = params().service_time(kib(64), 10, false);
  // Second request arrives at (100 + service) + 100.
  EXPECT_NEAR(report.disks[0].busy_periods[1].start, 200.0 + service, 1e-9);
  EXPECT_NEAR(report.execution_ms, 1'000.0 + 2 * service, 1e-9);
}

TEST(Simulator, EnergyMatchesDurationTimesPower) {
  trace::Trace t = empty_trace(2, 5'000.0);
  t.requests.push_back(make_request(1'000.0, 0, 0, kib(64)));
  policy::BasePolicy policy;
  const SimReport report = simulate(t, params(), policy);
  const TimeMs service = params().service_time(kib(64), 10, false);
  const TimeMs end = 5'000.0 + service;
  const Joules expected_disk0 =
      joules_from_watt_ms(10.2, end - service) +
      joules_from_watt_ms(13.5, service);
  const Joules expected_disk1 = joules_from_watt_ms(10.2, end);
  EXPECT_NEAR(report.disks[0].breakdown.total_j(), expected_disk0, 1e-6);
  EXPECT_NEAR(report.disks[1].breakdown.total_j(), expected_disk1, 1e-6);
  EXPECT_NEAR(report.total_energy, expected_disk0 + expected_disk1, 1e-6);
}

TEST(Simulator, PerDiskTimeAccountingExhaustive) {
  trace::Trace t = empty_trace(3, 2'000.0);
  t.requests.push_back(make_request(100.0, 0, 0, kib(16)));
  t.requests.push_back(make_request(300.0, 2, 0, kib(16)));
  policy::BasePolicy policy;
  const SimReport report = simulate(t, params(), policy);
  for (const DiskReport& d : report.disks) {
    EXPECT_NEAR(d.breakdown.total_ms(), report.execution_ms, 1e-6);
  }
}

TEST(Simulator, RejectsUnknownDisk) {
  trace::Trace t = empty_trace(2, 1'000.0);
  t.requests.push_back(make_request(0.0, 5, 0, kib(16)));
  policy::BasePolicy policy;
  Simulator sim(t, params(), policy);
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulator, RunOnlyOnce) {
  const trace::Trace t = empty_trace(1, 100.0);
  policy::BasePolicy policy;
  Simulator sim(t, params(), policy);
  sim.run();
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulator, PowerEventsReachPolicy) {
  struct CountingPolicy final : PowerPolicy {
    int events = 0;
    void on_power_event(DiskUnit&, TimeMs,
                        const ir::PowerDirective&) override {
      ++events;
    }
    const char* name() const override { return "count"; }
  };
  trace::Trace t = empty_trace(2, 1'000.0);
  trace::PowerEvent ev;
  ev.app_time_ms = 500.0;
  ev.directive = ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, 1, 0};
  t.power_events.push_back(ev);
  CountingPolicy policy;
  simulate(t, params(), policy);
  EXPECT_EQ(policy.events, 1);
}

TEST(Simulator, PowerEventBeforeRequestAtSameTime) {
  struct OrderPolicy final : PowerPolicy {
    std::vector<char> order;
    void on_power_event(DiskUnit&, TimeMs,
                        const ir::PowerDirective&) override {
      order.push_back('p');
    }
    void before_service(DiskUnit&, TimeMs) override { order.push_back('r'); }
    const char* name() const override { return "order"; }
  };
  trace::Trace t = empty_trace(1, 1'000.0);
  t.requests.push_back(make_request(500.0, 0, 0, kib(16)));
  trace::PowerEvent ev;
  ev.app_time_ms = 500.0;
  ev.directive = ir::PowerDirective{ir::PowerDirective::Kind::kSpinUp, 0, 0};
  t.power_events.push_back(ev);
  OrderPolicy policy;
  simulate(t, params(), policy);
  ASSERT_EQ(policy.order.size(), 2u);
  EXPECT_EQ(policy.order[0], 'p');
  EXPECT_EQ(policy.order[1], 'r');
}

TEST(Simulator, ReportNamesPolicy) {
  const trace::Trace t = empty_trace(1, 100.0);
  policy::BasePolicy policy;
  EXPECT_EQ(simulate(t, params(), policy).policy_name, "Base");
}

}  // namespace
}  // namespace sdpm::sim
