// Static schedule analyzer: diagnostics framework, rule catalog, renderers,
// baseline suppression, and one firing test per rule over seeded mutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/mutate.h"
#include "analysis/registry.h"
#include "analysis/verify_schedule.h"
#include "core/schedule.h"
#include "ir/builder.h"
#include "ir/dependence.h"
#include "layout/layout_table.h"
#include "policy/oracle.h"
#include "trace/iteration_space.h"
#include "util/error.h"

namespace sdpm::analysis {
namespace {

using core::GapPlan;
using core::PowerMode;
using core::SchedulerOptions;
using core::ScheduleResult;
using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

// Same fixture as test_schedule.cpp: two nests over private arrays, so each
// disk has one ~52 s cross-phase gap the scheduler acts on.
struct TwoPhase {
  ir::Program program;
  std::vector<layout::Striping> striping;

  explicit TwoPhase(double cycles_per_iter = 75'000.0) {
    ProgramBuilder pb("twophase");
    const ArrayId a = pb.array("A", {64 * 8192});
    const ArrayId b = pb.array("B", {64 * 8192});
    pb.nest("phase1")
        .loop("i", 0, 64 * 8192)
        .stmt(cycles_per_iter)
        .read(a, {sym("i")})
        .done();
    pb.nest("phase2")
        .loop("i", 0, 64 * 8192)
        .stmt(cycles_per_iter)
        .read(b, {sym("i")})
        .done();
    program = pb.build();
    striping = {layout::Striping{0, 1, kib(64)},
                layout::Striping{1, 1, kib(64)}};
  }
};

SchedulerOptions scheduler_options(PowerMode mode) {
  SchedulerOptions o;
  o.mode = mode;
  o.access.cache_bytes = 0;
  return o;
}

AnalyzeOptions analyze_options() {
  AnalyzeOptions o;
  o.access.cache_bytes = 0;  // must match the scheduler's access model
  return o;
}

ScheduleResult scheduled(const TwoPhase& tp, const layout::LayoutTable& table,
                         PowerMode mode) {
  return core::schedule_power_calls(tp.program, table, params(),
                                    scheduler_options(mode));
}

int count_rule(const AnalysisReport& report, std::string_view rule) {
  int n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Rule catalog and severity mapping

TEST(Catalog, SeverityDerivedFromRuleLetter) {
  EXPECT_EQ(severity_of_rule("SDPM-E030"), Severity::kError);
  EXPECT_EQ(severity_of_rule("SDPM-W041"), Severity::kWarning);
  EXPECT_EQ(severity_of_rule("SDPM-N043"), Severity::kNote);
  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kWarning), "warning");
  EXPECT_STREQ(to_string(Severity::kNote), "note");
}

TEST(Catalog, EntriesAreConsistentAndUnique) {
  const auto catalog = rule_catalog();
  EXPECT_GE(catalog.size(), 28u);
  std::vector<int> numbers;
  for (const RuleInfo& rule : catalog) {
    EXPECT_EQ(severity_of_rule(rule.id), rule.severity) << rule.id;
    EXPECT_NE(std::string(rule.pass), "") << rule.id;
    EXPECT_NE(std::string(rule.summary), "") << rule.id;
    // "SDPM-X###": the numeric part orders the catalog and is unique.
    numbers.push_back(std::stoi(std::string(rule.id).substr(6)));
  }
  EXPECT_TRUE(std::is_sorted(numbers.begin(), numbers.end()));
  EXPECT_EQ(std::adjacent_find(numbers.begin(), numbers.end()),
            numbers.end())
      << "duplicate rule number";
}

TEST(Diagnostic, FingerprintIgnoresDirectiveIndex) {
  const Diagnostic a = make_diagnostic("SDPM-E040", "preactivation",
                                       DiagLocation{1, 0, 42, 7}, "m");
  const Diagnostic b = make_diagnostic("SDPM-E040", "preactivation",
                                       DiagLocation{1, 0, 42, 9}, "m");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), "SDPM-E040|d1|n0|i42");
}

// ---------------------------------------------------------------------------
// Renderers: golden text and byte-stable JSON

AnalysisReport golden_report() {
  AnalysisReport report;
  report.passes_run = {"wellformed", "break-even"};
  report.directives_checked = 2;
  report.diagnostics.push_back(
      make_diagnostic("SDPM-E030", "break-even", DiagLocation{0, 1, 42, 3},
                      "spin_down leaves 1.0 ms of the gap"));
  report.diagnostics.push_back(
      make_diagnostic("SDPM-W081", "coverage", DiagLocation{2, -1, -1, -1},
                      "disk 2 holds data but is never accessed"));
  report.diagnostics.push_back(make_diagnostic(
      "SDPM-N072", "dependence", DiagLocation{}, "legality \"unproven\""));
  report.sort();
  return report;
}

TEST(Render, GoldenText) {
  const AnalysisReport report = golden_report();
  EXPECT_EQ(render_text(report),
            "SDPM-N072 note [dependence] <program>: legality \"unproven\"\n"
            "SDPM-E030 error [break-even] disk 0 nest 1 iter 42 directive 3: "
            "spin_down leaves 1.0 ms of the gap\n"
            "SDPM-W081 warning [coverage] disk 2: disk 2 holds data but is "
            "never accessed\n"
            "analyze: 1 error(s), 1 warning(s), 1 note(s); 2 directive(s) "
            "checked; 0 suppressed\n");
}

TEST(Render, GoldenJson) {
  const AnalysisReport report = golden_report();
  const std::string json = render_json(report);
  EXPECT_EQ(
      json,
      "{\"version\":2,\"tool\":\"sdpm-analyze\","
      "\"summary\":{\"directives\":2,\"errors\":1,\"warnings\":1,"
      "\"notes\":1,\"suppressed\":0,\"fixits\":0},"
      "\"passes\":[\"break-even\",\"wellformed\"],\"diagnostics\":[\n"
      " {\"rule\":\"SDPM-N072\",\"severity\":\"note\","
      "\"pass\":\"dependence\",\"disk\":-1,\"nest\":-1,\"iteration\":-1,"
      "\"directive\":-1,\"message\":\"legality \\\"unproven\\\"\"},\n"
      " {\"rule\":\"SDPM-E030\",\"severity\":\"error\","
      "\"pass\":\"break-even\",\"disk\":0,\"nest\":1,\"iteration\":42,"
      "\"directive\":3,\"message\":\"spin_down leaves 1.0 ms of the "
      "gap\"},\n"
      " {\"rule\":\"SDPM-W081\",\"severity\":\"warning\","
      "\"pass\":\"coverage\",\"disk\":2,\"nest\":-1,\"iteration\":-1,"
      "\"directive\":-1,\"message\":\"disk 2 holds data but is never "
      "accessed\"}\n"
      "]}\n");
  // Rendering is a pure function of the report: byte-stable across calls.
  EXPECT_EQ(json, render_json(report));
}

TEST(Render, EmptyReportJson) {
  AnalysisReport report;
  report.passes_run = {"wellformed"};
  EXPECT_EQ(render_json(report),
            "{\"version\":2,\"tool\":\"sdpm-analyze\","
            "\"summary\":{\"directives\":0,\"errors\":0,\"warnings\":0,"
            "\"notes\":0,\"suppressed\":0,\"fixits\":0},"
            "\"passes\":[\"wellformed\"],\"diagnostics\":[]}\n");
}

TEST(Render, JsonIsStableAcrossPassRegistrationOrder) {
  // The "passes" array renders sorted, so two registries that run the
  // same passes in different orders produce byte-identical output.
  AnalysisReport a = golden_report();
  AnalysisReport b = golden_report();
  b.passes_run = {"break-even", "wellformed"};
  EXPECT_EQ(render_json(a), render_json(b));
}

TEST(Render, GoldenFixitJson) {
  AnalysisReport report;
  report.passes_run = {"redundancy"};
  report.directives_checked = 1;
  Diagnostic diag = make_diagnostic("SDPM-W020", "redundancy",
                                    DiagLocation{0, 0, 7, 2},
                                    "set_RPM(10) is a no-op");
  core::ScheduleEdit edit;
  edit.kind = core::ScheduleEdit::Kind::kRemoveDirective;
  edit.directive_index = 2;
  diag.fixits.push_back(FixIt{"SDPM-F003", "remove the call", {edit}});
  report.diagnostics.push_back(std::move(diag));
  report.sort();
  EXPECT_EQ(
      render_json(report),
      "{\"version\":2,\"tool\":\"sdpm-analyze\","
      "\"summary\":{\"directives\":1,\"errors\":0,\"warnings\":1,"
      "\"notes\":0,\"suppressed\":0,\"fixits\":1},"
      "\"passes\":[\"redundancy\"],\"diagnostics\":[\n"
      " {\"rule\":\"SDPM-W020\",\"severity\":\"warning\","
      "\"pass\":\"redundancy\",\"disk\":0,\"nest\":0,\"iteration\":7,"
      "\"directive\":2,\"message\":\"set_RPM(10) is a no-op\","
      "\"fixits\":[{\"id\":\"SDPM-F003\",\"title\":\"remove the call\","
      "\"edits\":[{\"kind\":\"remove_directive\",\"directive\":2}]}]}\n"
      "]}\n");
}

// ---------------------------------------------------------------------------
// Baseline suppression

TEST(Baseline, RoundTripSuppressesEverything) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  std::vector<layout::Striping> striping = tp.striping;
  apply_mutation(Mutation::kLatePreactivation, result, striping, params());
  AnalysisReport before = analyze(result, table, params(), analyze_options());
  ASSERT_GT(before.diagnostics.size(), 0u);

  std::istringstream in(to_baseline(before));
  const Baseline baseline = Baseline::parse(in);
  AnalysisReport after = analyze(result, table, params(), analyze_options());
  const int total = static_cast<int>(after.diagnostics.size());
  apply_baseline(after, baseline);
  EXPECT_TRUE(after.diagnostics.empty());
  EXPECT_EQ(after.suppressed, total);
}

TEST(Baseline, ParseIgnoresCommentsAndBlanks) {
  std::istringstream in(
      "# comment\n\n  SDPM-E040|d1|n0|i42  \nSDPM-E040|d1|n0|i42\r\n");
  const Baseline baseline = Baseline::parse(in);
  EXPECT_EQ(baseline.size(), 1u);
  EXPECT_TRUE(baseline.contains("SDPM-E040|d1|n0|i42"));
  EXPECT_FALSE(baseline.contains("SDPM-E040|d1|n0|i43"));
}

// ---------------------------------------------------------------------------
// The analyzer accepts the scheduler's own output

TEST(Analyze, CleanOnSchedulerOutput) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  for (const PowerMode mode : {PowerMode::kTpm, PowerMode::kDrpm}) {
    const ScheduleResult result = scheduled(tp, table, mode);
    const AnalysisReport report =
        analyze(result, table, params(), analyze_options());
    EXPECT_TRUE(report.diagnostics.empty())
        << render_text(report);
    EXPECT_EQ(report.passes_run.size(), 8u);
    EXPECT_EQ(report.directives_checked, result.calls_inserted);
    EXPECT_FALSE(report.worst().has_value());
  }
}

// ---------------------------------------------------------------------------
// check_schedule collects every violation instead of stopping at the first

TEST(Compat, CheckScheduleCollectsEveryViolation) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  // Seed two independent violations: a duplicated spin_down (E004) and a
  // directive on a disk outside the layout (E002).
  for (const ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinDown) {
      result.program.directives.push_back(pd);
      break;
    }
  }
  result.program.sort_directives();
  // The trailing directive is not part of the duplicated pair.
  result.program.directives.back().directive.disk = 9;
  const std::vector<Diagnostic> diags = check_schedule(result, 2, params());
  int e002 = 0, e004 = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == "SDPM-E002") ++e002;
    if (d.rule == "SDPM-E004") ++e004;
  }
  EXPECT_GE(e002, 1);
  EXPECT_GE(e004, 1);
}

TEST(Compat, ReturnsDirectiveCountOnSuccess) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  EXPECT_TRUE(check_schedule(result, 2, params()).empty());
  EXPECT_EQ(result.calls_inserted,
            static_cast<std::int64_t>(result.program.directives.size()));
}

// ---------------------------------------------------------------------------
// Well-formedness rules (SDPM-E001..E009)

TEST(Rule, E001OutOfOrder) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  auto& dirs = result.program.directives;
  ASSERT_GE(dirs.size(), 2u);
  // Swap two directives at different globals without re-sorting.
  for (std::size_t i = 1; i < dirs.size(); ++i) {
    if (space.global_of(dirs[i].point) != space.global_of(dirs[0].point)) {
      std::swap(dirs[0], dirs[i]);
      break;
    }
  }
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E001")) << render_text(report);
}

TEST(Rule, E002ForeignDisk) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  ASSERT_FALSE(result.program.directives.empty());
  result.program.directives[0].directive.disk = 9;
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E002")) << render_text(report);
}

TEST(Rule, E003OrphanDirective) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  for (GapPlan& plan : result.plans) {
    plan.begin_iter = 0;
    plan.end_iter = 0;
  }
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E003")) << render_text(report);
}

TEST(Rule, E004DoubleSpinDown) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  for (const ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinDown) {
      result.program.directives.push_back(pd);
      break;
    }
  }
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E004")) << render_text(report);
}

TEST(Rule, E005SpinUpWhileActive) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  bool found = false;
  for (const ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinUp) {
      result.program.directives.push_back(pd);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E005")) << render_text(report);
}

TEST(Rule, E006SetRpmInStandby) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  bool found = false;
  for (ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSpinUp) {
      pd.directive.kind = ir::PowerDirective::Kind::kSetRpm;
      pd.directive.rpm_level = params().max_level();
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E006")) << render_text(report);
}

TEST(Rule, E007LevelOutsideLadder) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  bool found = false;
  for (ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSetRpm) {
      pd.directive.rpm_level = 99;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E007")) << render_text(report);
}

TEST(Rule, E008LeftDegradedWithoutTrailingGap) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  // Forget every plan: directives are orphans (E003) and the disks end in
  // standby with no declared trailing gap (E008).
  result.plans.clear();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E003")) << render_text(report);
  EXPECT_TRUE(report.has("SDPM-E008")) << render_text(report);
}

TEST(Rule, E009PlanOverlapsActiveIterations) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  // A claimed idle period spanning the whole program necessarily covers
  // disk 0's phase-1 accesses.
  result.plans.push_back(GapPlan{0, 0, space.total(), 1.0, -1, false});
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E009")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Redundancy rules (SDPM-W020, W021, E022)

TEST(Rule, W020NoOpSetRpm) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  bool found = false;
  for (const ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSetRpm) {
      result.program.directives.push_back(pd);  // second call is a no-op
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-W020")) << render_text(report);
}

TEST(Rule, W021OverriddenDegrade) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  // A second spin_down inside an acted gap overrides the first before any
  // use (also E004: the disk is already in standby).
  bool found = false;
  for (const GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter <= plan.begin_iter + 2) continue;
    result.program.directives.push_back(
        {space.point_of(plan.begin_iter + 1),
         {ir::PowerDirective::Kind::kSpinDown, plan.disk, 0}});
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-W021")) << render_text(report);
}

TEST(Rule, E022MixedModesInOneGap) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  bool found = false;
  for (const GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter <= plan.begin_iter + 2) continue;
    result.program.directives.push_back(
        {space.point_of(plan.begin_iter + 1),
         {ir::PowerDirective::Kind::kSetRpm, plan.disk, 0}});
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E022")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Break-even rules (SDPM-E030, W031)

TEST(Rule, E030ShortGapSpinDown) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  std::vector<layout::Striping> striping = tp.striping;
  apply_mutation(Mutation::kShortGapSpinDown, result, striping, params());
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E030")) << render_text(report);
  EXPECT_EQ(report.worst(), Severity::kError);
}

TEST(Rule, W031ProfitableGapUnexploited) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  // Un-act one acted plan: drop its directives and clear the flag.  The
  // profitability rule the scheduler itself used now flags the gap.
  bool found = false;
  for (GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter >= space.total()) continue;
    std::erase_if(result.program.directives,
                  [&](const ir::PlacedDirective& pd) {
                    if (pd.directive.disk != plan.disk) return false;
                    const std::int64_t g = space.global_of(pd.point);
                    return g >= plan.begin_iter && g <= plan.end_iter;
                  });
    plan.acted = false;
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-W031")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Pre-activation rules (SDPM-E040, W041, W042, N043)

TEST(Rule, E040LatePreactivation) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  std::vector<layout::Striping> striping = tp.striping;
  apply_mutation(Mutation::kLatePreactivation, result, striping, params());
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E040")) << render_text(report);
}

TEST(Rule, W041DemandWakePredicted) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  SchedulerOptions o = scheduler_options(PowerMode::kTpm);
  o.preactivate = false;
  const ScheduleResult result =
      core::schedule_power_calls(tp.program, table, params(), o);
  const trace::IterationSpace space(result.program);
  int expected = 0;
  for (const GapPlan& plan : result.plans) {
    if (plan.acted && plan.end_iter < space.total()) ++expected;
  }
  ASSERT_GE(expected, 1);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_EQ(count_rule(report, "SDPM-W041"), expected) << render_text(report);
}

TEST(Rule, W042WastedTrailingPreactivation) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  // Wake a disk inside its trailing gap: the program ends before any use.
  bool found = false;
  for (const GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter < space.total()) continue;
    result.program.directives.push_back(
        {space.point_of(plan.begin_iter + 1),
         {ir::PowerDirective::Kind::kSpinUp, plan.disk, 0}});
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_EQ(count_rule(report, "SDPM-W042"), 1) << render_text(report);
}

TEST(Rule, N043OverlyConservativeLead) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  const trace::IterationSpace space(result.program);
  // Move a pre-activation to the start of its ~52 s gap: it completes tens
  // of seconds before the access, far more than one transition early.
  bool found = false;
  for (ir::PlacedDirective& pd : result.program.directives) {
    if (pd.directive.kind != ir::PowerDirective::Kind::kSpinUp) continue;
    const std::int64_t g = space.global_of(pd.point);
    for (const GapPlan& plan : result.plans) {
      if (plan.disk != pd.directive.disk || g < plan.begin_iter ||
          g > plan.end_iter || plan.end_iter >= space.total()) {
        continue;
      }
      pd.point = space.point_of(plan.begin_iter + 1);
      found = true;
      break;
    }
    if (found) break;
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-N043")) << render_text(report);
  EXPECT_FALSE(report.has("SDPM-E040")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Misfit rules (SDPM-E050, W051, W052)

TEST(Rule, E050LevelTooSlowForRequestRate) {
  // 75 cycles/iteration at 750 MHz = 0.1 us: a 64 KiB block every 0.82 ms,
  // faster than any RPM level can serve, so the required level is the top.
  ProgramBuilder pb("hot");
  const ArrayId a = pb.array("A", {64 * 8192});
  pb.nest("hot").loop("i", 0, 64 * 8192).stmt(75.0).read(a, {sym("i")}).done();
  ScheduleResult result;
  result.program = pb.build();
  const std::vector<layout::Striping> striping = {layout::Striping{0, 1,
                                                                   kib(64)}};
  const layout::LayoutTable table(result.program, striping, 1);
  const trace::IterationSpace space(result.program);
  const TimeMs interarrival = 8192 * (75.0 / 750e6) * 1e3;
  ASSERT_EQ(policy::min_serviceable_level(kib(64), interarrival, params()),
            params().max_level());
  // Degrade to the bottom level inside the first intra-phase gap and never
  // restore: the next active interval is served at level 0.
  result.program.directives.push_back(
      {space.point_of(1), {ir::PowerDirective::Kind::kSetRpm, 0, 0}});
  result.plans.push_back(GapPlan{0, 1, 8192, 0.8, 0, true});
  result.calls_inserted = 1;
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E050")) << render_text(report);
}

TEST(Rule, W051RoundTripDoesNotFit) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  bool found = false;
  for (GapPlan& plan : result.plans) {
    if (!plan.acted || plan.level < 0 || plan.level >= params().max_level()) {
      continue;
    }
    plan.estimated_ms = 1.0;  // no level's round trip fits 1 ms
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-W051")) << render_text(report);
}

TEST(Rule, W052ActiveIntervalBelowFullSpeed) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  const trace::IterationSpace space(result.program);
  // Drop the restore of one acted mid-program gap: the next active interval
  // starts below full speed (still serviceable at TwoPhase's request rate).
  bool found = false;
  for (const GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter >= space.total() ||
        plan.level >= params().max_level()) {
      continue;
    }
    const std::size_t before = result.program.directives.size();
    std::erase_if(result.program.directives,
                  [&](const ir::PlacedDirective& pd) {
                    if (pd.directive.disk != plan.disk ||
                        pd.directive.kind !=
                            ir::PowerDirective::Kind::kSetRpm ||
                        pd.directive.rpm_level != params().max_level()) {
                      return false;
                    }
                    const std::int64_t g = space.global_of(pd.point);
                    return g >= plan.begin_iter && g <= plan.end_iter;
                  });
    if (result.program.directives.size() < before) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-W052")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Fission rule (SDPM-E060)

TEST(Rule, E060OverlappingFissionGroups) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  std::vector<layout::Striping> striping = tp.striping;
  apply_mutation(Mutation::kOverlappingFission, result, striping, params());
  const layout::LayoutTable mutated(result.program, striping, 2);
  AnalyzeOptions options = analyze_options();
  options.transform = core::Transformation::kLFDL;
  const AnalysisReport report = analyze(result, mutated, params(), options);
  EXPECT_TRUE(report.has("SDPM-E060")) << render_text(report);
}

TEST(Rule, E060SilentWithDisjointGroups) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result = scheduled(tp, table, PowerMode::kDrpm);
  AnalyzeOptions options = analyze_options();
  options.transform = core::Transformation::kLFDL;
  const AnalysisReport report = analyze(result, table, params(), options);
  EXPECT_FALSE(report.has("SDPM-E060")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Dependence rules (SDPM-E070, N071, N072) and the solver itself

ScheduleResult bare_schedule(ir::Program program) {
  ScheduleResult result;
  result.program = std::move(program);
  return result;
}

ir::Program stencil_program() {
  ProgramBuilder pb("stencil");
  const ArrayId a = pb.array("A", {64, 64});
  pb.nest("sweep")
      .loop("i", 1, 63)
      .loop("j", 0, 63)
      .stmt(1'000.0)
      .write(a, {sym("i"), sym("j")})
      .read(a, {sym("i") - 1, sym("j") + 1})
      .done();
  return pb.build();
}

TEST(Dependence, AntiDiagonalStencilForbidsPermutation) {
  const ir::Program program = stencil_program();
  const ir::DependenceSummary summary =
      ir::uniform_dependences(program.nests[0], program.arrays);
  ASSERT_GE(summary.dependences.size(), 1u);
  bool unsafe = false;
  for (const ir::Dependence& dep : summary.dependences) {
    if (!ir::permits_permutation(dep)) unsafe = true;
  }
  EXPECT_TRUE(unsafe);
  EXPECT_EQ(summary.unanalyzed_pairs, 0);
}

TEST(Dependence, ForwardStencilPermitsPermutation) {
  ProgramBuilder pb("forward");
  const ArrayId a = pb.array("A", {64, 64});
  pb.nest("sweep")
      .loop("i", 1, 64)
      .loop("j", 1, 64)
      .stmt(1'000.0)
      .write(a, {sym("i"), sym("j")})
      .read(a, {sym("i") - 1, sym("j") - 1})
      .done();
  const ir::Program program = pb.build();
  const ir::DependenceSummary summary =
      ir::uniform_dependences(program.nests[0], program.arrays);
  ASSERT_GE(summary.dependences.size(), 1u);
  for (const ir::Dependence& dep : summary.dependences) {
    EXPECT_TRUE(ir::permits_permutation(dep));
    EXPECT_FALSE(dep.loop_independent());
  }
}

TEST(Dependence, IdenticalSubscriptsAreLoopIndependent) {
  ProgramBuilder pb("copy");
  const ArrayId a = pb.array("A", {64, 64});
  pb.nest("sweep")
      .loop("i", 0, 64)
      .loop("j", 0, 64)
      .stmt(1'000.0)
      .write(a, {sym("i"), sym("j")})
      .stmt(1'000.0)
      .read(a, {sym("i"), sym("j")})
      .done();
  const ir::Program program = pb.build();
  const ir::DependenceSummary summary =
      ir::uniform_dependences(program.nests[0], program.arrays);
  ASSERT_GE(summary.dependences.size(), 1u);
  for (const ir::Dependence& dep : summary.dependences) {
    EXPECT_TRUE(dep.loop_independent());
    EXPECT_TRUE(ir::permits_permutation(dep));
  }
}

TEST(Dependence, NonUniformPairIsCountedNotAnalyzed) {
  ProgramBuilder pb("nonuniform");
  const ArrayId a = pb.array("A", {256});
  pb.nest("sweep")
      .loop("i", 0, 128)
      .stmt(1'000.0)
      .write(a, {sym("i")})
      .read(a, {2 * sym("i")})
      .done();
  const ir::Program program = pb.build();
  const ir::DependenceSummary summary =
      ir::uniform_dependences(program.nests[0], program.arrays);
  EXPECT_GE(summary.unanalyzed_pairs, 1);
}

TEST(Rule, E070TiledUnsafeNest) {
  ScheduleResult result = bare_schedule(stencil_program());
  const std::vector<layout::Striping> striping = {layout::Striping{0, 1,
                                                                   kib(64)}};
  const layout::LayoutTable table(result.program, striping, 1);
  AnalyzeOptions options = analyze_options();
  options.transform = core::Transformation::kTL;
  const AnalysisReport report = analyze(result, table, params(), options);
  EXPECT_TRUE(report.has("SDPM-E070")) << render_text(report);
  EXPECT_FALSE(report.has("SDPM-N071"));
}

TEST(Rule, N071UntransformedUnsafeNest) {
  ScheduleResult result = bare_schedule(stencil_program());
  const std::vector<layout::Striping> striping = {layout::Striping{0, 1,
                                                                   kib(64)}};
  const layout::LayoutTable table(result.program, striping, 1);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-N071")) << render_text(report);
  EXPECT_FALSE(report.has("SDPM-E070"));
}

TEST(Rule, N072NonUniformPairs) {
  ProgramBuilder pb("nonuniform");
  const ArrayId a = pb.array("A", {256});
  pb.nest("sweep")
      .loop("i", 0, 128)
      .stmt(1'000.0)
      .write(a, {sym("i")})
      .read(a, {2 * sym("i")})
      .done();
  ScheduleResult result = bare_schedule(pb.build());
  const std::vector<layout::Striping> striping = {layout::Striping{0, 1,
                                                                   kib(64)}};
  const layout::LayoutTable table(result.program, striping, 1);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-N072")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Coverage rules (SDPM-E080, W081)

TEST(Rule, E080SubscriptOutsideExtent) {
  ProgramBuilder pb("oob");
  const ArrayId a = pb.array("A", {64});
  pb.nest("sweep")
      .loop("i", 0, 64)
      .stmt(1'000.0)
      .read(a, {sym("i") + 1})  // max subscript 64, extent 64
      .done();
  ScheduleResult result = bare_schedule(pb.build());
  const std::vector<layout::Striping> striping = {layout::Striping{0, 1,
                                                                   kib(64)}};
  const layout::LayoutTable table(result.program, striping, 1);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-E080")) << render_text(report);
}

TEST(Rule, W081DiskHoldsDataNeverAccessed) {
  ProgramBuilder pb("colddisk");
  const ArrayId a = pb.array("A", {64 * 8192});
  pb.array("B", {64 * 8192});  // laid out on disk 1, never referenced
  pb.nest("sweep")
      .loop("i", 0, 64 * 8192)
      .stmt(1'000.0)
      .read(a, {sym("i")})
      .done();
  ScheduleResult result = bare_schedule(pb.build());
  const std::vector<layout::Striping> striping = {
      layout::Striping{0, 1, kib(64)}, layout::Striping{1, 1, kib(64)}};
  const layout::LayoutTable table(result.program, striping, 2);
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  EXPECT_TRUE(report.has("SDPM-W081")) << render_text(report);
}

// ---------------------------------------------------------------------------
// Seeded bad schedule end to end: deterministic, sorted, byte-stable

TEST(Analyze, SeededMutationOutputIsDeterministic) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  ScheduleResult result = scheduled(tp, table, PowerMode::kTpm);
  std::vector<layout::Striping> striping = tp.striping;
  apply_mutation(Mutation::kLatePreactivation, result, striping, params());
  const AnalysisReport a = analyze(result, table, params(), analyze_options());
  const AnalysisReport b = analyze(result, table, params(), analyze_options());
  ASSERT_GT(a.diagnostics.size(), 0u);
  EXPECT_EQ(render_text(a), render_text(b));
  EXPECT_EQ(render_json(a), render_json(b));
  EXPECT_TRUE(a.has("SDPM-E040")) << render_text(a);
  // Sorted canonical order: disk-major, then program position.
  for (std::size_t i = 1; i < a.diagnostics.size(); ++i) {
    const DiagLocation& p = a.diagnostics[i - 1].loc;
    const DiagLocation& q = a.diagnostics[i].loc;
    EXPECT_LE(std::tie(p.disk, p.nest, p.iteration),
              std::tie(q.disk, q.nest, q.iteration));
  }
}

}  // namespace
}  // namespace sdpm::analysis
