// Multi-stream (multiprogrammed) simulation.
#include <gtest/gtest.h>

#include "policy/base.h"
#include "policy/tpm.h"
#include "sim/multi_stream.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace sdpm::sim {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Trace stream_with_requests(int disk, std::vector<TimeMs> arrivals,
                                  TimeMs compute_total, int total_disks = 2) {
  trace::Trace t;
  t.total_disks = total_disks;
  BlockNo sector = 0;
  for (const TimeMs a : arrivals) {
    trace::Request r;
    r.arrival_ms = a;
    r.disk = disk;
    r.start_sector = sector;
    r.size_bytes = kib(64);
    sector += 10'000'000;
    t.requests.push_back(r);
  }
  t.compute_total_ms = compute_total;
  return t;
}

TEST(MultiStream, SingleStreamMatchesSimulator) {
  const trace::Trace t = stream_with_requests(0, {10.0, 50.0}, 100.0);
  policy::BasePolicy p1;
  const SimReport single = simulate(t, params(), p1);
  policy::BasePolicy p2;
  const std::vector<trace::Trace> traces = {t};
  const MultiStreamReport multi =
      simulate_streams(traces, params(), p2);
  EXPECT_NEAR(multi.makespan_ms, single.execution_ms, 1e-9);
  EXPECT_NEAR(multi.total_energy, single.total_energy, 1e-6);
  EXPECT_EQ(multi.streams[0].requests, 2);
}

TEST(MultiStream, DisjointDisksRunConcurrently) {
  const trace::Trace a = stream_with_requests(0, {0.0}, 100.0);
  const trace::Trace b = stream_with_requests(1, {0.0}, 100.0);
  policy::BasePolicy policy;
  const std::vector<trace::Trace> traces = {a, b};
  const MultiStreamReport report =
      simulate_streams(traces, params(), policy);
  // Both streams finish at 100 + one service — no mutual interference.
  const TimeMs expected =
      100.0 + params().service_time(kib(64), params().max_level(), false);
  EXPECT_NEAR(report.streams[0].completion_ms, expected, 1e-9);
  EXPECT_NEAR(report.streams[1].completion_ms, expected, 1e-9);
}

TEST(MultiStream, SharedDiskContentionSerializes) {
  const trace::Trace a = stream_with_requests(0, {0.0}, 50.0);
  const trace::Trace b = stream_with_requests(0, {0.0}, 50.0);
  policy::BasePolicy policy;
  const std::vector<trace::Trace> traces = {a, b};
  const MultiStreamReport report =
      simulate_streams(traces, params(), policy);
  const TimeMs service =
      params().service_time(kib(64), params().max_level(), false);
  // One of the streams queues behind the other.
  const TimeMs slower = std::max(report.streams[0].completion_ms,
                                 report.streams[1].completion_ms);
  EXPECT_GE(slower, 50.0 + 2 * service - 1e-6);
}

TEST(MultiStream, EnergyAccountingExhaustive) {
  const trace::Trace a = stream_with_requests(0, {5.0, 25.0}, 200.0);
  const trace::Trace b = stream_with_requests(1, {10.0}, 120.0);
  policy::BasePolicy policy;
  const std::vector<trace::Trace> traces = {a, b};
  const MultiStreamReport report =
      simulate_streams(traces, params(), policy);
  Joules sum = 0;
  for (const auto& d : report.disks) {
    EXPECT_NEAR(d.breakdown.total_ms(), report.makespan_ms, 1e-6);
    sum += d.breakdown.total_j();
  }
  EXPECT_NEAR(sum, report.total_energy, 1e-9);
}

TEST(MultiStream, InterferenceSlowsTheVictim) {
  // Stream A alone vs A co-running with an I/O-heavy B on the same disk.
  const trace::Trace a =
      stream_with_requests(0, {10.0, 20.0, 30.0}, 100.0);
  trace::Trace b = stream_with_requests(0, {}, 100.0);
  for (int i = 0; i < 20; ++i) {
    trace::Request r;
    r.arrival_ms = 0.0;  // back-to-back: B keeps the disk saturated
    r.disk = 0;
    r.start_sector = 50'000'000 + i * 1'000'000;
    r.size_bytes = kib(64);
    b.requests.push_back(r);
  }
  policy::BasePolicy p1;
  const std::vector<trace::Trace> alone = {a};
  const TimeMs solo =
      simulate_streams(alone, params(), p1).streams[0].completion_ms;
  policy::BasePolicy p2;
  const std::vector<trace::Trace> both = {a, b};
  const MultiStreamReport corun = simulate_streams(both, params(), p2);
  EXPECT_GT(corun.streams[0].completion_ms, solo + 1.0);
}

TEST(MultiStream, PoliciesSeeMergedLoad) {
  // TPM sees the merged stream: with both streams hitting the same disk
  // every 8 s, the combined gaps stay below any spin-down threshold.
  const trace::Trace a =
      stream_with_requests(0, {0.0, 16'000.0, 32'000.0}, 40'000.0);
  const trace::Trace b =
      stream_with_requests(0, {8'000.0, 24'000.0}, 40'000.0);
  policy::TpmPolicy policy(10'000.0);
  const std::vector<trace::Trace> traces = {a, b};
  const MultiStreamReport report =
      simulate_streams(traces, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 0);

  // Alone, stream A's 16 s gaps would trigger that threshold.
  policy::TpmPolicy solo_policy(10'000.0);
  const std::vector<trace::Trace> alone = {a};
  const MultiStreamReport solo =
      simulate_streams(alone, params(), solo_policy);
  EXPECT_GT(solo.disks[0].spin_downs, 0);
}

TEST(MultiStream, MismatchedDiskCountsRejected) {
  const trace::Trace a = stream_with_requests(0, {0.0}, 10.0, 2);
  const trace::Trace b = stream_with_requests(0, {0.0}, 10.0, 4);
  policy::BasePolicy policy;
  const std::vector<trace::Trace> traces = {a, b};
  EXPECT_THROW(simulate_streams(traces, params(), policy), Error);
}

TEST(MultiStream, StreamNamesCarriedThrough) {
  const trace::Trace a = stream_with_requests(0, {0.0}, 10.0);
  const std::vector<trace::Trace> traces = {a, a};
  const std::vector<std::string> names = {"alpha", "beta"};
  policy::BasePolicy policy;
  const MultiStreamReport report =
      simulate_streams(traces, params(), policy, names);
  EXPECT_EQ(report.streams[0].name, "alpha");
  EXPECT_EQ(report.streams[1].name, "beta");
}

}  // namespace
}  // namespace sdpm::sim
