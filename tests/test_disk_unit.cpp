// DiskUnit: power-state machine, energy conservation, service model.
#include <gtest/gtest.h>

#include "sim/disk_unit.h"
#include "util/error.h"

namespace sdpm::sim {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

TEST(DiskUnit, IdleEnergyIntegration) {
  DiskUnit unit(params(), 0);
  unit.finish(10'000.0);  // 10 s idle at 10.2 W
  EXPECT_NEAR(unit.breakdown().idle_j, 102.0, 1e-9);
  EXPECT_NEAR(unit.breakdown().total_ms(), 10'000.0, 1e-9);
}

TEST(DiskUnit, TimeAccountingIsExhaustive) {
  DiskUnit unit(params(), 0);
  unit.serve(1'000.0, 0, kib(64));
  unit.spin_down(5'000.0);
  unit.spin_up(20'000.0);
  unit.serve(40'000.0, 512, kib(64));
  unit.finish(60'000.0);
  // Every millisecond of [0, 60000] lands in exactly one bucket.
  EXPECT_NEAR(unit.breakdown().total_ms(), 60'000.0, 1e-6);
}

TEST(DiskUnit, SpinDownThenStandbyEnergy) {
  DiskUnit unit(params(), 0);
  unit.spin_down(0.0);
  unit.finish(10'000.0);
  const auto& b = unit.breakdown();
  EXPECT_NEAR(b.spin_down_ms, 1'500.0, 1e-9);
  EXPECT_NEAR(b.spin_down_j, 13.0, 1e-9);
  EXPECT_NEAR(b.standby_ms, 8'500.0, 1e-9);
  EXPECT_NEAR(b.standby_j, 2.5 * 8.5, 1e-9);
  EXPECT_EQ(unit.commanded_spin_downs(), 1);
}

TEST(DiskUnit, SpinDownIsIdempotent) {
  DiskUnit unit(params(), 0);
  unit.spin_down(0.0);
  unit.spin_down(100.0);
  unit.spin_down(5'000.0);
  EXPECT_EQ(unit.commanded_spin_downs(), 1);
}

TEST(DiskUnit, PreactivatedSpinUpHidesLatency) {
  DiskUnit unit(params(), 0);
  unit.spin_down(0.0);
  unit.spin_up(5'000.0);  // completes at 15'900
  const auto result = unit.serve(20'000.0, 0, kib(64));
  EXPECT_FALSE(result.demand_spin_up);
  EXPECT_NEAR(result.start, 20'000.0, 1e-9);
  EXPECT_NEAR(unit.breakdown().spin_up_j, 135.0, 1e-9);
}

TEST(DiskUnit, DemandSpinUpDelaysRequest) {
  DiskUnit unit(params(), 0);
  unit.spin_down(0.0);
  const auto result = unit.serve(5'000.0, 0, kib(64));
  EXPECT_TRUE(result.demand_spin_up);
  // Spin-up starts at arrival; service only after 10.9 s.
  EXPECT_NEAR(result.start, 5'000.0 + 10'900.0, 1e-9);
  EXPECT_EQ(unit.demand_spin_ups(), 1);
}

TEST(DiskUnit, RequestDuringSpinDownWaitsOutBothTransitions) {
  DiskUnit unit(params(), 0);
  unit.spin_down(0.0);  // until 1'500
  const auto result = unit.serve(500.0, 0, kib(64));
  // Must finish spinning down, then spin up on demand.
  EXPECT_NEAR(result.start, 1'500.0 + 10'900.0, 1e-9);
  EXPECT_TRUE(result.demand_spin_up);
}

TEST(DiskUnit, ServiceTimeAndActiveEnergy) {
  DiskUnit unit(params(), 0);
  const auto result = unit.serve(100.0, 0, kib(64));
  const TimeMs expected =
      params().service_time(kib(64), params().max_level(), false);
  EXPECT_NEAR(result.completion - result.start, expected, 1e-9);
  EXPECT_NEAR(unit.breakdown().active_j,
              joules_from_watt_ms(13.5, expected), 1e-9);
}

TEST(DiskUnit, SequentialRequestsSkipPositioning) {
  DiskUnit unit(params(), 0);
  const auto first = unit.serve(0.0, 0, kib(64));
  // Next request starts exactly at the previous one's last sector + 1.
  const BlockNo next_sector = kib(64) / 512;
  const auto second = unit.serve(first.completion, next_sector, kib(64));
  const TimeMs seq =
      params().service_time(kib(64), params().max_level(), true);
  EXPECT_NEAR(second.completion - second.start, seq, 1e-9);
  // A non-contiguous third request seeks again.
  const auto third = unit.serve(second.completion, 10'000'000, kib(64));
  EXPECT_GT(third.completion - third.start, seq + 3.0);
}

TEST(DiskUnit, RpmTransitionTimeline) {
  DiskUnit unit(params(), 0);
  unit.set_rpm_level(0.0, 5);  // 5 steps = 25 ms (default 5 ms/step)
  unit.finish(1'000.0);
  const auto& b = unit.breakdown();
  EXPECT_NEAR(b.rpm_shift_ms, params().rpm_transition_time(10, 5), 1e-9);
  EXPECT_NEAR(b.rpm_shift_j, params().rpm_transition_energy(10, 5), 1e-9);
  // Idle after the transition is billed at the lower level's power.
  const TimeMs residence = 1'000.0 - b.rpm_shift_ms;
  EXPECT_NEAR(b.idle_j,
              joules_from_watt_ms(params().idle_power_at_level(5), residence),
              1e-9);
}

TEST(DiskUnit, SetRpmNoopAtSameLevel) {
  DiskUnit unit(params(), 0);
  unit.set_rpm_level(0.0, params().max_level());
  EXPECT_EQ(unit.rpm_transitions(), 0);
}

TEST(DiskUnit, ServeDuringRpmShiftWaits) {
  DiskUnit unit(params(), 0);
  unit.set_rpm_level(0.0, 0);  // 50 ms transition
  const auto result = unit.serve(10.0, 0, kib(64));
  EXPECT_TRUE(result.waited_transition);
  EXPECT_NEAR(result.start, params().rpm_transition_time(10, 0), 1e-9);
  // Service happens at the low level (slower).
  EXPECT_NEAR(result.completion - result.start,
              params().service_time(kib(64), 0, false), 1e-9);
}

TEST(DiskUnit, ChainedRpmCommandsSerialize) {
  DiskUnit unit(params(), 0);
  unit.set_rpm_level(0.0, 8);   // 2 steps, ends at 10 ms
  unit.set_rpm_level(5.0, 10);  // must wait, then 2 steps back up
  unit.finish(100.0);
  EXPECT_EQ(unit.rpm_transitions(), 2);
  EXPECT_EQ(unit.target_level(), 10);
  EXPECT_NEAR(unit.breakdown().rpm_shift_ms,
              2 * params().rpm_transition_time(10, 8), 1e-9);
}

TEST(DiskUnit, SetRpmOnStandbyDiskRejected) {
  DiskUnit unit(params(), 0);
  unit.spin_down(0.0);
  EXPECT_THROW(unit.set_rpm_level(10'000.0, 5), Error);
}

TEST(DiskUnit, TargetLevelReflectsPendingTransition) {
  DiskUnit unit(params(), 0);
  EXPECT_EQ(unit.target_level(), 10);
  unit.set_rpm_level(0.0, 3);
  EXPECT_EQ(unit.target_level(), 3);
}

TEST(DiskUnit, HeadingToStandby) {
  DiskUnit unit(params(), 0);
  EXPECT_FALSE(unit.heading_to_standby());
  unit.spin_down(0.0);
  EXPECT_TRUE(unit.heading_to_standby());
  unit.spin_up(2'000.0);
  EXPECT_FALSE(unit.heading_to_standby());
}

TEST(DiskUnit, BusyPeriodsRecorded) {
  DiskUnit unit(params(), 0);
  unit.serve(10.0, 0, kib(64));
  unit.serve(100.0, 99'999, kib(64));
  ASSERT_EQ(unit.busy_periods().size(), 2u);
  EXPECT_NEAR(unit.busy_periods()[0].start, 10.0, 1e-9);
  EXPECT_GT(unit.busy_periods()[1].completion,
            unit.busy_periods()[1].start);
  EXPECT_EQ(unit.services(), 2);
}

TEST(DiskUnit, EnergyNeverNegativeAndMonotone) {
  DiskUnit unit(params(), 0);
  Joules prev = 0;
  TimeMs t = 0;
  for (int k = 0; k < 20; ++k) {
    t += 500.0;
    unit.serve(t, k * 1'000, kib(16));
    const Joules now = unit.breakdown().total_j();
    EXPECT_GT(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace sdpm::sim
