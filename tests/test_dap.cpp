// Disk Access Pattern extraction — including the paper's Figure 2 example.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "layout/layout_table.h"
#include "trace/dap.h"

namespace sdpm::trace {
namespace {

using ir::ProgramBuilder;
using ir::sym;

// The paper's Figure 2(a)/(b): U1 of size 4S striped as (0,4,S), U2 of
// size 2S placed as (2,1,S); nest1 reads U1[1..2S] and U2[1..2S], nest2
// reads U1[2S+1..4S].  S here is one stripe of doubles.
struct Figure2 {
  static constexpr std::int64_t kS = 8192;  // doubles per 64 KB stripe

  ir::Program program;
  std::vector<layout::Striping> striping;

  Figure2() {
    ProgramBuilder pb("figure2");
    const auto u1 = pb.array("U1", {4 * kS});
    const auto u2 = pb.array("U2", {2 * kS});
    pb.nest("nest1")
        .loop("i", 0, 2 * kS)
        .stmt(10.0)
        .read(u1, {sym("i")})
        .read(u2, {sym("i")})
        .done();
    pb.nest("nest2")
        .loop("i", 0, 2 * kS)
        .stmt(10.0)
        .read(u1, {sym("i") + 2 * kS})
        .done();
    program = pb.build();
    striping = {layout::Striping{0, 4, kS * 8},
                layout::Striping{2, 1, kS * 8}};
  }
};

GeneratorOptions no_cache() {
  GeneratorOptions o;
  o.cache_bytes = 0;
  return o;
}

TEST(Dap, Figure2DiskActivity) {
  const Figure2 fig;
  const layout::LayoutTable table(fig.program, fig.striping, 4);
  const DiskAccessPattern dap =
      DiskAccessPattern::analyze(fig.program, table, no_cache());
  ASSERT_EQ(dap.disk_count(), 4);

  const std::int64_t s = Figure2::kS;
  // Figure 2(c): disk0 active during the first half of nest1, idle after.
  EXPECT_TRUE(dap.active_iterations(0).contains(0));
  EXPECT_FALSE(dap.active_iterations(0).contains(s));
  // disk1 becomes active at iteration S of nest1 (stripe 1 of U1).
  EXPECT_TRUE(dap.active_iterations(1).contains(s));
  EXPECT_FALSE(dap.active_iterations(1).contains(0));
  // disk2 holds all of U2: active from iteration 0 through nest1.
  EXPECT_TRUE(dap.active_iterations(2).contains(0));
  EXPECT_TRUE(dap.active_iterations(2).contains(s));
  // disk2 idle during nest2.
  EXPECT_TRUE(dap.idle_periods(2).contains(2 * s + 1));
  // disk3 idle through nest1, active during the second half of nest2
  // (stripe 3 of U1 holds elements [3S, 4S)).
  EXPECT_TRUE(dap.idle_periods(3).contains(0));
  EXPECT_TRUE(dap.active_iterations(3).contains(2 * s + s));
}

TEST(Dap, Figure2Transitions) {
  const Figure2 fig;
  const layout::LayoutTable table(fig.program, fig.striping, 4);
  const DiskAccessPattern dap =
      DiskAccessPattern::analyze(fig.program, table, no_cache());

  // disk3's pattern reads: idle from (nest1, 0), active at (nest2, S), ...
  const auto transitions = dap.transitions(3);
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_FALSE(transitions[0].active);
  EXPECT_EQ(transitions[0].point.nest_index, 0);
  EXPECT_EQ(transitions[0].point.flat_iteration, 0);
  EXPECT_TRUE(transitions[1].active);
  EXPECT_EQ(transitions[1].point.nest_index, 1);
}

TEST(Dap, NeverAccessedDisk) {
  const Figure2 fig;
  // Use 6 disks: disks 4 and 5 hold nothing.
  const layout::LayoutTable table(fig.program, fig.striping, 6);
  const DiskAccessPattern dap =
      DiskAccessPattern::analyze(fig.program, table, no_cache());
  EXPECT_TRUE(dap.never_accessed(4));
  EXPECT_TRUE(dap.never_accessed(5));
  const IntervalSet idle = dap.idle_periods(4);
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle.total_length(), dap.space().total());
}

TEST(Dap, ActiveAndIdlePartitionIterationSpace) {
  const Figure2 fig;
  const layout::LayoutTable table(fig.program, fig.striping, 4);
  const DiskAccessPattern dap =
      DiskAccessPattern::analyze(fig.program, table, no_cache());
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(dap.active_iterations(d).total_length() +
                  dap.idle_periods(d).total_length(),
              dap.space().total());
    EXPECT_FALSE(dap.active_iterations(d).intersects(dap.idle_periods(d)));
  }
}

TEST(Dap, ToStringPaperFormat) {
  const Figure2 fig;
  const layout::LayoutTable table(fig.program, fig.striping, 4);
  const DiskAccessPattern dap =
      DiskAccessPattern::analyze(fig.program, table, no_cache());
  const std::string text = dap.to_string(fig.program);
  EXPECT_NE(text.find("disk0:"), std::string::npos);
  EXPECT_NE(text.find("active>"), std::string::npos);
  EXPECT_NE(text.find("idle>"), std::string::npos);
  EXPECT_NE(text.find("<Nest "), std::string::npos);
}

TEST(Dap, CacheReducesActivity) {
  const Figure2 fig;
  const layout::LayoutTable table(fig.program, fig.striping, 4);
  GeneratorOptions cached;
  cached.cache_bytes = mib(64);  // everything fits after first touch
  const DiskAccessPattern with_cache =
      DiskAccessPattern::analyze(fig.program, table, cached);
  const DiskAccessPattern without =
      DiskAccessPattern::analyze(fig.program, table, no_cache());
  for (int d = 0; d < 4; ++d) {
    EXPECT_LE(with_cache.active_iterations(d).total_length(),
              without.active_iterations(d).total_length());
  }
}

}  // namespace
}  // namespace sdpm::trace
