// Histogram, invariant checker, and profiling tables.
#include <gtest/gtest.h>

#include <cmath>

#include "experiments/profile.h"
#include "experiments/report.h"
#include "policy/proactive.h"
#include "trace/generator.h"
#include "core/schedule.h"
#include "experiments/runner.h"
#include "policy/base.h"
#include "policy/tpm.h"
#include "sim/invariants.h"
#include "sim/simulator.h"
#include "util/error.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace sdpm {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.add(7.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_NEAR(h.median(), 7.0, 7.0 * 0.3);
}

TEST(Histogram, QuantilesApproximateUniform) {
  Histogram h(1e-3, 1.1);
  SplitMix64 rng(33);
  for (int i = 0; i < 100'000; ++i) h.add(rng.next_double(0.0, 100.0));
  EXPECT_NEAR(h.median(), 50.0, 5.0);
  EXPECT_NEAR(h.p95(), 95.0, 6.0);
  EXPECT_NEAR(h.mean(), 50.0, 1.0);
}

TEST(Histogram, QuantilesMonotone) {
  Histogram h;
  SplitMix64 rng(4);
  for (int i = 0; i < 5'000; ++i) h.add(rng.next_double(0.1, 1'000.0));
  double prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.quantile(q);
    EXPECT_GE(value, prev - 1e-9);
    prev = value;
  }
  EXPECT_LE(h.quantile(1.0), h.max() + 1e-9);
}

TEST(Histogram, WideDynamicRange) {
  Histogram h;
  h.add(0.001);   // 1 us
  h.add(10'900);  // 10.9 s, same histogram
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.max(), 10'900.0);
  EXPECT_NE(h.to_string().find("#"), std::string::npos);
}

TEST(Histogram, SummaryAndAscii) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NE(h.summary().find("n=100"), std::string::npos);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(0.0, 1.5), Error);
  EXPECT_THROW(Histogram(1.0, 1.0), Error);
  Histogram h;
  EXPECT_THROW(h.quantile(1.5), Error);
}

TEST(Histogram, MergeEmptyIntoEmpty) {
  Histogram a;
  Histogram b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.quantile(0.99), 0.0);
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a;
  Histogram empty;
  for (int i = 1; i <= 50; ++i) a.add(static_cast<double>(i));
  const double before = a.quantile(0.9);
  a.merge(empty);
  EXPECT_EQ(a.count(), 50);
  EXPECT_DOUBLE_EQ(a.quantile(0.9), before);

  // The other direction: folding a populated histogram into an empty one
  // must adopt its extremes, not mix in the empty side's zero min/max.
  empty.merge(a);
  EXPECT_EQ(empty.count(), 50);
  EXPECT_DOUBLE_EQ(empty.min(), a.min());
  EXPECT_DOUBLE_EQ(empty.max(), a.max());
}

TEST(Histogram, MergeSingleSample) {
  Histogram a;
  Histogram b;
  b.add(3.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
}

TEST(Histogram, MergeDisjointRanges) {
  // Sub-millisecond samples on one side, multi-second on the other: the
  // merged histogram must span both and place the median in the gap's
  // lower half (equal counts each side).
  Histogram lo;
  Histogram hi;
  SplitMix64 rng(99);
  for (int i = 0; i < 10'000; ++i) lo.add(rng.next_double(0.01, 0.1));
  for (int i = 0; i < 10'000; ++i) hi.add(rng.next_double(4'000.0, 9'000.0));
  Histogram merged;
  merged.merge(lo);
  merged.merge(hi);
  EXPECT_EQ(merged.count(), 20'000);
  EXPECT_LE(merged.min(), 0.1);
  EXPECT_GE(merged.max(), 4'000.0);
  EXPECT_LT(merged.quantile(0.49), 0.2);
  EXPECT_GT(merged.quantile(0.51), 3'000.0);
  EXPECT_NEAR(merged.sum(), lo.sum() + hi.sum(), 1e-6);
}

TEST(Histogram, MergeIsLossless) {
  // The documented merge contract: shard-and-merge is indistinguishable
  // from a single histogram that saw every sample directly.
  Histogram direct;
  Histogram shard_a;
  Histogram shard_b;
  SplitMix64 rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.next_double(0.001, 500.0);
    direct.add(v);
    (i % 2 == 0 ? shard_a : shard_b).add(v);
  }
  Histogram merged;
  merged.merge(shard_a);
  merged.merge(shard_b);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_DOUBLE_EQ(merged.min(), direct.min());
  EXPECT_DOUBLE_EQ(merged.max(), direct.max());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), direct.quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, QuantilesMonotoneUnderMerge) {
  Histogram merged;
  SplitMix64 rng(123);
  for (int shard = 0; shard < 8; ++shard) {
    Histogram h;
    // Each shard covers a different decade, so the merged distribution is
    // lumpy — the worst case for interpolation inside buckets.
    const double base = std::pow(10.0, shard % 4);
    for (int i = 0; i < 1'000; ++i) {
      h.add(rng.next_double(base * 0.1, base));
    }
    merged.merge(h);
    double prev = -1;
    for (double q = 0.0; q <= 1.0; q += 0.02) {
      const double value = merged.quantile(q);
      EXPECT_GE(value, prev - 1e-9) << "shard " << shard << " q " << q;
      prev = value;
    }
  }
}

TEST(Histogram, MergeRejectsIncompatibleBucketing) {
  Histogram a(1e-3, 1.25);
  Histogram fine(1e-3, 1.1);
  Histogram shifted(1e-2, 1.25);
  EXPECT_THROW(a.merge(fine), Error);
  EXPECT_THROW(a.merge(shifted), Error);
}

TEST(Invariants, AcceptsHealthyReports) {
  workloads::Benchmark swim = workloads::make_swim();
  experiments::ExperimentConfig config;
  experiments::Runner runner(swim, config);
  sim::check_invariants(runner.base_report(), config.disk);
}

TEST(Invariants, AcceptsEverySchemeReport) {
  workloads::Benchmark galgel = workloads::make_galgel();
  experiments::ExperimentConfig config;
  const layout::LayoutTable table(galgel.program, config.striping,
                                  config.total_disks);
  trace::TraceGenerator generator(galgel.program, table, config.gen);
  const trace::Trace trace = generator.generate();
  policy::TpmPolicy tpm;
  const sim::SimReport report = sim::simulate(trace, config.disk, tpm);
  sim::check_invariants(report, config.disk);
}

TEST(Invariants, DetectsCorruptedEnergy) {
  workloads::Benchmark galgel = workloads::make_galgel();
  experiments::ExperimentConfig config;
  experiments::Runner runner(galgel, config);
  sim::SimReport report = runner.base_report();
  report.total_energy *= 2.0;
  EXPECT_THROW(sim::check_invariants(report, config.disk), Error);
}

TEST(Invariants, DetectsOverlappingBusyPeriods) {
  workloads::Benchmark galgel = workloads::make_galgel();
  experiments::ExperimentConfig config;
  experiments::Runner runner(galgel, config);
  sim::SimReport report = runner.base_report();
  auto& periods = report.disks[0].busy_periods;
  ASSERT_GE(periods.size(), 2u);
  periods[1].start = periods[0].start - 1.0;
  EXPECT_THROW(sim::check_invariants(report, config.disk), Error);
}

TEST(Profile, PerNestTableAccountsEverything) {
  workloads::Benchmark swim = workloads::make_swim();
  experiments::ExperimentConfig config;
  const layout::LayoutTable table(swim.program, config.striping,
                                  config.total_disks);
  trace::GeneratorOptions gen = config.gen;
  gen.noise = config.actual_noise;
  trace::TraceGenerator generator(swim.program, table, gen);
  const trace::Trace trace = generator.generate();
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(
      trace, config.disk, policy,
      sim::SimOptions{.capture_responses = true});

  const Table profile =
      experiments::per_nest_profile(swim.program, trace, report);
  EXPECT_EQ(profile.row_count(), swim.program.nests.size());
  // swim's calc3 is the compute-only nest: 1 request at most.
  bool found_calc3 = false;
  for (const auto& row : profile.rows()) {
    if (row[0] == "calc3") {
      found_calc3 = true;
      EXPECT_LE(std::stoll(row[3]), 1);
    }
  }
  EXPECT_TRUE(found_calc3);
}

TEST(Profile, IdleGapHistogramSeesTheQuietPhase) {
  workloads::Benchmark swim = workloads::make_swim();
  experiments::ExperimentConfig config;
  experiments::Runner runner(swim, config);
  const Histogram gaps = experiments::idle_gap_histogram(runner.base_report());
  EXPECT_GT(gaps.count(), 0);
  // calc3's ~2 s all-disk quiet phase must appear in the tail.
  EXPECT_GT(gaps.max(), 1'500.0);
  // And the typical inter-burst gap sits in the hundreds of milliseconds.
  EXPECT_GT(gaps.median(), 50.0);
  EXPECT_LT(gaps.median(), 2'000.0);
}

TEST(Profile, IdleGapTableRenders) {
  workloads::Benchmark galgel = workloads::make_galgel();
  experiments::ExperimentConfig config;
  experiments::Runner runner(galgel, config);
  const Table table =
      experiments::idle_gap_table(runner.base_report(), config.disk);
  EXPECT_GE(table.row_count(), 5u);
}

TEST(Residency, SumsToSpinningTime) {
  workloads::Benchmark galgel = workloads::make_galgel();
  experiments::ExperimentConfig config;
  experiments::Runner runner(galgel, config);
  const sim::SimReport& base = runner.base_report();
  for (const sim::DiskReport& d : base.disks) {
    TimeMs residency = 0;
    for (const TimeMs ms : d.level_residency_ms) residency += ms;
    EXPECT_NEAR(residency, d.breakdown.idle_ms + d.breakdown.active_ms,
                1e-6);
  }
}

TEST(Residency, BaseRunStaysAtTopLevel) {
  workloads::Benchmark galgel = workloads::make_galgel();
  experiments::ExperimentConfig config;
  experiments::Runner runner(galgel, config);
  const sim::SimReport& base = runner.base_report();
  const std::size_t top = static_cast<std::size_t>(config.disk.max_level());
  for (const sim::DiskReport& d : base.disks) {
    for (std::size_t l = 0; l < d.level_residency_ms.size(); ++l) {
      if (l == top) {
        EXPECT_GT(d.level_residency_ms[l], 0.0);
      } else {
        EXPECT_DOUBLE_EQ(d.level_residency_ms[l], 0.0);
      }
    }
  }
}

TEST(Residency, CmdrpmSpendsTimeAtLowLevels) {
  workloads::Benchmark swim = workloads::make_swim();
  experiments::ExperimentConfig config;
  const layout::LayoutTable table(swim.program, config.striping,
                                  config.total_disks);
  core::SchedulerOptions so;
  so.access = config.gen;
  const core::ScheduleResult scheduled = core::schedule_power_calls(
      swim.program, table, config.disk, so);
  trace::TraceGenerator generator(scheduled.program, table, config.gen);
  policy::ProactivePolicy policy("CMDRPM");
  const sim::SimReport report =
      sim::simulate(generator.generate(), config.disk, policy);
  TimeMs below_top = 0;
  const std::size_t top = static_cast<std::size_t>(config.disk.max_level());
  for (const sim::DiskReport& d : report.disks) {
    for (std::size_t l = 0; l < top; ++l) {
      below_top += d.level_residency_ms[l];
    }
  }
  // Most of the run's disk-time is spent below full speed.
  EXPECT_GT(below_top,
            0.4 * report.execution_ms * report.disk_count());
  const Table residency =
      experiments::rpm_residency_table(report, config.disk);
  EXPECT_EQ(residency.row_count(),
            static_cast<std::size_t>(report.disk_count()));
}

}  // namespace
}  // namespace sdpm
