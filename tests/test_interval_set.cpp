// IntervalSet: canonical representation, algebra, and a randomized
// differential test against a naive point-set model.
#include <gtest/gtest.h>

#include <set>

#include "util/interval_set.h"
#include "util/rng.h"

namespace sdpm {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_length(), 0);
  EXPECT_FALSE(set.contains(0));
}

TEST(IntervalSet, EmptyIntervalsAreDropped) {
  IntervalSet set;
  set.insert(5, 5);
  set.insert(7, 3);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, InsertDisjoint) {
  IntervalSet set;
  set.insert(0, 2);
  set.insert(10, 12);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.total_length(), 4);
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(11));
  EXPECT_FALSE(set.contains(2));
  EXPECT_FALSE(set.contains(9));
}

TEST(IntervalSet, AdjacentIntervalsCoalesce) {
  IntervalSet set;
  set.insert(0, 5);
  set.insert(5, 10);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 10}));
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet set;
  set.insert(0, 6);
  set.insert(4, 10);
  set.insert(20, 30);
  set.insert(8, 22);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 30}));
}

TEST(IntervalSet, InsertBridgingManyIntervals) {
  IntervalSet set;
  for (int i = 0; i < 10; ++i) set.insert(i * 10, i * 10 + 5);
  EXPECT_EQ(set.size(), 10u);
  set.insert(3, 97);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 97}));
}

TEST(IntervalSet, CanonicalEquality) {
  IntervalSet a;
  a.insert(0, 5);
  a.insert(5, 10);
  IntervalSet b;
  b.insert(0, 10);
  EXPECT_EQ(a, b);
}

TEST(IntervalSet, ConstructorNormalizes) {
  IntervalSet set({{8, 12}, {0, 4}, {3, 9}, {20, 20}});
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 12}));
}

TEST(IntervalSet, GapsWithin) {
  IntervalSet set;
  set.insert(2, 4);
  set.insert(8, 10);
  const IntervalSet gaps = set.gaps_within(0, 12);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps.intervals()[0], (Interval{0, 2}));
  EXPECT_EQ(gaps.intervals()[1], (Interval{4, 8}));
  EXPECT_EQ(gaps.intervals()[2], (Interval{10, 12}));
}

TEST(IntervalSet, GapsOfEmptySetIsWholeRange) {
  IntervalSet set;
  const IntervalSet gaps = set.gaps_within(5, 9);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps.intervals()[0], (Interval{5, 9}));
}

TEST(IntervalSet, GapsComplementPartitionsRange) {
  IntervalSet set;
  set.insert(0, 3);
  set.insert(7, 20);
  const IntervalSet gaps = set.gaps_within(0, 20);
  EXPECT_EQ(set.total_length() + gaps.total_length(), 20);
  EXPECT_FALSE(set.intersects(gaps));
}

TEST(IntervalSet, Clipped) {
  IntervalSet set;
  set.insert(0, 10);
  set.insert(20, 30);
  const IntervalSet clipped = set.clipped(5, 25);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped.intervals()[0], (Interval{5, 10}));
  EXPECT_EQ(clipped.intervals()[1], (Interval{20, 25}));
}

TEST(IntervalSet, Intersects) {
  IntervalSet a;
  a.insert(0, 5);
  a.insert(10, 15);
  IntervalSet b;
  b.insert(5, 10);
  EXPECT_FALSE(a.intersects(b));
  b.insert(14, 16);
  EXPECT_TRUE(a.intersects(b));
}

TEST(IntervalSet, MergeUnionsSets) {
  IntervalSet a;
  a.insert(0, 5);
  IntervalSet b;
  b.insert(3, 8);
  b.insert(10, 12);
  a.merge(b);
  EXPECT_EQ(a.total_length(), 10);
  EXPECT_EQ(a.size(), 2u);
}

// Differential test: random inserts against a std::set<int64_t> of points.
TEST(IntervalSetProperty, MatchesNaivePointModel) {
  SplitMix64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet set;
    std::set<std::int64_t> points;
    for (int op = 0; op < 200; ++op) {
      const std::int64_t lo = static_cast<std::int64_t>(rng.next_below(300));
      const std::int64_t len = static_cast<std::int64_t>(rng.next_below(20));
      set.insert(lo, lo + len);
      for (std::int64_t x = lo; x < lo + len; ++x) points.insert(x);
    }
    EXPECT_EQ(set.total_length(), static_cast<std::int64_t>(points.size()));
    for (std::int64_t x = 0; x < 330; ++x) {
      ASSERT_EQ(set.contains(x), points.count(x) == 1) << "point " << x;
    }
    // Canonical form: sorted, disjoint, non-adjacent.
    const auto& ivs = set.intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_GT(ivs[i].lo, ivs[i - 1].hi);
    }
  }
}

TEST(IntervalSetProperty, GapsRoundTrip) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet set;
    for (int op = 0; op < 50; ++op) {
      const std::int64_t lo = static_cast<std::int64_t>(rng.next_below(1000));
      set.insert(lo, lo + 1 + static_cast<std::int64_t>(rng.next_below(30)));
    }
    const IntervalSet gaps = set.gaps_within(0, 1100);
    // gaps of gaps == clipped original
    const IntervalSet back = gaps.gaps_within(0, 1100);
    EXPECT_EQ(back, set.clipped(0, 1100));
  }
}

}  // namespace
}  // namespace sdpm
