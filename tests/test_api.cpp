// sdpm::api facade: JobSpec defaulting/round-trip, Session determinism.
#include <gtest/gtest.h>

#include "api/job_result.h"
#include "api/job_spec.h"
#include "api/session.h"
#include "experiments/runner.h"
#include "obs/tracer.h"
#include "util/error.h"
#include "workloads/benchmarks.h"

namespace sdpm::api {
namespace {

// ---------------------------------------------------------------------------
// JobSpec: the versioned record and its defaulting rules

TEST(JobSpec, DefaultIsThePaperConfiguration) {
  const JobSpec spec;
  EXPECT_EQ(spec.version, kJobSpecSchemaVersion);
  EXPECT_EQ(spec.benchmark, "swim");
  EXPECT_TRUE(spec.schemes.empty());
  EXPECT_EQ(spec.transform, "none");
  EXPECT_EQ(spec.disks, 8);
  EXPECT_EQ(spec.stripe_size, kib(64));
  EXPECT_EQ(spec.stripe_factor, 0);
  EXPECT_EQ(spec.cache_bytes, mib(6));
  EXPECT_NO_THROW(spec.validate());
  // Empty scheme list resolves to all seven, in presentation order.
  EXPECT_EQ(spec.resolved_schemes().size(), 7u);
  EXPECT_EQ(spec.resolved_schemes().front(), experiments::Scheme::kBase);
}

TEST(JobSpec, DisplayLabelDerivesFromBenchmarkAndTransform) {
  JobSpec spec;
  spec.benchmark = "mgrid";
  spec.transform = "LF+DL";
  EXPECT_EQ(spec.display_label(), "mgrid/LF+DL");
  spec.label = "custom";
  EXPECT_EQ(spec.display_label(), "custom");
}

TEST(JobSpec, JsonRoundTripIsExact) {
  const JobSpec spec = JobSpecBuilder("applu")
                           .label("rt")
                           .scheme("CMTPM")
                           .scheme("CMDRPM")
                           .transform("TL")
                           .disks(4)
                           .stripe_size(kib(32))
                           .noise(0.1)
                           .fault_spinup(0.05)
                           .build();
  const JobSpec back = JobSpec::from_json(spec.to_json());
  EXPECT_EQ(spec, back);
  EXPECT_EQ(spec.canonical_json(), back.canonical_json());
}

TEST(JobSpec, MissingFieldsTakeDefaults) {
  Json doc = Json::object();
  doc.set("benchmark", std::string("mesa"));
  const JobSpec spec = JobSpec::from_json(doc);
  EXPECT_EQ(spec.benchmark, "mesa");
  EXPECT_EQ(spec.disks, 8);             // default
  EXPECT_EQ(spec.transform, "none");    // default
  EXPECT_EQ(spec, JobSpecBuilder("mesa").build());
}

TEST(JobSpec, UnknownFieldsAreRejected) {
  Json doc = Json::object();
  doc.set("benchmark", std::string("swim"));
  doc.set("discs", 4);  // typo'd key must fail loudly, not mean "default"
  EXPECT_THROW(JobSpec::from_json(doc), sdpm::Error);
}

TEST(JobSpec, NewerSchemaVersionsAreRejected) {
  Json doc = Json::object();
  doc.set("version", kJobSpecSchemaVersion + 1);
  EXPECT_THROW(JobSpec::from_json(doc), sdpm::Error);
}

TEST(JobSpec, ValidateNamesTheOffendingField) {
  EXPECT_THROW(JobSpecBuilder("no-such-benchmark").build(), sdpm::Error);
  EXPECT_THROW(JobSpecBuilder("swim").scheme("WarpDrive").build(),
               sdpm::Error);
  EXPECT_THROW(JobSpecBuilder("swim").transform("UV").build(), sdpm::Error);
  EXPECT_THROW(JobSpecBuilder("swim").disks(0).build(), sdpm::Error);
}

TEST(JobSpec, CanonicalJsonIsTheJobIdentity) {
  const JobSpec a = JobSpecBuilder("swim").scheme("Base").build();
  JobSpec b = a;
  EXPECT_EQ(a.canonical_json(), b.canonical_json());
  b.disks = 4;
  EXPECT_NE(a.canonical_json(), b.canonical_json());
}

// ---------------------------------------------------------------------------
// Session: the determinism contract across all three evaluation paths

TEST(Session, RunMatchesDirectRunnerBitForBit) {
  const JobSpec spec =
      JobSpecBuilder("galgel").scheme("Base").scheme("CMDRPM").build();

  Session session;
  const JobResult via_facade = session.run(spec);

  // The historical path: a Runner driven scheme by scheme.
  workloads::Benchmark bench = workloads::make_benchmark(spec.benchmark);
  experiments::Runner runner(bench, spec.to_config());
  ASSERT_EQ(via_facade.schemes.size(), 2u);
  const SchemeOutcome base =
      outcome_from(runner.run(experiments::Scheme::kBase));
  const SchemeOutcome cmdrpm =
      outcome_from(runner.run(experiments::Scheme::kCmdrpm));
  EXPECT_EQ(via_facade.schemes[0], base);
  EXPECT_EQ(via_facade.schemes[1], cmdrpm);
}

TEST(Session, BatchMatchesSerialRuns) {
  std::vector<JobSpec> specs;
  specs.push_back(JobSpecBuilder("galgel").scheme("CMTPM").build());
  specs.push_back(
      JobSpecBuilder("galgel").scheme("CMTPM").transform("TL").build());
  specs.push_back(JobSpecBuilder("mesa").scheme("Base").disks(4).build());

  Session session;
  const std::vector<JobResult> batch = session.run_batch(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(batch[i], session.run(specs[i])) << specs[i].display_label();
  }
}

TEST(Session, ResultJsonRoundTrips) {
  Session session;
  const JobResult result =
      session.run(JobSpecBuilder("galgel").scheme("TPM").build());
  const JobResult back = JobResult::from_json(result.to_json());
  EXPECT_EQ(result, back);
}

TEST(Session, RunHooksRejectOracleTraces) {
  Session session;
  obs::EventTracer tracer;
  RunHooks hooks;
  hooks.replay_tracer = &tracer;
  hooks.trace_scheme = experiments::Scheme::kItpm;
  EXPECT_THROW(
      session.run(JobSpecBuilder("galgel").scheme("ITPM").build(), hooks),
      sdpm::Error);
}

TEST(Session, AnalyzeIsCleanOnSchedulerOutputAndDirtyOnMutation) {
  const Session session;
  const JobSpec spec = JobSpecBuilder("swim").build();
  const analysis::AnalysisReport clean =
      session.analyze(spec, core::PowerMode::kDrpm);
  EXPECT_EQ(clean.errors(), 0) << render_text(clean);

  const analysis::AnalysisReport dirty = session.analyze(
      spec, core::PowerMode::kDrpm, analysis::Mutation::kLatePreactivation);
  EXPECT_GT(dirty.errors(), 0);
  EXPECT_TRUE(dirty.has("SDPM-E040")) << render_text(dirty);
}

}  // namespace
}  // namespace sdpm::api
