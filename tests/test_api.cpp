// sdpm::api facade: JobSpec defaulting/round-trip, Session determinism.
#include <gtest/gtest.h>

#include "api/job_result.h"
#include "api/job_spec.h"
#include "api/session.h"
#include "disk/ladder.h"
#include "experiments/runner.h"
#include "obs/tracer.h"
#include "util/error.h"
#include "workloads/benchmarks.h"

namespace sdpm::api {
namespace {

// ---------------------------------------------------------------------------
// JobSpec: the versioned record and its defaulting rules

TEST(JobSpec, DefaultIsThePaperConfiguration) {
  const JobSpec spec;
  EXPECT_EQ(spec.version, kJobSpecSchemaVersion);
  EXPECT_EQ(spec.benchmark, "swim");
  EXPECT_TRUE(spec.schemes.empty());
  EXPECT_EQ(spec.transform, "none");
  EXPECT_EQ(spec.disks, 8);
  EXPECT_EQ(spec.stripe_size, kib(64));
  EXPECT_EQ(spec.stripe_factor, 0);
  EXPECT_EQ(spec.cache_bytes, mib(6));
  EXPECT_NO_THROW(spec.validate());
  // Empty scheme list resolves to all seven, in presentation order.
  EXPECT_EQ(spec.resolved_schemes().size(), 7u);
  EXPECT_EQ(spec.resolved_schemes().front(), experiments::Scheme::kBase);
}

TEST(JobSpec, DisplayLabelDerivesFromBenchmarkAndTransform) {
  JobSpec spec;
  spec.benchmark = "mgrid";
  spec.transform = "LF+DL";
  EXPECT_EQ(spec.display_label(), "mgrid/LF+DL");
  spec.label = "custom";
  EXPECT_EQ(spec.display_label(), "custom");
}

TEST(JobSpec, JsonRoundTripIsExact) {
  const JobSpec spec = JobSpecBuilder("applu")
                           .label("rt")
                           .scheme("CMTPM")
                           .scheme("CMDRPM")
                           .transform("TL")
                           .disks(4)
                           .stripe_size(kib(32))
                           .noise(0.1)
                           .fault_spinup(0.05)
                           .build();
  const JobSpec back = JobSpec::from_json(spec.to_json());
  EXPECT_EQ(spec, back);
  EXPECT_EQ(spec.canonical_json(), back.canonical_json());
}

TEST(JobSpec, MissingFieldsTakeDefaults) {
  Json doc = Json::object();
  doc.set("benchmark", std::string("mesa"));
  const JobSpec spec = JobSpec::from_json(doc);
  EXPECT_EQ(spec.benchmark, "mesa");
  EXPECT_EQ(spec.disks, 8);             // default
  EXPECT_EQ(spec.transform, "none");    // default
  EXPECT_EQ(spec, JobSpecBuilder("mesa").build());
}

TEST(JobSpec, UnknownFieldsAreRejected) {
  Json doc = Json::object();
  doc.set("benchmark", std::string("swim"));
  doc.set("discs", 4);  // typo'd key must fail loudly, not mean "default"
  EXPECT_THROW(JobSpec::from_json(doc), sdpm::Error);
}

TEST(JobSpec, NewerSchemaVersionsAreRejected) {
  Json doc = Json::object();
  doc.set("version", kJobSpecSchemaVersion + 1);
  EXPECT_THROW(JobSpec::from_json(doc), sdpm::Error);
}

TEST(JobSpec, ValidateNamesTheOffendingField) {
  EXPECT_THROW(JobSpecBuilder("no-such-benchmark").build(), sdpm::Error);
  EXPECT_THROW(JobSpecBuilder("swim").scheme("WarpDrive").build(),
               sdpm::Error);
  EXPECT_THROW(JobSpecBuilder("swim").transform("UV").build(), sdpm::Error);
  EXPECT_THROW(JobSpecBuilder("swim").disks(0).build(), sdpm::Error);
}

TEST(JobSpec, CanonicalJsonIsTheJobIdentity) {
  const JobSpec a = JobSpecBuilder("swim").scheme("Base").build();
  JobSpec b = a;
  EXPECT_EQ(a.canonical_json(), b.canonical_json());
  b.disks = 4;
  EXPECT_NE(a.canonical_json(), b.canonical_json());
}

// ---------------------------------------------------------------------------
// Schema v2: the device field (preset name or inline power ladder)

TEST(JobSpec, DeviceDefaultsToThePaperDisk) {
  const JobSpec spec;
  EXPECT_TRUE(spec.device.empty());
  EXPECT_TRUE(spec.device_inline_json.empty());
  const disk::DiskParameters resolved = spec.resolved_device();
  EXPECT_EQ(resolved.model, "IBM Ultrastar 36Z15");
  EXPECT_FALSE(resolved.has_ladder());  // legacy-backed default stays exact
}

TEST(JobSpec, DevicePresetRoundTrips) {
  const JobSpec spec =
      JobSpecBuilder("galgel").scheme("TPM").device("scsi_multi_idle").build();
  const JobSpec back = JobSpec::from_json(spec.to_json());
  EXPECT_EQ(spec, back);
  EXPECT_EQ(back.device, "scsi_multi_idle");
  EXPECT_TRUE(spec.resolved_device().has_ladder());
  EXPECT_EQ(spec.resolved_device().ladder().name, "scsi_multi_idle");
}

TEST(JobSpec, InlineLadderRoundTripsCanonically) {
  const disk::PowerLadder ladder = disk::PowerLadder::preset("nvme_tiered");
  const JobSpec spec =
      JobSpecBuilder("galgel").scheme("Base").device_ladder(ladder).build();
  EXPECT_TRUE(spec.device.empty());
  const Json doc = spec.to_json();
  EXPECT_TRUE(doc.at("device").is_object());
  const JobSpec back = JobSpec::from_json(doc);
  EXPECT_EQ(spec, back);
  EXPECT_EQ(spec.canonical_json(), back.canonical_json());
  EXPECT_EQ(back.resolved_device().ladder(), ladder);
}

TEST(JobSpec, DeviceValidation) {
  EXPECT_THROW(JobSpecBuilder("swim").device("quantum_bigfoot").build(),
               sdpm::Error);
  JobSpec both = JobSpecBuilder("swim").device("nvme_tiered").build();
  both.device_inline_json =
      disk::PowerLadder::preset("scsi_multi_idle").to_json().dump();
  EXPECT_THROW(both.validate(), sdpm::Error);  // preset XOR inline
}

TEST(JobSpec, ToConfigCarriesTheResolvedDevice) {
  const JobSpec spec =
      JobSpecBuilder("galgel").scheme("Base").device("nvme_tiered").build();
  const experiments::ExperimentConfig config = spec.to_config();
  ASSERT_TRUE(config.disk.has_ladder());
  EXPECT_EQ(config.disk.ladder().name, "nvme_tiered");
}

TEST(JobSpec, V1DocumentsKeepParsing) {
  Json doc = Json::object();
  doc.set("version", 1).set("benchmark", std::string("mesa"));
  const JobSpec spec = JobSpec::from_json(doc);
  EXPECT_EQ(spec.version, 1);
  EXPECT_TRUE(spec.device.empty());
  EXPECT_FALSE(spec.resolved_device().has_ladder());  // default Ultrastar
}

// ---------------------------------------------------------------------------
// Session: the determinism contract across all three evaluation paths

TEST(Session, RunMatchesDirectRunnerBitForBit) {
  const JobSpec spec =
      JobSpecBuilder("galgel").scheme("Base").scheme("CMDRPM").build();

  Session session;
  const JobResult via_facade = session.run(spec);

  // The historical path: a Runner driven scheme by scheme.
  workloads::Benchmark bench = workloads::make_benchmark(spec.benchmark);
  experiments::Runner runner(bench, spec.to_config());
  ASSERT_EQ(via_facade.schemes.size(), 2u);
  const SchemeOutcome base =
      outcome_from(runner.run(experiments::Scheme::kBase));
  const SchemeOutcome cmdrpm =
      outcome_from(runner.run(experiments::Scheme::kCmdrpm));
  EXPECT_EQ(via_facade.schemes[0], base);
  EXPECT_EQ(via_facade.schemes[1], cmdrpm);
}

TEST(Session, BatchMatchesSerialRuns) {
  std::vector<JobSpec> specs;
  specs.push_back(JobSpecBuilder("galgel").scheme("CMTPM").build());
  specs.push_back(
      JobSpecBuilder("galgel").scheme("CMTPM").transform("TL").build());
  specs.push_back(JobSpecBuilder("mesa").scheme("Base").disks(4).build());

  Session session;
  const std::vector<JobResult> batch = session.run_batch(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(batch[i], session.run(specs[i])) << specs[i].display_label();
  }
}

TEST(Session, ResultJsonRoundTrips) {
  Session session;
  const JobResult result =
      session.run(JobSpecBuilder("galgel").scheme("TPM").build());
  const JobResult back = JobResult::from_json(result.to_json());
  EXPECT_EQ(result, back);
}

TEST(Session, RunHooksRejectOracleTraces) {
  Session session;
  obs::EventTracer tracer;
  RunHooks hooks;
  hooks.replay_tracer = &tracer;
  hooks.trace_scheme = experiments::Scheme::kItpm;
  EXPECT_THROW(
      session.run(JobSpecBuilder("galgel").scheme("ITPM").build(), hooks),
      sdpm::Error);
}

TEST(Session, RunsBothNewPresetsEndToEnd) {
  Session session;
  for (const char* preset : {"scsi_multi_idle", "nvme_tiered"}) {
    SCOPED_TRACE(preset);
    const JobSpec spec = JobSpecBuilder("galgel")
                             .scheme("Base")
                             .scheme("TPM")
                             .scheme("CMDRPM")
                             .device(preset)
                             .build();
    const JobResult result = session.run(spec);
    ASSERT_EQ(result.schemes.size(), 3u);
    for (const SchemeOutcome& outcome : result.schemes) {
      EXPECT_GT(outcome.energy_j, 0.0) << outcome.scheme;
      EXPECT_GT(outcome.execution_ms, 0.0) << outcome.scheme;
    }
    EXPECT_TRUE(result.notes.empty());  // v2 spec: no deprecation note
  }
}

TEST(Session, CertifierBoundsBracketNewPresets) {
  const Session session;
  for (const char* preset : {"scsi_multi_idle", "nvme_tiered"}) {
    SCOPED_TRACE(preset);
    const JobSpec spec =
        JobSpecBuilder("galgel").scheme("CMDRPM").device(preset).build();
    const analysis::AnalysisReport report =
        session.analyze(spec, core::PowerMode::kDrpm);
    ASSERT_TRUE(report.certificate.has_value());
    EXPECT_GE(report.certificate->energy_hi_j, report.certificate->energy_lo_j);
    EXPECT_GT(report.certificate->energy_hi_j, 0.0);
  }
}

TEST(Session, V1SpecCarriesADeprecationNote) {
  Json doc = Json::object();
  doc.set("version", 1)
      .set("benchmark", std::string("galgel"))
      .set("schemes", Json::array().push_back(Json(std::string("Base"))));
  const JobSpec v1 = JobSpec::from_json(doc);
  Session session;
  const JobResult result = session.run(v1);
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_EQ(result.notes.front().rfind("deprecation:", 0), 0u);

  // The note survives the wire round trip but never breaks equality.
  const JobResult back = JobResult::from_json(result.to_json());
  EXPECT_EQ(back.notes, result.notes);
  JobResult stripped = result;
  stripped.notes.clear();
  EXPECT_EQ(stripped, result);

  // The same job under a v2 spec carries no note.
  const JobResult v2 =
      session.run(JobSpecBuilder("galgel").scheme("Base").build());
  EXPECT_TRUE(v2.notes.empty());
  EXPECT_EQ(v2, result);  // and the simulated outcome is unchanged
}

TEST(Session, AnalyzeIsCleanOnSchedulerOutputAndDirtyOnMutation) {
  const Session session;
  const JobSpec spec = JobSpecBuilder("swim").build();
  const analysis::AnalysisReport clean =
      session.analyze(spec, core::PowerMode::kDrpm);
  EXPECT_EQ(clean.errors(), 0) << render_text(clean);

  const analysis::AnalysisReport dirty = session.analyze(
      spec, core::PowerMode::kDrpm, analysis::Mutation::kLatePreactivation);
  EXPECT_GT(dirty.errors(), 0);
  EXPECT_TRUE(dirty.has("SDPM-E040")) << render_text(dirty);
}

}  // namespace
}  // namespace sdpm::api
