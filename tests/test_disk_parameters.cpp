// DiskParameters: Table 1 identities and the derived physics.
#include <gtest/gtest.h>

#include "disk/ladder.h"
#include "disk/parameters.h"
#include "disk/power_state.h"
#include "util/error.h"

namespace sdpm::disk {
namespace {

TEST(Parameters, Table1Defaults) {
  const DiskParameters p = DiskParameters::ultrastar_36z15();
  EXPECT_EQ(p.model, "IBM Ultrastar 36Z15");
  EXPECT_EQ(p.capacity, gib(18));
  EXPECT_EQ(p.rpm, 15'000);
  EXPECT_DOUBLE_EQ(p.average_seek_time, 3.4);
  EXPECT_DOUBLE_EQ(p.average_rotation_time, 2.0);
  EXPECT_DOUBLE_EQ(p.internal_transfer_mb_per_s, 55.0);
  EXPECT_DOUBLE_EQ(p.tpm.active_power, 13.5);
  EXPECT_DOUBLE_EQ(p.tpm.idle_power, 10.2);
  EXPECT_DOUBLE_EQ(p.tpm.standby_power, 2.5);
  EXPECT_DOUBLE_EQ(p.tpm.spin_down_energy, 13.0);
  EXPECT_DOUBLE_EQ(p.tpm.spin_down_time, 1'500.0);
  EXPECT_DOUBLE_EQ(p.tpm.spin_up_energy, 135.0);
  EXPECT_DOUBLE_EQ(p.tpm.spin_up_time, 10'900.0);
  EXPECT_EQ(p.drpm.window_size, 30);
  p.validate();
}

TEST(Parameters, RpmLadder) {
  const DiskParameters p;
  EXPECT_EQ(p.rpm_level_count(), 11);  // 3000..15000 step 1200
  EXPECT_EQ(p.rpm_of_level(0), 3'000);
  EXPECT_EQ(p.rpm_of_level(10), 15'000);
  EXPECT_EQ(p.max_level(), 10);
  EXPECT_THROW(p.rpm_of_level(11), Error);
  EXPECT_THROW(p.rpm_of_level(-1), Error);
}

TEST(Parameters, LevelOfRpmRoundTrips) {
  const DiskParameters p;
  for (int level = 0; level < p.rpm_level_count(); ++level) {
    EXPECT_EQ(p.level_of_rpm(p.rpm_of_level(level)), level);
  }
  EXPECT_THROW(p.level_of_rpm(3'100), Error);
  EXPECT_THROW(p.level_of_rpm(16'200), Error);
}

TEST(Parameters, IdlePowerDecompositionMatchesTable1) {
  const DiskParameters p;
  // At the top level the decomposition must reproduce the datasheet.
  EXPECT_NEAR(p.idle_power_at_level(p.max_level()), 10.2, 1e-9);
  EXPECT_NEAR(p.active_power_at_level(p.max_level()), 13.5, 1e-9);
}

TEST(Parameters, PowerMonotoneInRpm) {
  const DiskParameters p;
  for (int level = 1; level < p.rpm_level_count(); ++level) {
    EXPECT_GT(p.idle_power_at_level(level), p.idle_power_at_level(level - 1));
    EXPECT_GT(p.active_power_at_level(level),
              p.active_power_at_level(level - 1));
  }
  // The floor approaches (but stays above) the electronics power.
  EXPECT_GT(p.idle_power_at_level(0), p.drpm.electronics_power);
  EXPECT_LT(p.idle_power_at_level(0), 3.0);
}

TEST(Parameters, MechanicsScaleWithRpm) {
  const DiskParameters p;
  EXPECT_NEAR(p.rotational_latency_at_level(p.max_level()), 2.0, 1e-9);
  // Half speed -> double latency.
  const int half = p.level_of_rpm(7'800);  // not exactly half; check ratio
  EXPECT_NEAR(p.rotational_latency_at_level(half), 2.0 * 15'000 / 7'800,
              1e-9);
  EXPECT_NEAR(p.transfer_rate_at_level(p.max_level()), 55.0, 1e-9);
  EXPECT_NEAR(p.transfer_rate_at_level(0), 55.0 * 3'000 / 15'000, 1e-9);
}

TEST(Parameters, ServiceTimeComposition) {
  const DiskParameters p;
  const Bytes size = kib(64);
  const double rate_bytes_per_ms = 55.0 * 1e6 / 1e3;
  const TimeMs transfer = static_cast<double>(size) / rate_bytes_per_ms;
  EXPECT_NEAR(p.service_time(size, p.max_level(), /*sequential=*/true),
              transfer, 1e-9);
  EXPECT_NEAR(p.service_time(size, p.max_level(), /*sequential=*/false),
              3.4 + 2.0 + transfer, 1e-9);
}

TEST(Parameters, ServiceSlowerAtLowerRpm) {
  const DiskParameters p;
  EXPECT_GT(p.service_time(kib(64), 0, false),
            p.service_time(kib(64), p.max_level(), false));
}

TEST(Parameters, TransitionTimeProportionalToDistance) {
  const DiskParameters p;
  EXPECT_DOUBLE_EQ(p.rpm_transition_time(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(p.rpm_transition_time(10, 9),
                   p.drpm.transition_time_per_step);
  EXPECT_DOUBLE_EQ(p.rpm_transition_time(0, 10),
                   10 * p.drpm.transition_time_per_step);
  EXPECT_DOUBLE_EQ(p.rpm_transition_time(3, 7), p.rpm_transition_time(7, 3));
}

TEST(Parameters, TransitionEnergyBilledAtFasterLevel) {
  const DiskParameters p;
  const Joules down = p.rpm_transition_energy(10, 5);
  const Joules expected = joules_from_watt_ms(p.idle_power_at_level(10),
                                              p.rpm_transition_time(10, 5));
  EXPECT_NEAR(down, expected, 1e-9);
  // Symmetric: up transition billed at the same (faster) level.
  EXPECT_NEAR(p.rpm_transition_energy(5, 10), down, 1e-9);
  EXPECT_DOUBLE_EQ(p.rpm_transition_energy(4, 4), 0.0);
}

TEST(Parameters, BreakEvenMatchesClosedForm) {
  const DiskParameters p;
  // (13 + 135 - 2.5 W * 12.4 s) / (10.2 - 2.5) W = 15.19.. s
  const double expected_s = (13.0 + 135.0 - 2.5 * 12.4) / 7.7;
  EXPECT_NEAR(p.break_even_time(), ms_from_seconds(expected_s), 1e-6);
  EXPECT_NEAR(seconds_from_ms(p.break_even_time()), 15.2, 0.05);
}

TEST(Parameters, IdlenessThresholdDefaultsToBreakEven) {
  DiskParameters p;
  EXPECT_DOUBLE_EQ(p.effective_idleness_threshold(), p.break_even_time());
  p.tpm.idleness_threshold = 2'000.0;
  EXPECT_DOUBLE_EQ(p.effective_idleness_threshold(), 2'000.0);
}

TEST(Parameters, ValidateCatchesInconsistencies) {
  DiskParameters p;
  p.drpm.rpm_step = 900;  // does not divide the 12,000 RPM range
  EXPECT_THROW(p.validate(), Error);

  DiskParameters q;
  q.tpm.idle_power = 1.0;  // below standby
  EXPECT_THROW(q.validate(), Error);

  DiskParameters r;
  r.drpm.spindle_power_at_max = 1.0;  // decomposition broken
  EXPECT_THROW(r.validate(), Error);
}

TEST(EnergyBreakdown, AccumulatesByState) {
  EnergyBreakdown b;
  b.add(PowerState::kActive, 10, 0.135);
  b.add(PowerState::kIdle, 100, 1.02);
  b.add(PowerState::kStandby, 50, 0.125);
  b.add(PowerState::kSpinningDown, 1'500, 13);
  b.add(PowerState::kSpinningUp, 10'900, 135);
  b.add(PowerState::kRpmShift, 5, 0.05);
  EXPECT_NEAR(b.total_ms(), 12'565, 1e-9);
  EXPECT_NEAR(b.total_j(), 149.33, 1e-6);
}

TEST(EnergyBreakdown, PlusEquals) {
  EnergyBreakdown a;
  a.add(PowerState::kIdle, 10, 1);
  EnergyBreakdown b;
  b.add(PowerState::kIdle, 20, 2);
  b.add(PowerState::kActive, 5, 3);
  a += b;
  EXPECT_DOUBLE_EQ(a.idle_ms, 30);
  EXPECT_DOUBLE_EQ(a.idle_j, 3);
  EXPECT_DOUBLE_EQ(a.active_j, 3);
}

TEST(PowerStateNames, AllDistinct) {
  EXPECT_STREQ(to_string(PowerState::kActive), "active");
  EXPECT_STREQ(to_string(PowerState::kStandby), "standby");
  EXPECT_STREQ(to_string(PowerState::kRpmShift), "rpm-shift");
}

TEST(Parameters, LegacyParkApiIsTheOneStandbyState) {
  const DiskParameters p = DiskParameters::ultrastar_36z15();
  EXPECT_FALSE(p.has_ladder());
  EXPECT_EQ(p.park_count(), 1);
  EXPECT_EQ(p.default_park(), 0);
  EXPECT_EQ(p.park_name(0), "standby");
  EXPECT_EQ(p.park_power(0), p.tpm.standby_power);
  EXPECT_LT(p.park_timer_ms(0), 0);  // legacy: break-even, never a timer
  EXPECT_TRUE(p.park_entry_possible(p.max_level(), 0));
  EXPECT_EQ(p.park_entry_time(p.max_level(), 0), p.tpm.spin_down_time);
  EXPECT_EQ(p.park_entry_energy(p.max_level(), 0), p.tpm.spin_down_energy);
  EXPECT_EQ(p.wake_time(0), p.tpm.spin_up_time);
  EXPECT_EQ(p.wake_energy(0), p.tpm.spin_up_energy);
  EXPECT_FALSE(p.park_descent_possible(0, 0));
  EXPECT_EQ(p.break_even_time(0), p.break_even_time());
  EXPECT_THROW(p.park_power(1), Error);
}

TEST(Parameters, PresetRegistry) {
  EXPECT_EQ(DiskParameters::preset_names().size(), 3u);
  // The paper's disk stays legacy-backed; the new presets are ladder-backed.
  EXPECT_FALSE(DiskParameters::preset("ultrastar_36z15").has_ladder());
  EXPECT_TRUE(DiskParameters::preset("scsi_multi_idle").has_ladder());
  EXPECT_TRUE(DiskParameters::preset("nvme_tiered").has_ladder());
  EXPECT_THROW(DiskParameters::preset("microdrive"), Error);
}

TEST(Parameters, ElectronicsPowerDecoupledFromStandby) {
  // The Table 1 decomposition floor is the DRPM electronics power, not the
  // TPM standby power: changing one must not move the other.
  DiskParameters p = DiskParameters::ultrastar_36z15();
  const Watts idle_top_before = p.idle_power_at_level(p.max_level());
  p.tpm.standby_power = 5.0;
  EXPECT_EQ(p.idle_power_at_level(p.max_level()), idle_top_before);
  EXPECT_EQ(p.standby_power(), 5.0);
  p.validate();  // the decomposition still holds: only standby moved
}

TEST(Parameters, MultiParkPresetAccessors) {
  const DiskParameters p = DiskParameters::preset("scsi_multi_idle");
  EXPECT_EQ(p.park_count(), 4);
  EXPECT_EQ(p.rpm_level_count(), 1);
  for (int park = 0; park < p.park_count(); ++park) {
    EXPECT_GT(p.wake_time(park), 0.0);
    EXPECT_GT(p.break_even_time(park), 0.0);
    EXPECT_TRUE(p.park_entry_possible(p.max_level(), park));
  }
  // Deeper parks pay more to wake but hold less power.
  for (int park = 1; park < p.park_count(); ++park) {
    EXPECT_GE(p.wake_time(park - 1), p.wake_time(park));
    EXPECT_LE(p.park_power(park - 1), p.park_power(park));
  }
  // The descent chain steps one rung at a time toward the deepest park.
  EXPECT_TRUE(p.park_descent_possible(3, 2));
  EXPECT_TRUE(p.park_descent_possible(2, 1));
  EXPECT_TRUE(p.park_descent_possible(1, 0));
  EXPECT_FALSE(p.park_descent_possible(0, 3));
}

TEST(Parameters, ToLadderFromLadderRoundTrip) {
  const DiskParameters legacy = DiskParameters::ultrastar_36z15();
  const DiskParameters back =
      DiskParameters::from_ladder(legacy.to_ladder("roundtrip"));
  EXPECT_TRUE(back.has_ladder());
  EXPECT_EQ(back.rpm_level_count(), legacy.rpm_level_count());
  EXPECT_EQ(back.standby_power(), legacy.standby_power());
  EXPECT_EQ(back.break_even_time(), legacy.break_even_time());
  back.validate();
}

}  // namespace
}  // namespace sdpm::disk
