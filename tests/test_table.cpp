// Table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace sdpm {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, HeaderAfterRowsRejected) {
  Table t;
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"a"}), Error);
}

TEST(Table, RowAccessors) {
  Table t;
  t.set_header({"h"});
  t.add_row({"v"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.rows()[0][0], "v");
  EXPECT_EQ(t.header()[0], "h");
}

}  // namespace
}  // namespace sdpm
