// Ladder-vs-legacy equivalence: a DiskParameters built from
// PowerLadder::from_legacy(ultrastar) must reproduce the legacy-backed
// Ultrastar bit for bit — every accessor, all seven schemes, both replay
// dispatch paths, with and without fault injection, traced and untraced.
// Every comparison is EXPECT_EQ, never NEAR: from_legacy stores values
// computed by the exact legacy formulas, so the doubles are identical.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/schedule.h"
#include "disk/ladder.h"
#include "disk/parameters.h"
#include "experiments/runner.h"
#include "layout/layout_table.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/error.h"
#include "workloads/benchmarks.h"

namespace sdpm {
namespace {

const disk::DiskParameters& legacy_params() {
  static const disk::DiskParameters p =
      disk::DiskParameters::ultrastar_36z15();
  return p;
}

const disk::DiskParameters& ladder_params() {
  static const disk::DiskParameters p = disk::DiskParameters::from_ladder(
      disk::PowerLadder::from_legacy(legacy_params(), "ultrastar_36z15"));
  return p;
}

TEST(LadderEquivalence, BackingsDiffer) {
  EXPECT_FALSE(legacy_params().has_ladder());
  EXPECT_TRUE(ladder_params().has_ladder());
}

TEST(LadderEquivalence, AccessorsMatchBitForBit) {
  const disk::DiskParameters& a = legacy_params();
  const disk::DiskParameters& b = ladder_params();
  ASSERT_EQ(a.rpm_level_count(), b.rpm_level_count());
  for (int level = 0; level < a.rpm_level_count(); ++level) {
    EXPECT_EQ(a.rpm_of_level(level), b.rpm_of_level(level));
    EXPECT_EQ(a.idle_power_at_level(level), b.idle_power_at_level(level));
    EXPECT_EQ(a.active_power_at_level(level), b.active_power_at_level(level));
    EXPECT_EQ(a.rotational_latency_at_level(level),
              b.rotational_latency_at_level(level));
    EXPECT_EQ(a.transfer_rate_at_level(level),
              b.transfer_rate_at_level(level));
    EXPECT_EQ(a.service_time(kib(64), level, true),
              b.service_time(kib(64), level, true));
    for (int to = 0; to < a.rpm_level_count(); ++to) {
      EXPECT_EQ(a.rpm_transition_time(level, to),
                b.rpm_transition_time(level, to));
      EXPECT_EQ(a.rpm_transition_energy(level, to),
                b.rpm_transition_energy(level, to));
    }
  }
  EXPECT_EQ(a.standby_power(), b.standby_power());
  EXPECT_EQ(a.break_even_time(), b.break_even_time());
  ASSERT_EQ(b.park_count(), 1);
  EXPECT_EQ(a.wake_time(0), b.wake_time(0));
  EXPECT_EQ(a.wake_energy(0), b.wake_energy(0));
  EXPECT_EQ(a.park_entry_time(a.max_level(), 0),
            b.park_entry_time(b.max_level(), 0));
  EXPECT_EQ(a.park_entry_energy(a.max_level(), 0),
            b.park_entry_energy(b.max_level(), 0));
  EXPECT_EQ(a.window_size(), b.window_size());
  EXPECT_EQ(a.lower_tolerance(), b.lower_tolerance());
  EXPECT_EQ(a.upper_tolerance(), b.upper_tolerance());
}

/// galgel over 4 disks with scheduled power calls: the cheapest real
/// trace that still exercises directives (same recipe as the replay-
/// equivalence suite).
const trace::Trace& galgel_trace() {
  static const trace::Trace t = [] {
    const workloads::Benchmark bench = workloads::make_galgel();
    const layout::LayoutTable table(bench.program,
                                    layout::Striping{0, 4, kib(64)}, 4);
    const core::ScheduleResult scheduled =
        core::schedule_power_calls(bench.program, table, legacy_params());
    trace::TraceGenerator generator(scheduled.program, table);
    trace::Trace trace = generator.generate();
    SDPM_REQUIRE(!trace.power_events.empty(),
                 "scheduler inserted no power events");
    return trace;
  }();
  return t;
}

void expect_bit_identical(const sim::SimReport& a, const sim::SimReport& b) {
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.execution_ms, b.execution_ms);
  EXPECT_EQ(a.compute_ms, b.compute_ms);
  EXPECT_EQ(a.io_stall_ms, b.io_stall_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    ASSERT_EQ(a.responses[i], b.responses[i]) << "request " << i;
  }
  ASSERT_EQ(a.disks.size(), b.disks.size());
  for (std::size_t d = 0; d < a.disks.size(); ++d) {
    EXPECT_EQ(a.disks[d].breakdown.total_j(), b.disks[d].breakdown.total_j());
    EXPECT_EQ(a.disks[d].services, b.disks[d].services);
    EXPECT_EQ(a.disks[d].spin_downs, b.disks[d].spin_downs);
    EXPECT_EQ(a.disks[d].demand_spin_ups, b.disks[d].demand_spin_ups);
    EXPECT_EQ(a.disks[d].rpm_transitions, b.disks[d].rpm_transitions);
    EXPECT_EQ(a.disks[d].spin_up_retries, b.disks[d].spin_up_retries);
    EXPECT_EQ(a.disks[d].media_errors, b.disks[d].media_errors);
    EXPECT_EQ(a.disks[d].dropped_directives, b.disks[d].dropped_directives);
  }
}

sim::SimOptions faulty(sim::SimOptions o) {
  o.faults.spin_up_failure_prob = 0.3;
  o.faults.media_error_prob = 0.05;
  o.faults.dropped_directive_prob = 0.2;
  o.faults.service_jitter = 0.1;
  o.faults.seed = 42;
  return o;
}

/// Replay the trace under both backings with identical options and
/// compare the reports field by field.
template <typename MakePolicy>
void check_backings(MakePolicy make_policy, sim::SimOptions options,
                    sim::DispatchMode dispatch) {
  options.capture_responses = true;
  options.dispatch = dispatch;
  auto policy_a = make_policy();
  const sim::SimReport a =
      sim::simulate(galgel_trace(), legacy_params(), policy_a, options);
  auto policy_b = make_policy();
  const sim::SimReport b =
      sim::simulate(galgel_trace(), ladder_params(), policy_b, options);
  expect_bit_identical(a, b);
}

template <typename MakePolicy>
void check_dispatch_and_faults(MakePolicy make_policy) {
  for (const sim::DispatchMode dispatch :
       {sim::DispatchMode::kForceVirtual, sim::DispatchMode::kForceKernel}) {
    SCOPED_TRACE(dispatch == sim::DispatchMode::kForceVirtual ? "virtual"
                                                              : "kernel");
    {
      SCOPED_TRACE("fault-free");
      check_backings(make_policy, sim::SimOptions{}, dispatch);
    }
    {
      SCOPED_TRACE("faulty");
      check_backings(make_policy, faulty({}), dispatch);
    }
  }
}

TEST(LadderEquivalence, ReplayBase) {
  check_dispatch_and_faults([] { return policy::BasePolicy(); });
}

TEST(LadderEquivalence, ReplayTpm) {
  check_dispatch_and_faults([] { return policy::TpmPolicy(); });
}

TEST(LadderEquivalence, ReplayAdaptiveTpm) {
  check_dispatch_and_faults([] { return policy::AdaptiveTpmPolicy(); });
}

TEST(LadderEquivalence, ReplayDrpm) {
  check_dispatch_and_faults([] { return policy::DrpmPolicy(); });
}

TEST(LadderEquivalence, ReplayProactiveDirectives) {
  check_dispatch_and_faults([] { return policy::ProactivePolicy("CMDRPM"); });
}

// Tracing must not perturb equivalence, and both backings must emit the
// same number of events (the ladder backing adds state-name labels, which
// is a rendering difference, not a behavioral one).
TEST(LadderEquivalence, TracedReplayMatches) {
  auto traced_run = [&](const disk::DiskParameters& params,
                        std::int64_t* events) {
    obs::CountingSink sink;
    obs::EventTracer tracer;
    tracer.add_sink(sink);
    sim::SimOptions options;
    options.tracer = &tracer;
    options.capture_responses = true;
    policy::TpmPolicy policy;
    const sim::SimReport report =
        sim::simulate(galgel_trace(), params, policy, options);
    *events = sink.total();
    return report;
  };
  std::int64_t legacy_events = 0;
  std::int64_t ladder_events = 0;
  const sim::SimReport a = traced_run(legacy_params(), &legacy_events);
  const sim::SimReport b = traced_run(ladder_params(), &ladder_events);
  expect_bit_identical(a, b);
  EXPECT_GT(legacy_events, 0);
  EXPECT_EQ(legacy_events, ladder_events);
}

/// One field-by-field SchemeResult comparison (mispredict is optional).
void expect_same_result(const experiments::SchemeResult& a,
                        const experiments::SchemeResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.execution_ms, b.execution_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.normalized_energy, b.normalized_energy);
  EXPECT_EQ(a.normalized_time, b.normalized_time);
  EXPECT_EQ(a.mispredict_pct.has_value(), b.mispredict_pct.has_value());
  if (a.mispredict_pct && b.mispredict_pct) {
    EXPECT_EQ(*a.mispredict_pct, *b.mispredict_pct);
  }
  EXPECT_EQ(a.power_calls, b.power_calls);
}

// The full pipeline — compiler, generator, simulator, oracles — under all
// seven schemes: the ladder backing must land on the same bits scheme by
// scheme (galgel over 4 disks keeps the runtime small).
TEST(LadderEquivalence, AllSevenSchemesBitIdentical) {
  const workloads::Benchmark bench = workloads::make_galgel();
  experiments::ExperimentConfig config_a;
  config_a.total_disks = 4;
  config_a.striping.stripe_factor = 4;
  config_a.disk = legacy_params();
  experiments::ExperimentConfig config_b = config_a;
  config_b.disk = ladder_params();

  experiments::Runner runner_a(bench, config_a);
  experiments::Runner runner_b(bench, config_b);
  for (const experiments::Scheme scheme : experiments::all_schemes()) {
    SCOPED_TRACE(experiments::to_string(scheme));
    expect_same_result(runner_a.run(scheme), runner_b.run(scheme));
  }
}

// Faulted end-to-end runs (spin-up failures, dropped directives) through
// the runner: the fault RNG consumption must line up on both backings.
TEST(LadderEquivalence, FaultedRunnerBitIdentical) {
  const workloads::Benchmark bench = workloads::make_galgel();
  experiments::ExperimentConfig config_a;
  config_a.total_disks = 4;
  config_a.striping.stripe_factor = 4;
  config_a.disk = legacy_params();
  config_a.faults.spin_up_failure_prob = 0.2;
  config_a.faults.dropped_directive_prob = 0.1;
  config_a.faults.seed = 7;
  experiments::ExperimentConfig config_b = config_a;
  config_b.disk = ladder_params();

  experiments::Runner runner_a(bench, config_a);
  experiments::Runner runner_b(bench, config_b);
  for (const experiments::Scheme scheme :
       {experiments::Scheme::kTpm, experiments::Scheme::kCmtpm,
        experiments::Scheme::kCmdrpm}) {
    SCOPED_TRACE(experiments::to_string(scheme));
    expect_same_result(runner_a.run(scheme), runner_b.run(scheme));
  }
}

}  // namespace
}  // namespace sdpm
