// Compiler-directed prefetching (extension): lead semantics in the
// closed-loop simulator and interaction with power management.
#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "ir/builder.h"
#include "policy/base.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace sdpm {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Request make_read(TimeMs arrival, TimeMs lead) {
  trace::Request r;
  r.arrival_ms = arrival;
  r.size_bytes = kib(64);
  r.start_sector = static_cast<BlockNo>(arrival) * 100'000;
  r.prefetch_lead_ms = lead;
  return r;
}

TEST(Prefetch, FullLeadHidesTheStall) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_read(100.0, 50.0));  // service ~6.6 ms << 50 ms
  t.compute_total_ms = 200.0;
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(
      t, params(), policy, sim::SimOptions{.capture_responses = true});
  EXPECT_NEAR(report.execution_ms, 200.0, 1e-9);
  EXPECT_NEAR(report.responses[0], 0.0, 1e-9);
}

TEST(Prefetch, PartialLeadLeavesResidualStall) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_read(100.0, 2.0));
  t.compute_total_ms = 200.0;
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(
      t, params(), policy, sim::SimOptions{.capture_responses = true});
  const TimeMs service =
      params().service_time(kib(64), params().max_level(), false);
  EXPECT_NEAR(report.responses[0], service - 2.0, 1e-9);
  EXPECT_NEAR(report.execution_ms, 200.0 + service - 2.0, 1e-9);
}

TEST(Prefetch, ZeroLeadMatchesSynchronousBehaviour) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_read(100.0, 0.0));
  t.compute_total_ms = 200.0;
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(
      t, params(), policy, sim::SimOptions{.capture_responses = true});
  const TimeMs service =
      params().service_time(kib(64), params().max_level(), false);
  EXPECT_NEAR(report.responses[0], service, 1e-9);
}

TEST(Prefetch, BackToBackPrefetchesKeepFifoOrder) {
  trace::Trace t;
  t.total_disks = 1;
  t.requests.push_back(make_read(100.0, 90.0));
  t.requests.push_back(make_read(101.0, 90.0));  // would issue before #1
  t.compute_total_ms = 200.0;
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(
      t, params(), policy,
      sim::SimOptions{.capture_responses = true,
                      .capture_busy_periods = true});
  // The second issue is clamped to the first's issue time; both still
  // complete before their demand points.
  EXPECT_NEAR(report.responses[1], 0.0, 1.0);
  ASSERT_EQ(report.disks[0].busy_periods.size(), 2u);
  EXPECT_GE(report.disks[0].busy_periods[1].start,
            report.disks[0].busy_periods[0].start);
}

TEST(Prefetch, GeneratorMarksOnlyReads) {
  using ir::sym;
  ir::ProgramBuilder pb("p");
  const ir::ArrayId u = pb.array("U", {16 * 8192});
  pb.nest("rw")
      .loop("i", 0, 16 * 8192)
      .stmt(10.0)
      .read(u, {sym("i")})
      .write(u, {sym("i")})
      .done();
  const ir::Program p = pb.build();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  trace::GeneratorOptions options;
  options.cache_bytes = 0;
  options.prefetch_lead_ms = 5.0;
  trace::TraceGenerator generator(p, table, options);
  const trace::Trace t = generator.generate();
  bool saw_read = false, saw_write = false;
  for (const trace::Request& r : t.requests) {
    if (r.kind == ir::AccessKind::kRead) {
      saw_read = true;
      EXPECT_DOUBLE_EQ(r.prefetch_lead_ms, 5.0);
    } else {
      saw_write = true;
      EXPECT_DOUBLE_EQ(r.prefetch_lead_ms, 0.0);
    }
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
}

TEST(Prefetch, ShrinksExecutionOnRealBenchmark) {
  workloads::Benchmark swim = workloads::make_swim();
  experiments::ExperimentConfig plain;
  experiments::Runner plain_runner(swim, plain);
  const TimeMs without = plain_runner.base_report().execution_ms;

  experiments::ExperimentConfig pf;
  pf.gen.prefetch_lead_ms = 20.0;
  experiments::Runner pf_runner(swim, pf);
  const TimeMs with = pf_runner.base_report().execution_ms;
  EXPECT_LT(with, without * 0.95);
}

TEST(Prefetch, PowerSavingsSurvivePrefetching) {
  // Prefetching is orthogonal to the compiler's power management: with
  // hidden stalls the run is shorter, but CMDRPM still cuts a large share
  // of the (smaller) energy.
  workloads::Benchmark swim = workloads::make_swim();
  experiments::ExperimentConfig pf;
  pf.gen.prefetch_lead_ms = 20.0;
  experiments::Runner runner(swim, pf);
  const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
  EXPECT_LT(cmdrpm.normalized_energy, 0.8);
  EXPECT_LT(cmdrpm.normalized_time, 1.10);
}

}  // namespace
}  // namespace sdpm
