// ResilientPolicy: health scoring, demotion to adaptive TPM, hysteresis,
// directive suppression, and end-to-end value under spin-up faults.
#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "policy/base.h"
#include "policy/proactive.h"
#include "policy/resilient.h"
#include "sim/disk_unit.h"
#include "sim/faults.h"
#include "sim/simulator.h"

namespace sdpm::policy {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

/// Inner policy that counts forwarded power events.
struct CountingPolicy final : sim::PowerPolicy {
  int events = 0;
  void on_power_event(sim::DiskUnit&, TimeMs,
                      const ir::PowerDirective&) override {
    ++events;
  }
  const char* name() const override { return "count"; }
};

ir::PowerDirective spin_down_directive(int disk) {
  return ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, disk, 0};
}

TEST(ResilientPolicy, NameComposesInnerName) {
  BasePolicy inner;
  ResilientPolicy resilient(inner);
  EXPECT_STREQ(resilient.name(), "R+Base");
}

TEST(ResilientPolicy, DemotesAfterRetriesAndMisses) {
  sim::FaultConfig fc;
  fc.spin_up_failure_prob = 1.0;  // every attempt fails until the last
  fc.max_spin_up_retries = 2;
  sim::FaultModel model(fc);
  sim::DiskUnit unit(params(), 0, &model);

  BasePolicy inner;
  ResilientPolicy resilient(inner);
  resilient.attach(unit);
  EXPECT_FALSE(resilient.degraded(0));

  unit.spin_down(0.0);
  const sim::DiskUnit::ServeResult r = unit.serve(60'000.0, 0, kib(64));
  resilient.after_service(unit, r.completion, r.completion - 60'000.0);
  // 2 retries x 1.0 + 1 demand miss x 0.5 = 2.5 >= demote_score (1.0).
  EXPECT_TRUE(resilient.degraded(0));
  EXPECT_EQ(resilient.demotions(), 1);
  EXPECT_EQ(resilient.promotions(), 0);
}

TEST(ResilientPolicy, RepromotesAfterStableWindow) {
  sim::FaultConfig fc;
  fc.spin_up_failure_prob = 1.0;
  fc.max_spin_up_retries = 2;
  sim::FaultModel model(fc);
  sim::DiskUnit unit(params(), 0, &model);

  BasePolicy inner;
  ResilientOptions options;
  options.stable_ms = 30'000.0;
  ResilientPolicy resilient(inner, options);
  resilient.attach(unit);

  unit.spin_down(0.0);
  const sim::DiskUnit::ServeResult r = unit.serve(60'000.0, 0, kib(64));
  resilient.after_service(unit, r.completion, 0.0);
  ASSERT_TRUE(resilient.degraded(0));

  // Still inside the stable window: no promotion yet.
  resilient.before_service(unit, r.completion + 1'000.0);
  EXPECT_TRUE(resilient.degraded(0));
  // Quiet past the window: promoted back to the inner policy.
  resilient.before_service(unit, r.completion + 31'000.0);
  EXPECT_FALSE(resilient.degraded(0));
  EXPECT_EQ(resilient.promotions(), 1);
}

TEST(ResilientPolicy, SuppressesDirectivesOnlyWhileDegraded) {
  sim::FaultConfig fc;
  fc.spin_up_failure_prob = 1.0;
  fc.max_spin_up_retries = 3;
  sim::FaultModel model(fc);
  sim::DiskUnit unit(params(), 0, &model);

  CountingPolicy inner;
  ResilientPolicy resilient(inner);
  resilient.attach(unit);

  // Healthy: events are forwarded to the inner policy.
  resilient.on_power_event(unit, 10.0, spin_down_directive(0));
  EXPECT_EQ(inner.events, 1);
  EXPECT_EQ(resilient.suppressed_directives(), 0);

  unit.spin_down(20.0);
  const sim::DiskUnit::ServeResult r = unit.serve(60'000.0, 0, kib(64));
  resilient.after_service(unit, r.completion, 0.0);
  ASSERT_TRUE(resilient.degraded(0));

  // Degraded: the compiler's plan is no longer trusted for this disk.
  resilient.on_power_event(unit, r.completion + 1.0,
                           spin_down_directive(0));
  EXPECT_EQ(inner.events, 1);  // unchanged
  EXPECT_EQ(resilient.suppressed_directives(), 1);
}

TEST(ResilientPolicy, QuietScoreDecaysBeforeDemotion) {
  // Two widely separated demand misses must not add up to a demotion: the
  // forgiveness window resets the score between them.  No fault model —
  // an unplanned demand wake alone is (weak) evidence against the plan.
  sim::DiskUnit unit(params(), 0, nullptr);

  BasePolicy inner;
  ResilientOptions options;
  options.stable_ms = 30'000.0;
  ResilientPolicy resilient(inner, options);
  resilient.attach(unit);

  unit.spin_down(0.0);
  const sim::DiskUnit::ServeResult r1 = unit.serve(60'000.0, 0, kib(64));
  resilient.after_service(unit, r1.completion, 0.0);
  EXPECT_FALSE(resilient.degraded(0));  // 0.5 < 1.0

  // A long quiet stretch, then another demand miss: forgiven in between.
  unit.spin_down(r1.completion);
  const sim::DiskUnit::ServeResult r2 =
      unit.serve(r1.completion + 100'000.0, 128, kib(64));
  resilient.after_service(unit, r2.completion, 0.0);
  EXPECT_FALSE(resilient.degraded(0));  // score was forgiven, 0.5 again
  EXPECT_EQ(resilient.demotions(), 0);

  // A second miss inside the window does accumulate: 0.5 + 0.5 demotes.
  unit.spin_down(r2.completion);
  const sim::DiskUnit::ServeResult r3 =
      unit.serve(r2.completion + 15'000.0, 256, kib(64));
  resilient.after_service(unit, r3.completion, 0.0);
  EXPECT_TRUE(resilient.degraded(0));
  EXPECT_EQ(resilient.demotions(), 1);
}

TEST(ResilientPolicy, BeatsPlainProactiveUnderFaults) {
  // The acceptance criterion: on an iterative application (the compiler
  // plans one timestep, the run repeats it) with >= 5% spin-up failures,
  // wrapping the compiler-directed scheme in ResilientPolicy must recover
  // execution time relative to the unwrapped scheme while staying below
  // Base energy.
  workloads::Benchmark bench = workloads::make_benchmark("mgrid");
  experiments::ExperimentConfig config;
  config.transform = core::Transformation::kLFDL;
  experiments::Runner runner(bench, config);
  const int steps = 12;
  const trace::Trace plain = trace::repeat_trace(runner.trace(), steps);
  const trace::Trace cm =
      trace::repeat_trace(runner.cm_trace(core::PowerMode::kTpm), steps);

  sim::FaultConfig faults;
  faults.spin_up_failure_prob = 0.05;

  BasePolicy base;
  const sim::SimReport base_report = sim::simulate(
      plain, config.disk, base, sim::ReplayMode::kClosedLoop, faults);

  ProactivePolicy cmtpm("CMTPM");
  const sim::SimReport cm_report = sim::simulate(
      cm, config.disk, cmtpm, sim::ReplayMode::kClosedLoop, faults);

  ProactivePolicy inner("CMTPM");
  ResilientPolicy resilient(inner);
  const sim::SimReport res_report = sim::simulate(
      cm, config.disk, resilient, sim::ReplayMode::kClosedLoop, faults);

  EXPECT_LT(res_report.execution_ms, cm_report.execution_ms);
  EXPECT_LT(res_report.total_energy, base_report.total_energy);
  EXPECT_GT(resilient.demotions(), 0);
}

}  // namespace
}  // namespace sdpm::policy
