// Oracle (ITPM/IDRPM) per-gap primitives and whole-run post-processing.
#include <gtest/gtest.h>

#include "policy/base.h"
#include "policy/oracle.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace sdpm::policy {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

TEST(OracleGap, TopLevelAlwaysFeasible) {
  EXPECT_TRUE(drpm_level_feasible(0.0, params().max_level(), params()));
  EXPECT_NEAR(drpm_gap_energy(1'000.0, params().max_level(), params()),
              joules_from_watt_ms(10.2, 1'000.0), 1e-9);
}

TEST(OracleGap, FeasibilityRequiresRoundTrip) {
  // Level 8 (two steps down): round trip 4 steps = 20 ms by default.
  EXPECT_FALSE(drpm_level_feasible(19.0, 8, params()));
  EXPECT_TRUE(drpm_level_feasible(20.0, 8, params()));
}

TEST(OracleGap, GapEnergyDecomposition) {
  const TimeMs gap = 1'000.0;
  const int level = 5;
  const TimeMs rt = params().rpm_transition_time(10, level) * 2;
  const Joules expected =
      params().rpm_transition_energy(10, level) +
      params().rpm_transition_energy(level, 10) +
      joules_from_watt_ms(params().idle_power_at_level(level), gap - rt);
  EXPECT_NEAR(drpm_gap_energy(gap, level, params()), expected, 1e-9);
}

TEST(OracleGap, InfeasibleLevelThrows) {
  EXPECT_THROW(drpm_gap_energy(5.0, 0, params()), sdpm::Error);
}

TEST(OracleGap, OptimalLevelIsExhaustiveArgmin) {
  for (const TimeMs gap : {10.0, 50.0, 120.0, 400.0, 2'000.0, 30'000.0}) {
    const int best = optimal_rpm_level(gap, params());
    Joules best_energy = drpm_gap_energy(gap, best, params());
    for (int level = 0; level <= params().max_level(); ++level) {
      if (!drpm_level_feasible(gap, level, params())) continue;
      EXPECT_GE(drpm_gap_energy(gap, level, params()), best_energy - 1e-9)
          << "gap " << gap << " level " << level;
    }
  }
}

TEST(OracleGap, ShortGapStaysAtTop) {
  EXPECT_EQ(optimal_rpm_level(5.0, params()), params().max_level());
}

TEST(OracleGap, LongGapReachesMinimum) {
  EXPECT_EQ(optimal_rpm_level(60'000.0, params()), 0);
}

TEST(OracleGap, OptimalLevelMonotoneInGap) {
  // Longer gaps never pick a faster level.
  int prev = params().max_level();
  for (TimeMs gap = 10.0; gap < 5'000.0; gap *= 1.3) {
    const int level = optimal_rpm_level(gap, params());
    EXPECT_LE(level, prev) << "gap " << gap;
    prev = level;
  }
}

TEST(OracleGap, TpmBeneficialMatchesBreakEven) {
  const TimeMs be = params().break_even_time();
  EXPECT_FALSE(tpm_gap_beneficial(be * 0.99, params()));
  EXPECT_TRUE(tpm_gap_beneficial(be * 1.01, params()));
}

TEST(OracleGap, TpmGapEnergyNeverWorseThanIdling) {
  for (const TimeMs gap : {100.0, 10'000.0, 15'000.0, 20'000.0, 100'000.0}) {
    EXPECT_LE(tpm_gap_energy(gap, params()),
              joules_from_watt_ms(10.2, gap) + 1e-9);
  }
}

TEST(OracleGap, TpmGapEnergySpunDownForm) {
  const TimeMs gap = 100'000.0;
  const Joules expected =
      13.0 + 135.0 +
      joules_from_watt_ms(2.5, gap - 1'500.0 - 10'900.0);
  EXPECT_NEAR(tpm_gap_energy(gap, params()), expected, 1e-9);
}

sim::SimReport base_run_with_gap(TimeMs gap_ms) {
  trace::Trace t;
  t.total_disks = 2;
  trace::Request r1;
  r1.arrival_ms = 0.0;
  r1.size_bytes = kib(64);
  r1.disk = 0;
  trace::Request r2 = r1;
  r2.arrival_ms = gap_ms;
  r2.start_sector = 1'000'000;
  t.requests = {r1, r2};
  t.compute_total_ms = gap_ms + 100.0;
  BasePolicy policy;
  // The oracles replay the gaps between busy periods, so capture them.
  return sim::simulate(t, params(), policy,
                       sim::SimOptions{.capture_busy_periods = true});
}

TEST(OracleRun, IdealTpmOnShortGapsEqualsBase) {
  const sim::SimReport base = base_run_with_gap(5'000.0);
  const OracleReport itpm = ideal_tpm(base, params());
  EXPECT_NEAR(itpm.total_energy, base.total_energy, 1e-6);
  EXPECT_EQ(itpm.execution_ms, base.execution_ms);
}

TEST(OracleRun, IdealTpmSavesOnLongGaps) {
  const sim::SimReport base = base_run_with_gap(60'000.0);
  const OracleReport itpm = ideal_tpm(base, params());
  EXPECT_LT(itpm.total_energy, base.total_energy);
  // No performance penalty by construction.
  EXPECT_EQ(itpm.execution_ms, base.execution_ms);
}

TEST(OracleRun, IdealDrpmNeverWorseThanBase) {
  for (const TimeMs gap : {100.0, 1'000.0, 30'000.0}) {
    const sim::SimReport base = base_run_with_gap(gap);
    const OracleReport idrpm = ideal_drpm(base, params());
    EXPECT_LE(idrpm.total_energy, base.total_energy + 1e-6) << gap;
  }
}

TEST(OracleRun, IdealDrpmBeatsIdealTpmOnMediumGaps) {
  // A 5 s gap is below TPM's break-even but ideal for deep RPM reduction.
  const sim::SimReport base = base_run_with_gap(5'000.0);
  EXPECT_LT(ideal_drpm(base, params()).total_energy,
            ideal_tpm(base, params()).total_energy);
}

TEST(OracleRun, ChoicesCoverEveryGap) {
  const sim::SimReport base = base_run_with_gap(10'000.0);
  const OracleReport idrpm = ideal_drpm(base, params());
  // Disk 0: gap before first request (zero-length), between, and trailing;
  // disk 1: one whole-run gap.
  TimeMs covered = 0;
  for (const OracleChoice& c : idrpm.choices) {
    if (c.disk == 0) covered += c.gap_ms;
  }
  const TimeMs busy =
      2 * params().service_time(kib(64), params().max_level(), false);
  EXPECT_NEAR(covered, base.execution_ms - busy, 1e-6);
}

TEST(OracleRun, UntouchedDiskIsOneLongGap) {
  const sim::SimReport base = base_run_with_gap(10'000.0);
  const OracleReport idrpm = ideal_drpm(base, params());
  int disk1_gaps = 0;
  for (const OracleChoice& c : idrpm.choices) {
    if (c.disk == 1) {
      ++disk1_gaps;
      EXPECT_EQ(c.level, 0);  // whole run at minimum RPM
      EXPECT_NEAR(c.gap_ms, base.execution_ms, 1e-6);
    }
  }
  EXPECT_EQ(disk1_gaps, 1);
}

TEST(OracleRun, PerDiskEnergiesSumToTotal) {
  const sim::SimReport base = base_run_with_gap(20'000.0);
  for (const OracleReport& report :
       {ideal_tpm(base, params()), ideal_drpm(base, params())}) {
    Joules sum = 0;
    for (Joules e : report.disk_energy) sum += e;
    EXPECT_NEAR(sum, report.total_energy, 1e-9);
  }
}

}  // namespace
}  // namespace sdpm::policy
