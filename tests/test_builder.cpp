// ProgramBuilder and the symbolic subscript DSL.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "util/error.h"

namespace sdpm::ir {
namespace {

TEST(SymExpr, ResolvesAgainstLoopNames) {
  const SymExpr e = 2 * sym("j") + 5;
  const AffineExpr resolved = e.resolve({"i", "j"});
  EXPECT_EQ(resolved.coefs, (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(resolved.constant, 5);
}

TEST(SymExpr, Arithmetic) {
  const SymExpr e = sym("i") + sym("j") - 3;
  const AffineExpr resolved = e.resolve({"i", "j"});
  EXPECT_EQ(resolved.coefs, (std::vector<std::int64_t>{1, 1}));
  EXPECT_EQ(resolved.constant, -3);
}

TEST(SymExpr, RepeatedVariableAccumulates) {
  const SymExpr e = sym("i") + sym("i");
  const AffineExpr resolved = e.resolve({"i"});
  EXPECT_EQ(resolved.coefs, (std::vector<std::int64_t>{2}));
}

TEST(SymExpr, UnknownVariableThrows) {
  EXPECT_THROW(sym("z").resolve({"i", "j"}), Error);
}

TEST(Builder, BuildsProgram) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {10, 20});
  pb.nest("n1")
      .loop("i", 0, 10)
      .loop("j", 0, 20)
      .stmt(100.0)
      .read(u, {sym("i"), sym("j")})
      .write(u, {sym("i"), sym("j")})
      .done();
  const Program p = pb.build();
  EXPECT_EQ(p.name, "p");
  ASSERT_EQ(p.arrays.size(), 1u);
  ASSERT_EQ(p.nests.size(), 1u);
  const LoopNest& nest = p.nests[0];
  EXPECT_EQ(nest.iteration_count(), 200);
  ASSERT_EQ(nest.body.size(), 1u);
  ASSERT_EQ(nest.body[0].refs.size(), 2u);
  EXPECT_EQ(nest.body[0].refs[0].kind, AccessKind::kRead);
  EXPECT_EQ(nest.body[0].refs[1].kind, AccessKind::kWrite);
}

TEST(Builder, Figure2Program) {
  // The paper's Figure 2(a): two nests over U1 (4S elements) and U2 (2S).
  const std::int64_t s = 8192;  // stripe of doubles
  ProgramBuilder pb("figure2");
  const ArrayId u1 = pb.array("U1", {4 * s});
  const ArrayId u2 = pb.array("U2", {2 * s});
  pb.nest("nest1")
      .loop("i", 0, 2 * s)
      .stmt(10.0)
      .read(u1, {sym("i")})
      .read(u2, {sym("i")})
      .done();
  pb.nest("nest2")
      .loop("i", 0, 2 * s)
      .stmt(10.0)
      .read(u1, {sym("i") + 2 * s})
      .done();
  const Program p = pb.build();
  EXPECT_EQ(p.total_data_bytes(), 6 * s * 8);
  EXPECT_EQ(p.nests[1].body[0].refs[0].subscripts[0].constant, 2 * s);
}

TEST(Builder, StatementBeforeRefRequired) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {4});
  auto nb = pb.nest("n").loop("i", 0, 4);
  EXPECT_THROW(nb.read(u, {sym("i")}), Error);
}

TEST(Builder, LoopsBeforeStatementsRequired) {
  ProgramBuilder pb("p");
  pb.array("U", {4});
  auto nb = pb.nest("n").loop("i", 0, 4).stmt(1.0);
  EXPECT_THROW(nb.loop("j", 0, 4), Error);
}

TEST(Builder, SubscriptRankCheckedAtDone) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {4, 4});
  auto nb = pb.nest("n").loop("i", 0, 4).stmt(1.0).read(u, {sym("i")});
  EXPECT_THROW(nb.done(), Error);
}

TEST(Builder, StatementLabelsDefaultToIndices) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {4});
  pb.nest("n")
      .loop("i", 0, 4)
      .stmt(1.0)
      .read(u, {sym("i")})
      .stmt(1.0)
      .read(u, {sym("i")})
      .done();
  const Program p = pb.build();
  EXPECT_EQ(p.nests[0].body[0].label, "s1");
  EXPECT_EQ(p.nests[0].body[1].label, "s2");
}

TEST(Program, FindArray) {
  ProgramBuilder pb("p");
  pb.array("A", {2});
  pb.array("B", {2});
  Program prog = pb.build();
  EXPECT_EQ(prog.find_array("B").value(), 1);
  EXPECT_FALSE(prog.find_array("C").has_value());
}

TEST(Program, SortDirectives) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {16});
  pb.nest("n").loop("i", 0, 16).stmt(1.0).read(u, {sym("i")}).done();
  Program prog = pb.build();
  prog.directives.push_back(
      {IterationPoint{0, 10},
       PowerDirective{PowerDirective::Kind::kSpinUp, 0, 0}});
  prog.directives.push_back(
      {IterationPoint{0, 2},
       PowerDirective{PowerDirective::Kind::kSpinDown, 0, 0}});
  prog.sort_directives();
  EXPECT_EQ(prog.directives[0].point.flat_iteration, 2);
  EXPECT_EQ(prog.directives[1].point.flat_iteration, 10);
  prog.validate();
}

TEST(Program, ValidateRejectsBadDirective) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {16});
  pb.nest("n").loop("i", 0, 16).stmt(1.0).read(u, {sym("i")}).done();
  Program prog = pb.build();
  prog.directives.push_back(
      {IterationPoint{0, 17},  // beyond iteration_count()
       PowerDirective{PowerDirective::Kind::kSpinDown, 0, 0}});
  EXPECT_THROW(prog.validate(), Error);
}

TEST(Program, ToStringMentionsStructure) {
  ProgramBuilder pb("demo");
  const ArrayId u = pb.array("U", {8, 8});
  pb.nest("sweep")
      .loop("i", 0, 8)
      .loop("j", 0, 8)
      .stmt(1.0)
      .read(u, {sym("i"), sym("j")})
      .done();
  const std::string text = pb.build().to_string();
  EXPECT_NE(text.find("program demo"), std::string::npos);
  EXPECT_NE(text.find("array U"), std::string::npos);
  EXPECT_NE(text.find("sweep"), std::string::npos);
  EXPECT_NE(text.find("R:U[i][j]"), std::string::npos);
}

}  // namespace
}  // namespace sdpm::ir
