// TraceGenerator: request stream correctness.
#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.h"
#include "layout/layout_table.h"
#include "trace/generator.h"
#include "util/error.h"

namespace sdpm::trace {
namespace {

using ir::ProgramBuilder;
using ir::sym;

// One array of 16 blocks (64 KB stripe units) over 4 disks, swept twice.
ir::Program sweep_twice_program() {
  ProgramBuilder pb("p");
  const auto u = pb.array("U", {16 * 8192});  // 1 MB of doubles
  pb.nest("s1").loop("i", 0, 16 * 8192).stmt(100.0).read(u, {sym("i")}).done();
  pb.nest("s2").loop("i", 0, 16 * 8192).stmt(100.0).read(u, {sym("i")}).done();
  return pb.build();
}

GeneratorOptions no_cache() {
  GeneratorOptions o;
  o.cache_bytes = 0;
  return o;
}

TEST(Generator, RequestCountEqualsBlockTouches) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  TraceGenerator gen(p, table, no_cache());
  const Trace trace = gen.generate();
  EXPECT_EQ(trace.request_count(), 32);  // 16 blocks x 2 sweeps
  EXPECT_EQ(trace.bytes_transferred, 2 * mib(1));
}

TEST(Generator, CacheAbsorbsSecondSweepWhenItFits) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  GeneratorOptions o;
  o.cache_bytes = mib(2);  // whole array fits
  TraceGenerator gen(p, table, o);
  EXPECT_EQ(gen.generate().request_count(), 16);
}

TEST(Generator, ArrivalsAreMonotone) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  TraceGenerator gen(p, table, no_cache());
  const Trace trace = gen.generate();
  TimeMs prev = -1;
  for (const Request& r : trace.requests) {
    EXPECT_GE(r.arrival_ms, prev);
    prev = r.arrival_ms;
  }
  EXPECT_GE(trace.compute_total_ms, prev);
}

TEST(Generator, RoundRobinDiskAssignment) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  TraceGenerator gen(p, table, no_cache());
  const Trace trace = gen.generate();
  for (int k = 0; k < 16; ++k) {
    EXPECT_EQ(trace.requests[static_cast<std::size_t>(k)].disk, k % 4);
  }
}

TEST(Generator, WritesCarryWriteKind) {
  ProgramBuilder pb("p");
  const auto u = pb.array("U", {8192});
  pb.nest("n").loop("i", 0, 8192).stmt(1.0).write(u, {sym("i")}).done();
  const ir::Program p = pb.build();
  const layout::LayoutTable table(p, layout::Striping{0, 1, kib(64)}, 1);
  TraceGenerator gen(p, table, no_cache());
  const Trace trace = gen.generate();
  ASSERT_EQ(trace.request_count(), 1);
  EXPECT_EQ(trace.requests[0].kind, ir::AccessKind::kWrite);
}

TEST(Generator, LastPartialBlockIsShorter) {
  ProgramBuilder pb("p");
  const auto u = pb.array("U", {12'000});  // 96'000 B = 1.46 blocks
  pb.nest("n").loop("i", 0, 12'000).stmt(1.0).read(u, {sym("i")}).done();
  const ir::Program p = pb.build();
  const layout::LayoutTable table(p, layout::Striping{0, 2, kib(64)}, 2);
  TraceGenerator gen(p, table, no_cache());
  const Trace trace = gen.generate();
  ASSERT_EQ(trace.request_count(), 2);
  EXPECT_EQ(trace.requests[0].size_bytes, kib(64));
  EXPECT_EQ(trace.requests[1].size_bytes, 96'000 - kib(64));
  EXPECT_EQ(trace.bytes_transferred, 96'000);
}

TEST(Generator, ExplicitBlockSizeMustDivideStripe) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  GeneratorOptions o = no_cache();
  o.block_size = kib(48);  // does not divide 64 KB
  TraceGenerator gen(p, table, o);
  EXPECT_THROW(gen.generate(), Error);
}

TEST(Generator, SmallerBlocksMeanMoreRequests) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  GeneratorOptions o = no_cache();
  o.block_size = kib(16);
  TraceGenerator gen(p, table, o);
  EXPECT_EQ(gen.generate().request_count(), 128);  // 64 blocks x 2 sweeps
}

TEST(Generator, DirectiveOverheadShiftsLaterArrivals) {
  ir::Program p = sweep_twice_program();
  p.directives.push_back(
      {ir::IterationPoint{0, 0},
       ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, 3, 0}});
  p.sort_directives();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);

  GeneratorOptions o = no_cache();
  o.power_call_overhead_ms = 5.0;
  TraceGenerator with_call(p, table, o);
  const Trace t1 = with_call.generate();

  ir::Program p2 = sweep_twice_program();
  TraceGenerator without_call(p2, table, no_cache());
  const Trace t2 = without_call.generate();

  ASSERT_EQ(t1.request_count(), t2.request_count());
  EXPECT_NEAR(t1.requests[0].arrival_ms - t2.requests[0].arrival_ms, 5.0,
              1e-9);
  EXPECT_NEAR(t1.compute_total_ms - t2.compute_total_ms, 5.0, 1e-9);
  ASSERT_EQ(t1.power_events.size(), 1u);
  EXPECT_EQ(t1.power_events[0].directive.disk, 3);
}

TEST(Generator, CollectMissesMatchesTraceRequests) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  const GeneratorOptions o = no_cache();
  const std::vector<MissRecord> misses = collect_misses(p, table, o);
  TraceGenerator gen(p, table, o);
  const Trace trace = gen.generate();
  ASSERT_EQ(misses.size(), trace.requests.size());
  for (std::size_t i = 0; i < misses.size(); ++i) {
    EXPECT_EQ(misses[i].disk, trace.requests[i].disk);
    EXPECT_EQ(misses[i].start_sector, trace.requests[i].start_sector);
    EXPECT_EQ(misses[i].global_iter, trace.requests[i].global_iter);
  }
}

TEST(Trace, WriteTextFormat) {
  const ir::Program p = sweep_twice_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  TraceGenerator gen(p, table, no_cache());
  const Trace trace = gen.generate();
  std::ostringstream os;
  trace.write_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# arrival_ms disk start_sector size_bytes type"),
            std::string::npos);
  EXPECT_NE(text.find(" R\n"), std::string::npos);
}

}  // namespace
}  // namespace sdpm::trace
