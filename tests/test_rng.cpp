// SplitMix64 determinism and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sdpm {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, DoublesInUnitInterval) {
  SplitMix64 rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(SplitMix64, DoubleRangeRespected) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.next_double(-3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(SplitMix64, UniformMeanApproximatelyHalf) {
  SplitMix64 rng(2024);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64, GaussianMoments) {
  SplitMix64 rng(77);
  double sum = 0, sum2 = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(SplitMix64, NextBelowBounds) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1'000; ++i) {
    ASSERT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(DeriveSeed, DistinctStreams) {
  const std::uint64_t parent = 42;
  EXPECT_NE(derive_seed(parent, 0), derive_seed(parent, 1));
  EXPECT_NE(derive_seed(parent, 1), derive_seed(parent, 2));
  // And stable:
  EXPECT_EQ(derive_seed(parent, 5), derive_seed(parent, 5));
}

}  // namespace
}  // namespace sdpm
