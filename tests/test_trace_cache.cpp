// Content-keyed trace cache: key construction must cover every input that
// changes the generated trace (and nothing that doesn't), and the LRU
// cache must hit/miss/evict accordingly.
#include <gtest/gtest.h>

#include <memory>

#include "core/tiling.h"
#include "experiments/trace_cache.h"
#include "layout/layout_table.h"
#include "trace/generator.h"
#include "workloads/benchmarks.h"

namespace sdpm::experiments {
namespace {

constexpr int kDisks = 8;

layout::Striping striping(Bytes stripe = kib(64)) {
  return layout::Striping{0, kDisks, stripe};
}

trace::GeneratorOptions small_cache_options() {
  trace::GeneratorOptions gen;
  gen.cache_bytes = kib(512);
  return gen;
}

TEST(TraceKey, IdenticalInputsProduceEqualKeys) {
  const workloads::Benchmark a = workloads::make_galgel();
  const workloads::Benchmark b = workloads::make_galgel();
  const layout::LayoutTable la(a.program, striping(), kDisks);
  const layout::LayoutTable lb(b.program, striping(), kDisks);
  const trace::GeneratorOptions gen = small_cache_options();
  EXPECT_EQ(trace_key_of(a.program, la, gen), trace_key_of(b.program, lb, gen));
}

TEST(TraceKey, NamesDoNotAffectTheKey) {
  // Names are presentation-only: renaming the program or its arrays must
  // not invalidate cached traces.
  workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  const trace::GeneratorOptions gen = small_cache_options();
  const TraceKey before = trace_key_of(bench.program, table, gen);
  bench.program.name = "renamed";
  for (auto& array : bench.program.arrays) array.name += "_x";
  const layout::LayoutTable renamed(bench.program, striping(), kDisks);
  EXPECT_EQ(before, trace_key_of(bench.program, renamed, gen));
}

TEST(TraceKey, DiffersOnNoiseSeedAndSigma) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  trace::GeneratorOptions gen = small_cache_options();
  gen.noise = trace::CycleNoise{0.2, 1};
  const TraceKey base = trace_key_of(bench.program, table, gen);

  trace::GeneratorOptions other_seed = gen;
  other_seed.noise.seed = 2;
  EXPECT_NE(base, trace_key_of(bench.program, table, other_seed));

  trace::GeneratorOptions other_sigma = gen;
  other_sigma.noise.sigma = 0.4;
  EXPECT_NE(base, trace_key_of(bench.program, table, other_sigma));
}

TEST(TraceKey, DiffersOnGeneratorOptions) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  const trace::GeneratorOptions gen = small_cache_options();
  const TraceKey base = trace_key_of(bench.program, table, gen);

  trace::GeneratorOptions block = gen;
  block.block_size = kib(32);
  EXPECT_NE(base, trace_key_of(bench.program, table, block));

  trace::GeneratorOptions cache = gen;
  cache.cache_bytes = mib(1);
  EXPECT_NE(base, trace_key_of(bench.program, table, cache));

  trace::GeneratorOptions overhead = gen;
  overhead.power_call_overhead_ms = 0.5;
  EXPECT_NE(base, trace_key_of(bench.program, table, overhead));

  trace::GeneratorOptions prefetch = gen;
  prefetch.prefetch_lead_ms = 5.0;
  EXPECT_NE(base, trace_key_of(bench.program, table, prefetch));
}

TEST(TraceKey, DiffersOnLayout) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const trace::GeneratorOptions gen = small_cache_options();
  const layout::LayoutTable base_layout(bench.program, striping(), kDisks);
  const TraceKey base = trace_key_of(bench.program, base_layout, gen);

  const layout::LayoutTable wider_stripe(bench.program, striping(kib(128)),
                                         kDisks);
  EXPECT_NE(base, trace_key_of(bench.program, wider_stripe, gen));

  const layout::LayoutTable fewer_disks(
      bench.program, layout::Striping{0, 4, kib(64)}, 4);
  EXPECT_NE(base, trace_key_of(bench.program, fewer_disks, gen));
}

TEST(TraceKey, DiffersOnTileSize) {
  // Different tile sizes restructure the nests, so the transformed
  // programs must fingerprint differently (a cache hit across tile sizes
  // would replay the wrong trace).
  const workloads::Benchmark bench = workloads::make_wupwise();
  const trace::GeneratorOptions gen = small_cache_options();

  core::TilingOptions small_tiles;
  small_tiles.total_disks = kDisks;
  small_tiles.base_striping = striping();
  small_tiles.access = gen;
  small_tiles.tile_bytes = kib(16);
  core::TilingOptions big_tiles = small_tiles;
  big_tiles.tile_bytes = mib(4);

  const core::TilingResult a = core::apply_loop_tiling(bench.program,
                                                       small_tiles);
  const core::TilingResult b = core::apply_loop_tiling(bench.program,
                                                       big_tiles);
  // The premise: the two footprints pick different tile shapes.
  ASSERT_NE(a.program.to_string(), b.program.to_string());
  const layout::LayoutTable la(a.program, striping(), kDisks);
  const layout::LayoutTable lb(b.program, striping(), kDisks);
  EXPECT_NE(trace_key_of(a.program, la, gen),
            trace_key_of(b.program, lb, gen));
}

TEST(TraceCacheTest, HitReturnsTheSameTrace) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  const trace::GeneratorOptions gen = small_cache_options();

  TraceCache cache(4);
  const auto first = cache.get_or_generate(bench.program, table, gen);
  const auto second = cache.get_or_generate(bench.program, table, gen);
  EXPECT_EQ(first.get(), second.get());  // the very same object
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCacheTest, CachedTraceEqualsFreshGeneration) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  const trace::GeneratorOptions gen = small_cache_options();

  TraceCache cache(4);
  const auto cached = cache.get_or_generate(bench.program, table, gen);
  const trace::Trace fresh =
      trace::TraceGenerator(bench.program, table, gen).generate();
  ASSERT_EQ(cached->requests.size(), fresh.requests.size());
  EXPECT_EQ(cached->compute_total_ms, fresh.compute_total_ms);
  EXPECT_EQ(cached->bytes_transferred, fresh.bytes_transferred);
  for (std::size_t i = 0; i < fresh.requests.size(); ++i) {
    ASSERT_EQ(cached->requests[i].arrival_ms, fresh.requests[i].arrival_ms);
    ASSERT_EQ(cached->requests[i].disk, fresh.requests[i].disk);
    ASSERT_EQ(cached->requests[i].start_sector,
              fresh.requests[i].start_sector);
    ASSERT_EQ(cached->requests[i].size_bytes, fresh.requests[i].size_bytes);
  }
}

TEST(TraceCacheTest, DifferentSeedsOccupyDistinctEntries) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  trace::GeneratorOptions gen = small_cache_options();
  gen.noise = trace::CycleNoise{0.2, 1};

  TraceCache cache(4);
  const auto first = cache.get_or_generate(bench.program, table, gen);
  gen.noise.seed = 2;
  const auto second = cache.get_or_generate(bench.program, table, gen);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCacheTest, EvictsLeastRecentlyUsed) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  trace::GeneratorOptions gen = small_cache_options();

  TraceCache cache(2);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen.noise = trace::CycleNoise{0.2, seed};
    cache.get_or_generate(bench.program, table, gen);
  }
  EXPECT_EQ(cache.size(), 2u);  // seed 1 was evicted
}

TEST(TraceCacheTest, SharedPtrOutlivesEviction) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  trace::GeneratorOptions gen = small_cache_options();

  TraceCache cache(1);
  gen.noise = trace::CycleNoise{0.2, 1};
  const auto held = cache.get_or_generate(bench.program, table, gen);
  const std::size_t n = held->requests.size();
  gen.noise = trace::CycleNoise{0.2, 2};
  cache.get_or_generate(bench.program, table, gen);  // evicts the first
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(held->requests.size(), n);  // still fully usable
}

TEST(TraceCacheTest, DisablingClearsAndBypasses) {
  const workloads::Benchmark bench = workloads::make_galgel();
  const layout::LayoutTable table(bench.program, striping(), kDisks);
  const trace::GeneratorOptions gen = small_cache_options();

  TraceCache cache(4);
  cache.get_or_generate(bench.program, table, gen);
  EXPECT_EQ(cache.size(), 1u);

  cache.set_enabled(false);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.size(), 0u);  // disabling clears
  const auto a = cache.get_or_generate(bench.program, table, gen);
  const auto b = cache.get_or_generate(bench.program, table, gen);
  EXPECT_NE(a.get(), b.get());  // every call generates afresh
  EXPECT_EQ(cache.size(), 0u);

  cache.set_enabled(true);
  EXPECT_TRUE(cache.enabled());
  cache.get_or_generate(bench.program, table, gen);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace sdpm::experiments
