// LayoutTable: physical region allocation across arrays.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "layout/layout_table.h"
#include "util/error.h"

namespace sdpm::layout {
namespace {

ir::Program two_array_program() {
  ir::ProgramBuilder pb("p");
  pb.array("A", {1024});           // 8 KB
  pb.array("B", {2048});           // 16 KB
  return pb.build();
}

TEST(LayoutTable, UniformStriping) {
  const ir::Program p = two_array_program();
  const LayoutTable table(p, Striping{0, 4, 1024}, 4);
  EXPECT_EQ(table.array_count(), 2u);
  EXPECT_EQ(table.layout_of(0).striping().stripe_factor, 4);
  EXPECT_EQ(table.layout_of(1).file_size(), 2048 * 8);
}

TEST(LayoutTable, RegionsDoNotOverlap) {
  const ir::Program p = two_array_program();
  const LayoutTable table(p, Striping{0, 2, 1024}, 2);
  // A occupies 4 stripes (8KB/1KB), 2 per disk; B starts after them.
  const PhysicalLocation a0 = table.locate(0, 0);
  const PhysicalLocation b0 = table.locate(1, 0);
  EXPECT_EQ(a0.disk, 0);
  EXPECT_EQ(a0.disk_byte, 0);
  EXPECT_EQ(b0.disk, 0);
  EXPECT_EQ(b0.disk_byte, table.layout_of(0).bytes_on_disk(0));
}

TEST(LayoutTable, PerArrayStriping) {
  const ir::Program p = two_array_program();
  std::vector<Striping> stripings = {Striping{0, 2, 1024},
                                     Striping{2, 2, 1024}};
  const LayoutTable table(p, stripings, 4);
  EXPECT_EQ(table.locate(0, 0).disk, 0);
  EXPECT_EQ(table.locate(1, 0).disk, 2);
  // Disjoint disk sets.
  for (const int d : table.disks_of(0)) {
    EXPECT_TRUE(d == 0 || d == 1);
  }
  for (const int d : table.disks_of(1)) {
    EXPECT_TRUE(d == 2 || d == 3);
  }
}

TEST(LayoutTable, PerArrayStripingSizeMismatchThrows) {
  const ir::Program p = two_array_program();
  EXPECT_THROW(LayoutTable(p, std::vector<Striping>{Striping{}}, 8), Error);
}

TEST(LayoutTable, BytesOnDiskAggregates) {
  const ir::Program p = two_array_program();
  const LayoutTable table(p, Striping{0, 2, 1024}, 2);
  Bytes total = 0;
  for (int d = 0; d < 2; ++d) total += table.bytes_on_disk(d);
  EXPECT_GE(total, p.total_data_bytes());
}

TEST(LayoutTable, LocateConsistentWithFileLayout) {
  const ir::Program p = two_array_program();
  const LayoutTable table(p, Striping{1, 3, 512}, 4);
  for (Bytes off = 0; off < 8192; off += 511) {
    const DiskLocation dl = table.layout_of(0).locate(off);
    const PhysicalLocation pl = table.locate(0, off);
    EXPECT_EQ(pl.disk, dl.disk);
    // Array A is allocated first, so its region starts at 0 on every disk.
    EXPECT_EQ(pl.disk_byte, dl.offset);
  }
}

TEST(LayoutTable, DistinctArraysNeverAlias) {
  const ir::Program p = two_array_program();
  const LayoutTable table(p, Striping{0, 2, 1024}, 2);
  // Compare every block start of A with every block start of B.
  for (Bytes a_off = 0; a_off < 8192; a_off += 1024) {
    for (Bytes b_off = 0; b_off < 16384; b_off += 1024) {
      const PhysicalLocation pa = table.locate(0, a_off);
      const PhysicalLocation pb = table.locate(1, b_off);
      EXPECT_FALSE(pa == pb);
    }
  }
}

}  // namespace
}  // namespace sdpm::layout
