// Layout-aware loop tiling (Fig. 12): costly-nest selection, blocked
// reshape, tile-to-disk mapping, applicability rules.
#include <gtest/gtest.h>

#include "core/tiling.h"
#include "ir/builder.h"
#include "trace/generator.h"

namespace sdpm::core {
namespace {

using ir::ArrayId;
using ir::ProgramBuilder;
using ir::StorageLayout;
using ir::sym;

// A program with a cheap sweep over a shared array and an expensive private
// nest over M1 (conforming) and M2 (column-major, i.e. non-conforming).
ir::Program tiling_program() {
  ProgramBuilder pb("tl");
  const ArrayId shared = pb.array("SH", {256, 256});
  const ArrayId m1 = pb.array("M1", {128, 256});
  const ArrayId m2 = pb.array("M2", {128, 256}, 8, StorageLayout::kColMajor);
  pb.nest("sweep")
      .loop("i", 0, 256)
      .loop("j", 0, 256)
      .stmt(10.0)
      .read(shared, {sym("i"), sym("j")})
      .done();
  pb.nest("mult")
      .loop("i", 0, 128)
      .loop("j", 0, 256)
      .stmt(100'000.0)  // by far the most disk-energy-costly nest
      .read(m1, {sym("i"), sym("j")})
      .read(m2, {sym("i"), sym("j")})
      .write(m1, {sym("i"), sym("j")})
      .done();
  return pb.build();
}

TilingOptions small_options() {
  TilingOptions o;
  o.total_disks = 4;
  o.base_striping = layout::Striping{0, 4, kib(64)};
  o.tile_bytes = kib(64);
  o.access.cache_bytes = 0;
  return o;
}

TEST(Tiling, SelectsCostliestNest) {
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  EXPECT_TRUE(result.applied);
  EXPECT_EQ(result.tiled_nest, 1);
}

TEST(Tiling, NestOverrideRespected) {
  const ir::Program p = tiling_program();
  TilingOptions o = small_options();
  o.nest_override = 0;
  const TilingResult result = apply_loop_tiling(p, o);
  EXPECT_EQ(result.tiled_nest, 0);
}

TEST(Tiling, BlockedReshapeOfPrivateArrays) {
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  // M1 and M2 are private to the costly nest: both reshaped.
  ASSERT_EQ(result.reshaped_arrays.size(), 2u);
  // M2's storage did not match the access order -> permutation required.
  ASSERT_EQ(result.permuted_arrays.size(), 1u);
  EXPECT_EQ(result.permuted_arrays[0], 2);
  // Reshaped arrays are 4-D blocked with the chosen tile in the tail dims.
  const ir::Array& m1 = result.program.arrays[1];
  ASSERT_EQ(m1.rank(), 4);
  EXPECT_EQ(m1.extents[2], result.tile_rows);
  EXPECT_EQ(m1.extents[3], result.tile_cols);
  EXPECT_EQ(m1.extents[0] * m1.extents[2], 128);
  EXPECT_EQ(m1.extents[1] * m1.extents[3], 256);
  // Element count is preserved by the reshape.
  EXPECT_EQ(m1.element_count(), 128 * 256);
}

TEST(Tiling, SharedArrayNotReshaped) {
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  EXPECT_EQ(result.program.arrays[0].rank(), 2);  // SH untouched
  EXPECT_EQ(result.striping[0], small_options().base_striping);
}

TEST(Tiling, TileToDiskStriping) {
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  const layout::Striping& s = result.striping[1];
  EXPECT_EQ(s.starting_disk, 0);
  EXPECT_EQ(s.stripe_factor, 4);
  // DS(i): the per-tile footprint.
  EXPECT_EQ(s.stripe_size, result.tile_rows * result.tile_cols * 8);
}

TEST(Tiling, TiledProgramValidatesAndKeepsIterations) {
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  result.program.validate();
  EXPECT_EQ(result.program.nests[1].iteration_count(),
            p.nests[1].iteration_count());
  EXPECT_EQ(result.program.nests[1].depth(), 4);
}

TEST(Tiling, CollocatedTilesLandOnSameDisk) {
  // After the reshape, tile k of M1 and tile k of M2 map to the same disk.
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  const layout::LayoutTable table(result.program, result.striping, 4);
  const Bytes tile_bytes = result.tile_rows * result.tile_cols * 8;
  const std::int64_t tiles =
      (128 / result.tile_rows) * (256 / result.tile_cols);
  for (std::int64_t k = 0; k < tiles; ++k) {
    EXPECT_EQ(table.locate(1, k * tile_bytes).disk,
              table.locate(2, k * tile_bytes).disk);
  }
}

TEST(Tiling, LayoutObliviousOnlyChangesLoops) {
  const ir::Program p = tiling_program();
  TilingOptions o = small_options();
  o.layout_aware = false;
  const TilingResult result = apply_loop_tiling(p, o);
  EXPECT_TRUE(result.applied);
  EXPECT_TRUE(result.reshaped_arrays.empty());
  EXPECT_EQ(result.program.arrays[1].rank(), 2);
  EXPECT_EQ(result.striping[1], o.base_striping);
  EXPECT_EQ(result.program.nests[1].depth(), 4);
}

TEST(Tiling, FamilyOfIdenticalNestsTiledTogether) {
  ProgramBuilder pb("family");
  const ArrayId m = pb.array("M", {128, 128});
  for (int k = 0; k < 3; ++k) {
    pb.nest("jac" + std::to_string(k))
        .loop("i", 0, 128)
        .loop("j", 0, 128)
        .stmt(50'000.0)
        .read(m, {sym("i"), sym("j")})
        .write(m, {sym("i"), sym("j")})
        .done();
  }
  const TilingResult result = apply_loop_tiling(pb.build(), small_options());
  EXPECT_TRUE(result.applied);
  // M is confined to the (identical) family -> reshaped, and every family
  // member was tiled.
  EXPECT_EQ(result.reshaped_arrays.size(), 1u);
  for (const ir::LoopNest& nest : result.program.nests) {
    EXPECT_EQ(nest.depth(), 4);
  }
  result.program.validate();
}

TEST(Tiling, ArrayReferencedOutsideFamilyNotReshaped) {
  ProgramBuilder pb("notprivate");
  const ArrayId m = pb.array("M", {128, 128});
  pb.nest("big")
      .loop("i", 0, 128)
      .loop("j", 0, 128)
      .stmt(50'000.0)
      .read(m, {sym("i"), sym("j")})
      .done();
  pb.nest("other")  // different structure, same array
      .loop("i", 0, 64)
      .loop("j", 0, 64)
      .stmt(1.0)
      .read(m, {sym("i"), sym("j")})
      .done();
  const TilingResult result = apply_loop_tiling(pb.build(), small_options());
  EXPECT_TRUE(result.applied);
  EXPECT_TRUE(result.reshaped_arrays.empty());
  EXPECT_NE(result.note.find("not applicable"), std::string::npos);
}

TEST(Tiling, InconsistentOrientationBlocksReshape) {
  // The same array read both as M[i][j] and M[j][i] cannot be blocked.
  ProgramBuilder pb("both");
  const ArrayId m = pb.array("M", {128, 128});
  pb.nest("n")
      .loop("i", 0, 128)
      .loop("j", 0, 128)
      .stmt(50'000.0)
      .read(m, {sym("i"), sym("j")})
      .read(m, {sym("j"), sym("i")})
      .done();
  const TilingResult result = apply_loop_tiling(pb.build(), small_options());
  EXPECT_TRUE(result.applied);
  EXPECT_TRUE(result.reshaped_arrays.empty());
}

TEST(Tiling, NonPermutationSubscriptNotTilable) {
  ProgramBuilder pb("stencil");
  const ArrayId m = pb.array("M", {130, 130});
  pb.nest("n")
      .loop("i", 0, 128)
      .loop("j", 0, 128)
      .stmt(50'000.0)
      .read(m, {sym("i") + 1, sym("j") + 1})  // constant offsets
      .done();
  const TilingResult result = apply_loop_tiling(pb.build(), small_options());
  EXPECT_FALSE(result.applied);
  EXPECT_NE(result.note.find("not a permutation"), std::string::npos);
}

TEST(Tiling, DepthOneNestNotTilable) {
  ProgramBuilder pb("shallow");
  const ArrayId v = pb.array("V", {4096});
  pb.nest("n").loop("i", 0, 4096).stmt(1.0).read(v, {sym("i")}).done();
  const TilingResult result = apply_loop_tiling(pb.build(), small_options());
  EXPECT_FALSE(result.applied);
}

TEST(Tiling, AccessesPreservedThroughReshape) {
  // The blocked program must touch exactly as many distinct tiles as the
  // original touches element regions: verify via total misses with no
  // cache at tile granularity.
  const ir::Program p = tiling_program();
  const TilingResult result = apply_loop_tiling(p, small_options());
  const layout::LayoutTable table(result.program, result.striping, 4);
  trace::GeneratorOptions gen;
  gen.cache_bytes = mib(64);  // generous: one miss per distinct block
  const auto misses = trace::collect_misses(result.program, table, gen);
  // M1: tiles touched once each; M2: same; SH: its own blocks.
  const Bytes tile_bytes = result.tile_rows * result.tile_cols * 8;
  const std::int64_t tiles_per_array = (128 * 256 * 8) / tile_bytes;
  std::int64_t m_misses = 0;
  for (const auto& miss : misses) {
    if (miss.array != 0) ++m_misses;
  }
  EXPECT_EQ(m_misses, 2 * tiles_per_array);
}

TEST(MissesPerNest, CountsAttributedCorrectly) {
  const ir::Program p = tiling_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  trace::GeneratorOptions gen;
  gen.cache_bytes = mib(64);  // one miss per distinct block
  const auto counts = misses_per_nest(p, table, gen);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 8);  // SH: 512 KB / 64 KB
  EXPECT_EQ(counts[1], 8);  // M1 (4 blocks) + M2 (4 blocks), writes hit
}

TEST(DiskEnergyPerNest, DurationDominatedRanking) {
  const ir::Program p = tiling_program();
  const layout::LayoutTable table(p, layout::Striping{0, 4, kib(64)}, 4);
  trace::GeneratorOptions gen;
  gen.cache_bytes = 0;
  const auto energy = disk_energy_per_nest(p, table, gen, 4);
  ASSERT_EQ(energy.size(), 2u);
  EXPECT_GT(energy[1], energy[0]);
}

TEST(MultiNestTiling, TilesEveryApplicableFamily) {
  // Two private-array nest families with different costs: the multi-nest
  // extension tiles both; the single-nest pass tiles only the costlier.
  ProgramBuilder pb("multi");
  const ArrayId m1 = pb.array("M1", {128, 128});
  const ArrayId m2 = pb.array("M2", {128, 128});
  pb.nest("heavy")
      .loop("i", 0, 128)
      .loop("j", 0, 128)
      .stmt(90'000.0)
      .read(m1, {sym("i"), sym("j")})
      .write(m1, {sym("i"), sym("j")})
      .done();
  pb.nest("light")
      .loop("i", 0, 128)
      .loop("j", 0, 128)
      .stmt(30'000.0)
      .read(m2, {sym("i"), sym("j")})
      .write(m2, {sym("i"), sym("j")})
      .done();
  const ir::Program p = pb.build();

  TilingOptions single = small_options();
  const TilingResult one = apply_loop_tiling(p, single);
  EXPECT_EQ(one.reshaped_arrays.size(), 1u);
  EXPECT_EQ(one.tiled_nest, 0);

  TilingOptions multi = small_options();
  multi.all_nests = true;
  const TilingResult all = apply_loop_tiling(p, multi);
  EXPECT_TRUE(all.applied);
  EXPECT_EQ(all.reshaped_arrays.size(), 2u);
  for (const ir::LoopNest& nest : all.program.nests) {
    EXPECT_EQ(nest.depth(), 4);
  }
  all.program.validate();
}

TEST(MultiNestTiling, TerminatesOnUntilableProgram) {
  ProgramBuilder pb("flat");
  const ArrayId v = pb.array("V", {4096});
  pb.nest("n").loop("i", 0, 4096).stmt(1.0).read(v, {sym("i")}).done();
  TilingOptions multi = small_options();
  multi.all_nests = true;
  const TilingResult result = apply_loop_tiling(pb.build(), multi);
  EXPECT_FALSE(result.applied);
}

TEST(MultiNestTiling, EquivalentAccessesPreserved) {
  ProgramBuilder pb("multi2");
  const ArrayId m1 = pb.array("M1", {64, 64});
  const ArrayId m2 = pb.array("M2", {64, 64});
  pb.nest("a")
      .loop("i", 0, 64)
      .loop("j", 0, 64)
      .stmt(50'000.0)
      .read(m1, {sym("i"), sym("j")})
      .done();
  pb.nest("b")
      .loop("i", 0, 64)
      .loop("j", 0, 64)
      .stmt(40'000.0)
      .read(m2, {sym("j"), sym("i")})
      .done();
  const ir::Program p = pb.build();
  TilingOptions multi = small_options();
  multi.all_nests = true;
  multi.tile_bytes = kib(8);
  const TilingResult result = apply_loop_tiling(p, multi);
  EXPECT_EQ(result.reshaped_arrays.size(), 2u);
  // M2 is accessed transposed: it must be among the permuted arrays.
  EXPECT_EQ(result.permuted_arrays.size(), 1u);
  // Same number of iterations overall.
  std::int64_t before = 0, after = 0;
  for (const auto& nest : p.nests) before += nest.iteration_count();
  for (const auto& nest : result.program.nests) {
    after += nest.iteration_count();
  }
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace sdpm::core
