// Timeline, IterationSpace, CycleNoise, and StallAwareTimeline.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "trace/stall_aware.h"
#include "trace/timeline.h"
#include "util/error.h"

namespace sdpm::trace {
namespace {

using ir::ProgramBuilder;
using ir::sym;

ir::Program two_nest_program() {
  ProgramBuilder pb("p");
  const auto u = pb.array("U", {100});
  pb.nest("n1").loop("i", 0, 100).stmt(750.0).read(u, {sym("i")}).done();
  pb.nest("n2").loop("i", 0, 50).stmt(1500.0).read(u, {sym("i")}).done();
  return pb.build();
}

TEST(IterationSpace, GlobalCoordinates) {
  const ir::Program p = two_nest_program();
  const IterationSpace space(p);
  EXPECT_EQ(space.total(), 150);
  EXPECT_EQ(space.nest_begin(0), 0);
  EXPECT_EQ(space.nest_end(0), 100);
  EXPECT_EQ(space.nest_begin(1), 100);
  EXPECT_EQ(space.nest_end(1), 150);
  EXPECT_EQ(space.global_of({1, 10}), 110);
}

TEST(IterationSpace, PointOfRoundTrips) {
  const ir::Program p = two_nest_program();
  const IterationSpace space(p);
  for (std::int64_t g = 0; g < space.total(); ++g) {
    EXPECT_EQ(space.global_of(space.point_of(g)), g);
  }
  // End sentinel maps to the end of the last nest.
  const ir::IterationPoint end = space.point_of(space.total());
  EXPECT_EQ(end.nest_index, 1);
  EXPECT_EQ(end.flat_iteration, 50);
}

TEST(Timeline, PerIterationAtClockRate) {
  const ir::Program p = two_nest_program();
  const Timeline tl(p, 750e6);
  // 750 cycles at 750 MHz = 1 microsecond.
  EXPECT_NEAR(tl.per_iteration_ms(0), 0.001, 1e-12);
  EXPECT_NEAR(tl.per_iteration_ms(1), 0.002, 1e-12);
  EXPECT_NEAR(tl.total(), 100 * 0.001 + 50 * 0.002, 1e-9);
}

TEST(Timeline, AtIsMonotone) {
  const ir::Program p = two_nest_program();
  const Timeline tl(p, 750e6);
  TimeMs prev = -1;
  for (std::int64_t g = 0; g <= tl.space().total(); ++g) {
    const TimeMs t = tl.at_global(g);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Timeline, NestBoundariesLineUp) {
  const ir::Program p = two_nest_program();
  const Timeline tl(p, 750e6);
  EXPECT_NEAR(tl.nest_start(1), tl.at_global(100), 1e-12);
  EXPECT_NEAR(tl.at({1, 0}), tl.nest_start(1), 1e-12);
}

TEST(Timeline, MultipliersScalePerNest) {
  const ir::Program p = two_nest_program();
  const Timeline tl(p, {2.0, 0.5}, 750e6);
  EXPECT_NEAR(tl.per_iteration_ms(0), 0.002, 1e-12);
  EXPECT_NEAR(tl.per_iteration_ms(1), 0.001, 1e-12);
}

TEST(Timeline, NoiseIsDeterministic) {
  const ir::Program p = two_nest_program();
  const CycleNoise noise{0.2, 99};
  const Timeline a = Timeline::with_noise(p, noise);
  const Timeline b = Timeline::with_noise(p, noise);
  EXPECT_EQ(a.multipliers(), b.multipliers());
  EXPECT_NE(a.multipliers()[0], 1.0);
}

TEST(Timeline, ZeroSigmaMeansNominal) {
  const ir::Program p = two_nest_program();
  const Timeline tl = Timeline::with_noise(p, CycleNoise::none());
  EXPECT_EQ(tl.multipliers(), (std::vector<double>{1.0, 1.0}));
}

TEST(Timeline, DifferentSeedsDiffer) {
  const ir::Program p = two_nest_program();
  const Timeline a = Timeline::with_noise(p, CycleNoise{0.2, 1});
  const Timeline b = Timeline::with_noise(p, CycleNoise{0.2, 2});
  EXPECT_NE(a.multipliers(), b.multipliers());
}

TEST(StallAware, AddsStallsAtIterations) {
  const ir::Program p = two_nest_program();
  Timeline compute(p, 750e6);
  // Requests at global iterations 10 and 20 with 5 ms and 7 ms responses.
  const StallAwareTimeline sa(compute, {10, 20}, std::vector<TimeMs>{5, 7});
  EXPECT_NEAR(sa.at_global(10), compute.at_global(10), 1e-12);
  EXPECT_NEAR(sa.at_global(11), compute.at_global(11) + 5, 1e-12);
  EXPECT_NEAR(sa.at_global(20), compute.at_global(20) + 5, 1e-12);
  EXPECT_NEAR(sa.at_global(21), compute.at_global(21) + 12, 1e-12);
  EXPECT_NEAR(sa.total_stall_ms(), 12, 1e-12);
}

TEST(StallAware, FlatAverageConstructor) {
  const ir::Program p = two_nest_program();
  Timeline compute(p, 750e6);
  const StallAwareTimeline sa(compute, {5, 10, 15}, 2.0);
  EXPECT_NEAR(sa.at_global(16) - compute.at_global(16), 6.0, 1e-12);
}

TEST(StallAware, MonotoneLikeAnyTimeEstimate) {
  const ir::Program p = two_nest_program();
  Timeline compute(p, 750e6);
  const StallAwareTimeline sa(compute, {3, 3, 80}, 4.0);
  TimeMs prev = -1;
  for (std::int64_t g = 0; g <= sa.total_iterations(); ++g) {
    const TimeMs t = sa.at_global(g);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(StallAware, RejectsUnsortedOrMismatched) {
  const ir::Program p = two_nest_program();
  Timeline compute(p, 750e6);
  EXPECT_THROW(StallAwareTimeline(compute, {5, 3},
                                  std::vector<TimeMs>{1, 1}),
               Error);
  EXPECT_THROW(StallAwareTimeline(compute, {1, 2},
                                  std::vector<TimeMs>{1}),
               Error);
}

}  // namespace
}  // namespace sdpm::trace
