// Schedule certifier: the abstract-interpretation bounds of
// analysis/bounds.h must bracket the simulator's measured closed-loop
// energy and execution time for every (schedule, scheme) we can build —
// clean schedules, un-preactivated schedules, every seeded mutation, and
// the full benchmark corpus in both CM modes, with and without timing
// noise.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bounds.h"
#include "analysis/interval_domain.h"
#include "analysis/mutate.h"
#include "core/compiler.h"
#include "core/schedule.h"
#include "ir/builder.h"
#include "layout/layout_table.h"
#include "policy/proactive.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "workloads/benchmarks.h"

namespace sdpm::analysis {
namespace {

using core::PowerMode;
using core::ScheduleResult;
using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

// ---------------------------------------------------------------------------
// TimeIntervalSet (the abstract domain's interval sets)

TEST(TimeIntervalSet, InsertMergesOverlappingAndTouching) {
  TimeIntervalSet set;
  set.insert(10, 20);
  set.insert(40, 50);
  EXPECT_EQ(set.size(), 2u);
  set.insert(20, 40);  // touches both: one interval remains
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.intervals().front().lo_ms, 10);
  EXPECT_DOUBLE_EQ(set.intervals().front().hi_ms, 50);
  EXPECT_DOUBLE_EQ(set.total_length(), 40);
}

TEST(TimeIntervalSet, InsertKeepsDisjointIntervalsSorted) {
  TimeIntervalSet set;
  set.insert(30, 35);
  set.insert(0, 5);
  set.insert(10, 15);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].lo_ms, 0);
  EXPECT_DOUBLE_EQ(set.intervals()[1].lo_ms, 10);
  EXPECT_DOUBLE_EQ(set.intervals()[2].lo_ms, 30);
  EXPECT_TRUE(set.contains(12));
  EXPECT_FALSE(set.contains(20));
}

TEST(TimeIntervalSet, ComplementWithinWindow) {
  TimeIntervalSet set;
  set.insert(10, 20);
  set.insert(30, 40);
  const TimeIntervalSet gaps = set.complement_within(0, 50);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps.intervals()[0].lo_ms, 0);
  EXPECT_DOUBLE_EQ(gaps.intervals()[0].hi_ms, 10);
  EXPECT_DOUBLE_EQ(gaps.intervals()[1].lo_ms, 20);
  EXPECT_DOUBLE_EQ(gaps.intervals()[1].hi_ms, 30);
  EXPECT_DOUBLE_EQ(gaps.intervals()[2].lo_ms, 40);
  EXPECT_DOUBLE_EQ(gaps.intervals()[2].hi_ms, 50);
  EXPECT_DOUBLE_EQ(gaps.total_length(), 30);
}

// ---------------------------------------------------------------------------
// Bounds vs. measured ground truth

trace::GeneratorOptions access_options() {
  trace::GeneratorOptions o;
  o.cache_bytes = 0;
  return o;
}

/// Simulate the trace under ProactivePolicy in closed loop (the replay the
/// certificate is sound for).
sim::SimReport measure(const trace::Trace& trace) {
  policy::ProactivePolicy policy("certified");
  sim::SimOptions options;
  options.mode = sim::ReplayMode::kClosedLoop;
  return sim::simulate(trace, params(), policy, options);
}

/// Assert the certificate brackets the measured run.
void expect_brackets(const ScheduleCertificate& cert,
                     const sim::SimReport& report, const std::string& what) {
  EXPECT_LE(cert.energy_lo_j, report.total_energy + 1e-6) << what;
  EXPECT_GE(cert.energy_hi_j, report.total_energy - 1e-6) << what;
  EXPECT_LE(cert.exec_lo_ms, report.execution_ms + 1e-6) << what;
  EXPECT_GE(cert.exec_hi_ms, report.execution_ms - 1e-6) << what;
  EXPECT_EQ(cert.requests, report.requests) << what;
}

// Two sequential phases over private arrays on two disks (the
// cross-phase-gap fixture the scheduler acts on).
struct TwoPhase {
  ir::Program program;
  std::vector<layout::Striping> striping;

  TwoPhase() {
    ProgramBuilder pb("twophase");
    const ArrayId a = pb.array("A", {64 * 8192});
    const ArrayId b = pb.array("B", {64 * 8192});
    pb.nest("phase1")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(a, {sym("i")})
        .done();
    pb.nest("phase2")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(b, {sym("i")})
        .done();
    program = pb.build();
    striping = {layout::Striping{0, 1, kib(64)},
                layout::Striping{1, 1, kib(64)}};
  }
};

core::SchedulerOptions scheduler_options(PowerMode mode, bool preactivate) {
  core::SchedulerOptions o;
  o.mode = mode;
  o.access = access_options();
  o.preactivate = preactivate;
  return o;
}

TEST(Certifier, BracketsCleanTpmSchedule) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result = core::schedule_power_calls(
      tp.program, table, params(), scheduler_options(PowerMode::kTpm, true));
  const trace::Trace trace =
      trace::TraceGenerator(result.program, table, access_options())
          .generate();
  const ScheduleCertificate cert = certify_trace(trace, params());
  const sim::SimReport report = measure(trace);

  expect_brackets(cert, report, "clean TPM");
  EXPECT_GT(cert.energy_lo_j, 0);
  EXPECT_LT(cert.energy_lo_j, cert.energy_hi_j);
  // The preactivated schedule provably never demand-spins-up, and the
  // measured replay agrees.
  EXPECT_TRUE(cert.no_demand_spinup_proved);
  for (const sim::DiskReport& d : report.disks) {
    EXPECT_EQ(d.demand_spin_ups, 0);
  }
  // Interval sets: every disk has guaranteed-idle time inside the compute
  // window, and the per-disk bounds sum to the totals.
  ASSERT_EQ(cert.per_disk.size(), 2u);
  double lo = 0;
  double hi = 0;
  for (const DiskCertificate& d : cert.per_disk) {
    EXPECT_GT(d.guaranteed_idle_ms.size(), 0u) << "disk " << d.disk;
    lo += d.energy_lo_j;
    hi += d.energy_hi_j;
  }
  EXPECT_NEAR(lo, cert.energy_lo_j, 1e-6);
  EXPECT_NEAR(hi, cert.energy_hi_j, 1e-6);
}

TEST(Certifier, UnpreactivatedScheduleLosesTheNoDemandProof) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result = core::schedule_power_calls(
      tp.program, table, params(), scheduler_options(PowerMode::kTpm, false));
  const trace::Trace trace =
      trace::TraceGenerator(result.program, table, access_options())
          .generate();
  const ScheduleCertificate cert = certify_trace(trace, params());
  const sim::SimReport report = measure(trace);

  expect_brackets(cert, report, "no-preactivation TPM");
  EXPECT_FALSE(cert.no_demand_spinup_proved);
  std::int64_t demand = 0;
  for (const sim::DiskReport& d : report.disks) demand += d.demand_spin_ups;
  EXPECT_GT(demand, 0);  // the lost proof is not vacuous on this fixture
}

TEST(Certifier, BracketsEverySeededMutation) {
  for (const Mutation mutation :
       {Mutation::kLatePreactivation, Mutation::kShortGapSpinDown}) {
    const TwoPhase tp;
    const layout::LayoutTable table(tp.program, tp.striping, 2);
    ScheduleResult result = core::schedule_power_calls(
        tp.program, table, params(),
        scheduler_options(PowerMode::kTpm, true));
    std::vector<layout::Striping> striping = tp.striping;
    apply_mutation(mutation, result, striping, params());
    const layout::LayoutTable mutated(result.program, striping, 2);
    const trace::Trace trace =
        trace::TraceGenerator(result.program, mutated, access_options())
            .generate();
    const ScheduleCertificate cert = certify_trace(trace, params());
    expect_brackets(cert, measure(trace), to_string(mutation));
  }
}

TEST(Certifier, BracketsOverlappingFissionMutation) {
  const workloads::Benchmark bench = workloads::make_benchmark("swim");
  core::CompilerOptions co;
  co.total_disks = 8;
  co.base_striping = layout::Striping{0, 8, kib(64)};
  co.disk_params = params();
  co.access = access_options();
  const core::CompileOutput out = core::compile(
      bench.program, core::Transformation::kLFDL, PowerMode::kTpm, co);
  ScheduleResult result{out.program, out.plans, out.calls_inserted};
  std::vector<layout::Striping> striping = out.striping;
  apply_mutation(Mutation::kOverlappingFission, result, striping, params());
  const layout::LayoutTable table(result.program, striping, 8);
  const trace::Trace trace =
      trace::TraceGenerator(result.program, table, access_options())
          .generate();
  const ScheduleCertificate cert = certify_trace(trace, params());
  expect_brackets(cert, measure(trace), "overlap-fission");
}

// The fig3/fig4 corpus: every benchmark, both CM modes, original and
// transformed programs, noise-free and noisy traces.  The certified
// bounds must bracket the measured energy and execution time everywhere.
TEST(Certifier, BracketsTheBenchmarkCorpus) {
  for (const workloads::Benchmark& bench : workloads::all_benchmarks()) {
    for (const PowerMode mode : {PowerMode::kTpm, PowerMode::kDrpm}) {
      for (const core::Transformation transform :
           {core::Transformation::kNone, core::Transformation::kLFDL}) {
        core::CompilerOptions co;
        co.total_disks = 8;
        co.base_striping = layout::Striping{0, 8, kib(64)};
        co.disk_params = params();
        co.access = access_options();
        const core::CompileOutput out =
            core::compile(bench.program, transform, mode, co);
        const ScheduleResult result{out.program, out.plans,
                                    out.calls_inserted};
        const layout::LayoutTable table(result.program, out.striping, 8);

        for (const bool noisy : {false, true}) {
          trace::GeneratorOptions gen = access_options();
          if (noisy) gen.noise = trace::CycleNoise::paper_default();
          const trace::Trace trace =
              trace::TraceGenerator(result.program, table, gen).generate();
          const ScheduleCertificate cert = certify_trace(trace, params());
          const std::string what =
              bench.name + (mode == PowerMode::kTpm ? "/CMTPM" : "/CMDRPM") +
              (transform == core::Transformation::kNone ? "" : "/LFDL") +
              (noisy ? "/noisy" : "");
          expect_brackets(cert, measure(trace), what);
        }
      }
    }
  }
}

// certify_schedule is the generate-then-certify convenience the Session
// uses; it must agree with certifying the generated trace directly.
TEST(Certifier, ScheduleOverloadMatchesTraceCertification) {
  const TwoPhase tp;
  const layout::LayoutTable table(tp.program, tp.striping, 2);
  const ScheduleResult result = core::schedule_power_calls(
      tp.program, table, params(), scheduler_options(PowerMode::kDrpm, true));
  const trace::Trace trace =
      trace::TraceGenerator(result.program, table, access_options())
          .generate();
  const ScheduleCertificate direct = certify_trace(trace, params());
  const ScheduleCertificate via =
      certify_schedule(result, table, params(), access_options());
  EXPECT_DOUBLE_EQ(direct.energy_lo_j, via.energy_lo_j);
  EXPECT_DOUBLE_EQ(direct.energy_hi_j, via.energy_hi_j);
  EXPECT_DOUBLE_EQ(direct.exec_lo_ms, via.exec_lo_ms);
  EXPECT_DOUBLE_EQ(direct.exec_hi_ms, via.exec_hi_ms);
  EXPECT_EQ(direct.requests, via.requests);
}

}  // namespace
}  // namespace sdpm::analysis
