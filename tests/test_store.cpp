// Persistent content-addressed store: atomic puts, checksum-verified gets
// with corrupt-entry quarantine, LRU eviction, and restart persistence.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "service/store.h"

namespace sdpm::service {
namespace {

namespace fs = std::filesystem;

std::string temp_store(const char* tag) {
  const fs::path path = fs::temp_directory_path() /
                        ("sdpm_store_" + std::string(tag) + "_" +
                         std::to_string(::getpid()));
  fs::remove_all(path);
  return path.string();
}

TEST(StoreKey, HexRoundTrips) {
  const StoreKey key{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(key.hex(), "0123456789abcdeffedcba9876543210");
  const auto parsed = StoreKey::from_hex(key.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key);

  EXPECT_FALSE(StoreKey::from_hex("too-short").has_value());
  EXPECT_FALSE(StoreKey::from_hex(std::string(32, 'g')).has_value());
}

TEST(StoreKey, FingerprintSeparatesInputs) {
  const StoreKey a = fingerprint_bytes("{\"benchmark\":\"galgel\"}");
  const StoreKey b = fingerprint_bytes("{\"benchmark\":\"mesa\"}");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, fingerprint_bytes("{\"benchmark\":\"galgel\"}"));
  // Length is mixed in: a prefix does not collide with its extension.
  EXPECT_NE(fingerprint_bytes("ab"), fingerprint_bytes("abc"));
  EXPECT_NE(fingerprint_bytes(""), fingerprint_bytes(std::string(1, '\0')));
}

TEST(PersistentStore, RoundTripsAndCountsHits) {
  const std::string dir = temp_store("roundtrip");
  PersistentStore store(StoreOptions{.directory = dir});
  const StoreKey key = fingerprint_bytes("job-1");

  EXPECT_FALSE(store.get(key).has_value());
  store.put(key, "payload-1");
  EXPECT_TRUE(store.contains(key));
  const auto value = store.get(key);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "payload-1");

  // Content-addressed: a second put under the same key is a no-op.
  store.put(key, "different");
  EXPECT_EQ(*store.get(key), "payload-1");

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  fs::remove_all(dir);
}

TEST(PersistentStore, EntriesSurviveReopen) {
  const std::string dir = temp_store("reopen");
  const StoreKey key = fingerprint_bytes("durable-job");
  {
    PersistentStore store(StoreOptions{.directory = dir});
    store.put(key, "survives the restart");
  }
  PersistentStore reopened(StoreOptions{.directory = dir});
  EXPECT_EQ(reopened.stats().entries, 1u);
  const auto value = reopened.get(key);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "survives the restart");
  fs::remove_all(dir);
}

TEST(PersistentStore, CorruptEntryIsQuarantinedAndMissed) {
  const std::string dir = temp_store("corrupt");
  const StoreKey key = fingerprint_bytes("rot-victim");
  {
    PersistentStore store(StoreOptions{.directory = dir});
    store.put(key, "about to rot");
  }
  // Flip a payload bit on disk.
  const fs::path object = fs::path(dir) / "objects" / (key.hex() + ".bin");
  ASSERT_TRUE(fs::exists(object));
  {
    std::fstream file(object, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-2, std::ios::end);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-2, std::ios::end);
    byte = static_cast<char>(byte ^ 0x01);
    file.write(&byte, 1);
  }

  PersistentStore reopened(StoreOptions{.directory = dir});
  EXPECT_FALSE(reopened.get(key).has_value());  // a miss, never garbage
  const StoreStats stats = reopened.stats();
  EXPECT_EQ(stats.corrupt_evictions, 1);
  EXPECT_EQ(stats.entries, 0u);
  // The bad bytes are preserved for forensics, out of the object namespace.
  EXPECT_FALSE(fs::exists(object));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "objects" / (key.hex() + ".corrupt")));
  // A fresh put under the same key works again.
  reopened.put(key, "recomputed");
  EXPECT_EQ(*reopened.get(key), "recomputed");
  fs::remove_all(dir);
}

TEST(PersistentStore, EvictsLeastRecentlyUsedAtBudget) {
  const std::string dir = temp_store("lru");
  // Budget fits exactly two 8-byte payloads.
  PersistentStore store(StoreOptions{.directory = dir, .max_bytes = 16});
  const StoreKey a = fingerprint_bytes("a");
  const StoreKey b = fingerprint_bytes("b");
  const StoreKey c = fingerprint_bytes("c");
  store.put(a, "payloadA");
  store.put(b, "payloadB");
  EXPECT_TRUE(store.get(a).has_value());  // a is now more recent than b
  store.put(c, "payloadC");               // evicts b, the LRU entry
  EXPECT_TRUE(store.contains(a));
  EXPECT_FALSE(store.contains(b));
  EXPECT_TRUE(store.contains(c));
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.bytes, 16);
  // An over-budget value is skipped outright, evicting nothing.
  store.put(fingerprint_bytes("huge"), std::string(64, 'x'));
  EXPECT_EQ(store.stats().evictions, 1);
  EXPECT_TRUE(store.contains(a));
  fs::remove_all(dir);
}

TEST(PersistentStore, StaleTempFilesAreSweptAtOpen) {
  const std::string dir = temp_store("tmp");
  {
    PersistentStore store(StoreOptions{.directory = dir});
    store.put(fingerprint_bytes("real"), "real payload");
  }
  // A writer that died between temp-write and rename leaves a .tmp_ file.
  const fs::path straggler = fs::path(dir) / "objects" / ".tmp_1234_0";
  { std::ofstream(straggler) << "half-written"; }
  PersistentStore reopened(StoreOptions{.directory = dir});
  EXPECT_FALSE(fs::exists(straggler));
  EXPECT_EQ(reopened.stats().entries, 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sdpm::service
