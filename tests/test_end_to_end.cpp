// End-to-end integration: the full pipeline on a small, hand-analyzable
// program, plus system-wide conservation properties.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "experiments/runner.h"
#include "ir/builder.h"
#include "policy/base.h"
#include "policy/proactive.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace sdpm {
namespace {

using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

// A three-phase program on two disks: an I/O sweep, a 35 s compute-only
// phase (cache-resident working set -> both disks idle far beyond the
// 15.2 s break-even), and a second I/O sweep.  Small enough to reason
// about by hand.
workloads::Benchmark tiny_benchmark() {
  ProgramBuilder pb("tiny");
  const ArrayId a = pb.array("A", {64 * 8192});
  const ArrayId b = pb.array("B", {64 * 8192});
  const double io_cycles = 30'000.0 /*ms*/ * 750e3 / (64.0 * 8192.0);
  pb.nest("io1")
      .loop("i", 0, 64 * 8192)
      .stmt(io_cycles)
      .read(a, {sym("i")})
      .done();
  pb.nest("quiet")
      .loop("t", 0, 1'000)
      .loop("j", 0, 1'024)
      .stmt(35'000.0 * 750e3 / (1'000.0 * 1'024.0))
      .read(a, {ir::sym_const(0) + sym("j")})
      .done();
  pb.nest("io2")
      .loop("i", 0, 64 * 8192)
      .stmt(io_cycles)
      .read(b, {sym("i")})
      .done();
  workloads::Benchmark bench;
  bench.name = "tiny";
  bench.program = pb.build();
  return bench;
}

experiments::ExperimentConfig tiny_config() {
  experiments::ExperimentConfig config;
  config.total_disks = 2;
  config.striping = layout::Striping{0, 2, kib(64)};
  config.actual_noise = trace::CycleNoise::none();
  config.profile_noise = trace::CycleNoise::none();
  return config;
}

TEST(EndToEnd, CompileProducesRunnableOutput) {
  const workloads::Benchmark bench = tiny_benchmark();
  core::CompilerOptions co;
  co.total_disks = 2;
  co.base_striping = layout::Striping{0, 2, kib(64)};
  const core::CompileOutput out = core::compile(
      bench.program, core::Transformation::kNone, core::PowerMode::kDrpm, co);
  EXPECT_GT(out.calls_inserted, 0);
  EXPECT_FALSE(out.plans.empty());
  out.program.validate();

  const layout::LayoutTable table = out.make_layout_table(2);
  trace::TraceGenerator gen(out.program, table);
  const trace::Trace trace = gen.generate();
  EXPECT_EQ(trace.power_events.size(),
            static_cast<std::size_t>(out.calls_inserted));

  policy::ProactivePolicy policy("CMDRPM");
  const sim::SimReport report =
      sim::simulate(trace, co.disk_params, policy);
  EXPECT_GT(report.total_energy, 0.0);
}

TEST(EndToEnd, SystemEnergyConservation) {
  workloads::Benchmark bench = tiny_benchmark();
  experiments::Runner runner(bench, tiny_config());
  const sim::SimReport& base = runner.base_report();
  // Per-disk timelines all span exactly the execution and bucket times sum
  // up; total energy equals the per-disk sum.
  Joules sum = 0;
  for (const sim::DiskReport& d : base.disks) {
    EXPECT_NEAR(d.breakdown.total_ms(), base.execution_ms, 1e-6);
    sum += d.breakdown.total_j();
  }
  EXPECT_NEAR(sum, base.total_energy, 1e-9);
  // Execution = compute + stalls.
  EXPECT_NEAR(base.execution_ms, base.compute_ms + base.io_stall_ms, 1e-9);
}

TEST(EndToEnd, SchemesOrderAsExpectedOnTiny) {
  workloads::Benchmark bench = tiny_benchmark();
  experiments::Runner runner(bench, tiny_config());
  const auto base = runner.run(experiments::Scheme::kBase);
  const auto itpm = runner.run(experiments::Scheme::kItpm);
  const auto idrpm = runner.run(experiments::Scheme::kIdrpm);
  const auto cmtpm = runner.run(experiments::Scheme::kCmtpm);
  const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);

  // The 35 s quiet phase beats the 15.2 s break-even: TPM saves here.
  EXPECT_LT(itpm.normalized_energy, 0.95);
  EXPECT_LT(cmtpm.normalized_energy, 0.95);
  // Oracles bound their compiler-managed counterparts.
  EXPECT_LE(itpm.energy_j, cmtpm.energy_j + 1e-6);
  EXPECT_LE(idrpm.energy_j, cmdrpm.energy_j + 1e-6);
  // IDRPM beats ITPM here: it exploits the short intra-phase gaps too.
  EXPECT_LT(idrpm.energy_j, itpm.energy_j);
  // With exact estimates CMTPM matches ITPM almost exactly.
  EXPECT_NEAR(cmtpm.normalized_energy, itpm.normalized_energy, 0.03);
  // And the proactive schemes stay at Base speed.
  EXPECT_LT(cmtpm.normalized_time, 1.01);
  EXPECT_LT(cmdrpm.normalized_time, 1.01);
  EXPECT_DOUBLE_EQ(base.normalized_energy, 1.0);
}

TEST(EndToEnd, CmtpmPreactivationHidesSpinUp) {
  workloads::Benchmark bench = tiny_benchmark();
  experiments::ExperimentConfig on = tiny_config();
  experiments::Runner runner_on(bench, on);
  const auto with = runner_on.run(experiments::Scheme::kCmtpm);

  experiments::ExperimentConfig off = tiny_config();
  off.preactivate = false;
  experiments::Runner runner_off(bench, off);
  const auto without = runner_off.run(experiments::Scheme::kCmtpm);

  // Without pre-activation, io2's first request per disk eats a 10.9 s
  // demand spin-up.
  EXPECT_GT(without.execution_ms, with.execution_ms + 10'000.0);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  workloads::Benchmark b1 = tiny_benchmark();
  workloads::Benchmark b2 = tiny_benchmark();
  experiments::Runner r1(b1, tiny_config());
  experiments::Runner r2(b2, tiny_config());
  for (const auto scheme :
       {experiments::Scheme::kDrpm, experiments::Scheme::kCmdrpm}) {
    EXPECT_DOUBLE_EQ(r1.run(scheme).energy_j, r2.run(scheme).energy_j);
    EXPECT_DOUBLE_EQ(r1.run(scheme).execution_ms,
                     r2.run(scheme).execution_ms);
  }
}

TEST(EndToEnd, TraceRegenerationIsStable) {
  const workloads::Benchmark bench = tiny_benchmark();
  const layout::LayoutTable table(bench.program,
                                  layout::Striping{0, 2, kib(64)}, 2);
  trace::TraceGenerator g1(bench.program, table);
  trace::TraceGenerator g2(bench.program, table);
  const trace::Trace t1 = g1.generate();
  const trace::Trace t2 = g2.generate();
  ASSERT_EQ(t1.requests.size(), t2.requests.size());
  for (std::size_t i = 0; i < t1.requests.size(); ++i) {
    EXPECT_EQ(t1.requests[i].disk, t2.requests[i].disk);
    EXPECT_EQ(t1.requests[i].start_sector, t2.requests[i].start_sector);
    EXPECT_DOUBLE_EQ(t1.requests[i].arrival_ms, t2.requests[i].arrival_ms);
  }
}

}  // namespace
}  // namespace sdpm
