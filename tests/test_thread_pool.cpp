// ThreadPool: completion, wait_idle semantics, and run_parallel.
#include <gtest/gtest.h>

#include <atomic>

#include "util/thread_pool.h"

namespace sdpm {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunParallelConvenience) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  run_parallel(std::move(tasks), 3);
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace sdpm
