// ThreadPool: completion, wait_idle semantics, exception propagation, and
// run_parallel.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/thread_pool.h"

namespace sdpm {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunParallelConvenience) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  run_parallel(std::move(tasks), 3);
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ThrowingTaskRethrowsFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The other tasks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("first batch"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);

  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();  // no stale exception left behind
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, RunParallelPropagatesTaskException) {
  std::vector<std::function<void()>> tasks;
  std::atomic<int> completed{0};
  tasks.push_back([] { throw std::runtime_error("cell failed"); });
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(run_parallel(std::move(tasks), 2), std::runtime_error);
  EXPECT_EQ(completed.load(), 5);
}

TEST(ThreadPool, SetDefaultJobsOverridesDetection) {
  set_default_jobs(3);
  EXPECT_EQ(default_jobs(), 3u);
  ThreadPool pool;
  EXPECT_EQ(pool.thread_count(), 3u);
  set_default_jobs(0);  // restore automatic detection
  EXPECT_GE(default_jobs(), 1u);
}

}  // namespace
}  // namespace sdpm
