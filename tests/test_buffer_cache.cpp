// BufferCache: LRU semantics and byte budgeting.
#include <gtest/gtest.h>

#include "trace/buffer_cache.h"

namespace sdpm::trace {
namespace {

TEST(BufferCache, MissThenHit) {
  BufferCache cache(1024);
  EXPECT_FALSE(cache.access(0, 0, 256));
  EXPECT_TRUE(cache.access(0, 0, 256));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(BufferCache, DistinctArraysDistinctEntries) {
  BufferCache cache(1024);
  EXPECT_FALSE(cache.access(0, 7, 256));
  EXPECT_FALSE(cache.access(1, 7, 256));
  EXPECT_TRUE(cache.access(0, 7, 256));
  EXPECT_TRUE(cache.access(1, 7, 256));
}

TEST(BufferCache, EvictsLeastRecentlyUsed) {
  BufferCache cache(512);  // two 256-byte blocks
  cache.access(0, 0, 256);
  cache.access(0, 1, 256);
  cache.access(0, 0, 256);  // refresh block 0
  cache.access(0, 2, 256);  // evicts block 1
  EXPECT_TRUE(cache.access(0, 0, 256));
  EXPECT_FALSE(cache.access(0, 1, 256));
}

TEST(BufferCache, ZeroCapacityAlwaysMisses) {
  BufferCache cache(0);
  EXPECT_FALSE(cache.access(0, 0, 8));
  EXPECT_FALSE(cache.access(0, 0, 8));
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.bytes_used(), 0);
}

TEST(BufferCache, OversizedBlockNotCached) {
  BufferCache cache(100);
  EXPECT_FALSE(cache.access(0, 0, 200));
  EXPECT_FALSE(cache.access(0, 0, 200));  // still a miss
  EXPECT_EQ(cache.bytes_used(), 0);
}

TEST(BufferCache, BytesUsedTracksContents) {
  BufferCache cache(1000);
  cache.access(0, 0, 300);
  cache.access(0, 1, 300);
  EXPECT_EQ(cache.bytes_used(), 600);
  cache.access(0, 2, 300);
  EXPECT_EQ(cache.bytes_used(), 900);
  cache.access(0, 3, 300);  // evicts block 0
  EXPECT_EQ(cache.bytes_used(), 900);
}

TEST(BufferCache, CyclicSweepLargerThanCacheAlwaysMisses) {
  // The classic LRU worst case the workloads rely on: sweeping N+1 blocks
  // through an N-block cache misses on every access, every sweep.
  BufferCache cache(4 * 64);
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (std::int64_t b = 0; b < 5; ++b) {
      EXPECT_FALSE(cache.access(0, b, 64)) << "sweep " << sweep << " b " << b;
    }
  }
  EXPECT_EQ(cache.misses(), 15);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(BufferCache, WorkingSetThatFitsStaysResident) {
  BufferCache cache(4 * 64);
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (std::int64_t b = 0; b < 4; ++b) {
      cache.access(0, b, 64);
    }
  }
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 8);
}

TEST(BufferCache, Clear) {
  BufferCache cache(1024);
  cache.access(0, 0, 64);
  cache.clear();
  EXPECT_EQ(cache.bytes_used(), 0);
  EXPECT_FALSE(cache.access(0, 0, 64));
}

TEST(BufferCache, VariableBlockSizesEvictUntilFit) {
  BufferCache cache(1000);
  cache.access(0, 0, 400);
  cache.access(0, 1, 400);
  cache.access(0, 2, 900);  // must evict both
  EXPECT_EQ(cache.bytes_used(), 900);
  EXPECT_FALSE(cache.access(0, 0, 400));
}

}  // namespace
}  // namespace sdpm::trace
