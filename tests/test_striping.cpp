// FileLayout: the PVFS-style (starting disk, stripe factor, stripe size)
// mapping, including the paper's Figure 2 example.
#include <gtest/gtest.h>

#include "layout/layout_table.h"
#include "layout/striping.h"
#include "util/error.h"
#include "util/rng.h"

namespace sdpm::layout {
namespace {

TEST(Striping, ToString) {
  const Striping s{0, 8, kib(64)};
  EXPECT_EQ(s.to_string(), "(start=0, factor=8, stripe=64 KB)");
}

TEST(FileLayout, PaperFigure2U1) {
  // "array U1 is striped over all four disks... the disk layout of this
  //  array can be expressed as (0, 4, S)" with total size 4S.
  const Bytes s = kib(64);
  const FileLayout u1(Striping{0, 4, s}, 4 * s, 4);
  EXPECT_EQ(u1.disk_of(0), 0);
  EXPECT_EQ(u1.disk_of(s), 1);
  EXPECT_EQ(u1.disk_of(2 * s), 2);
  EXPECT_EQ(u1.disk_of(3 * s), 3);
  EXPECT_EQ(u1.disks_used(), (std::vector<int>{0, 1, 2, 3}));
  // "for array U1, we access the first two disks (disk0 and disk1)" when
  // reading elements [0, 2S).
  const auto extents = u1.extents(0, 2 * s);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].disk, 0);
  EXPECT_EQ(extents[1].disk, 1);
}

TEST(FileLayout, PaperFigure2U2) {
  // Array U2 lives entirely on disk2: layout (2, 1, S).
  const Bytes s = kib(64);
  const FileLayout u2(Striping{2, 1, s}, 2 * s, 4);
  EXPECT_EQ(u2.disk_of(0), 2);
  EXPECT_EQ(u2.disk_of(2 * s - 1), 2);
  EXPECT_EQ(u2.disks_used(), (std::vector<int>{2}));
}

TEST(FileLayout, RoundRobinPlacement) {
  const FileLayout layout(Striping{0, 4, 100}, 1000, 8);
  for (Bytes off = 0; off < 1000; ++off) {
    EXPECT_EQ(layout.disk_of(off), static_cast<int>((off / 100) % 4));
  }
}

TEST(FileLayout, StartingDiskOffsetsRotation) {
  const FileLayout layout(Striping{3, 4, 100}, 800, 8);
  EXPECT_EQ(layout.disk_of(0), 3);
  EXPECT_EQ(layout.disk_of(100), 4);
  EXPECT_EQ(layout.disk_of(300), 6);
  EXPECT_EQ(layout.disk_of(400), 3);  // wraps within the window
}

TEST(FileLayout, WindowWrapsModuloTotalDisks) {
  const FileLayout layout(Striping{6, 4, 10}, 100, 8);
  EXPECT_EQ(layout.disk_of(0), 6);
  EXPECT_EQ(layout.disk_of(10), 7);
  EXPECT_EQ(layout.disk_of(20), 0);
  EXPECT_EQ(layout.disk_of(30), 1);
}

TEST(FileLayout, LocatePacksStripesPerDisk) {
  const FileLayout layout(Striping{0, 4, 100}, 1000, 4);
  // Stripe 0 and stripe 4 both live on disk 0, back to back.
  EXPECT_EQ(layout.locate(0), (DiskLocation{0, 0}));
  EXPECT_EQ(layout.locate(405), (DiskLocation{0, 105}));
  // Stripe 5 -> disk 1, second stripe slot.
  EXPECT_EQ(layout.locate(510), (DiskLocation{1, 110}));
}

TEST(FileLayout, BytesOnDiskSumsToFileSize) {
  SplitMix64 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const int total = 1 + static_cast<int>(rng.next_below(12));
    const int factor = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(total)));
    const int start = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(total)));
    const Bytes stripe = 64 * (1 + static_cast<Bytes>(rng.next_below(8)));
    const Bytes size = static_cast<Bytes>(rng.next_below(10'000));
    const FileLayout layout(Striping{start, factor, stripe}, size, total);
    Bytes sum = 0;
    for (int d = 0; d < total; ++d) sum += layout.bytes_on_disk(d);
    // Allocation is rounded up to whole stripes.
    EXPECT_EQ(sum, layout.stripe_count() * stripe);
    EXPECT_GE(sum, size);
  }
}

TEST(FileLayout, ExtentsCoverRangeExactly) {
  SplitMix64 rng(10);
  const FileLayout layout(Striping{1, 3, 128}, 4096, 4);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes off = static_cast<Bytes>(rng.next_below(4000));
    const Bytes len = static_cast<Bytes>(rng.next_below(
        static_cast<std::uint64_t>(4096 - off)));
    Bytes covered = 0;
    for (const DiskExtent& e : layout.extents(off, len)) {
      covered += e.length;
      EXPECT_GE(e.disk, 0);
      EXPECT_LT(e.disk, 4);
    }
    EXPECT_EQ(covered, len);
  }
}

TEST(FileLayout, ExtentsCoalesceWithinStripeRuns) {
  // factor 1: the whole file is one disk, so any range is one extent.
  const FileLayout layout(Striping{2, 1, 64}, 1024, 4);
  const auto extents = layout.extents(10, 900);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].disk, 2);
  EXPECT_EQ(extents[0].length, 900);
}

TEST(FileLayout, InvalidConfigurationsThrow) {
  EXPECT_THROW(FileLayout(Striping{0, 0, 64}, 100, 4), Error);   // factor 0
  EXPECT_THROW(FileLayout(Striping{0, 5, 64}, 100, 4), Error);   // factor > disks
  EXPECT_THROW(FileLayout(Striping{4, 2, 64}, 100, 4), Error);   // bad start
  EXPECT_THROW(FileLayout(Striping{0, 2, 0}, 100, 4), Error);    // stripe 0
  EXPECT_THROW(FileLayout(Striping{0, 2, 64}, -1, 4), Error);    // neg size
}

TEST(FileLayout, StripeHelpers) {
  const FileLayout layout(Striping{0, 2, 100}, 950, 2);
  EXPECT_EQ(layout.stripe_count(), 10);
  EXPECT_EQ(layout.stripe_of(99), 0);
  EXPECT_EQ(layout.stripe_of(100), 1);
  EXPECT_EQ(layout.stripe_start(3), 300);
}

TEST(FileLayout, DisksUsedLimitedByFileSize) {
  // A file smaller than one stripe only ever touches the starting disk.
  const FileLayout layout(Striping{1, 4, 1000}, 500, 8);
  EXPECT_EQ(layout.disks_used(), (std::vector<int>{1}));
}

TEST(PhysicalLocation, SectorNumbers) {
  PhysicalLocation loc;
  loc.disk = 1;
  loc.disk_byte = 1024;
  EXPECT_EQ(loc.sector(), 2);
}

}  // namespace
}  // namespace sdpm::layout
