// PowerLadder: descriptor validation, JSON round-trips, and the preset
// catalog.  The legacy-equivalence guarantees (a ladder-built Ultrastar
// reproduces the legacy path bit for bit) live in test_ladder_equivalence.
#include <gtest/gtest.h>

#include <string>

#include "disk/ladder.h"
#include "disk/parameters.h"
#include "util/error.h"
#include "util/json.h"

namespace sdpm::disk {
namespace {

/// Minimal valid TPM-shaped ladder: one park + one level, Table 1 values.
PowerLadder tiny_ladder() {
  PowerLadder l;
  l.name = "tiny";
  l.capacity = gib(18);
  l.average_seek_time = 3.4;
  l.electronics_power = 2.5;
  LadderState park;
  park.name = "standby";
  park.idle_power = 2.5;
  LadderState level;
  level.name = "full";
  level.serviceable = true;
  level.idle_power = 10.2;
  level.active_power = 13.5;
  level.rot_latency_ms = 2.0;
  level.transfer_mb_per_s = 55.0;
  level.rpm = 15'000;
  l.states = {park, level};
  l.edges.assign(4, LadderEdge{});
  l.edge_ref(1, 0) = LadderEdge{1'500.0, 13.0};   // spin-down
  l.edge_ref(0, 1) = LadderEdge{10'900.0, 135.0};  // spin-up
  return l;
}

TEST(Ladder, TinyLadderIsValid) {
  const PowerLadder l = tiny_ladder();
  l.validate();
  EXPECT_EQ(l.park_count(), 1);
  EXPECT_EQ(l.level_count(), 1);
  EXPECT_EQ(l.top_state(), 1);
  EXPECT_EQ(l.state_index("standby"), 0);
  EXPECT_EQ(l.state_index("full"), 1);
  EXPECT_EQ(l.state_index("nope"), -1);
}

TEST(Ladder, PresetCatalog) {
  EXPECT_EQ(PowerLadder::preset_names().size(), 3u);
  for (const std::string& name : PowerLadder::preset_names()) {
    EXPECT_TRUE(PowerLadder::is_preset(name));
    const PowerLadder ladder = PowerLadder::preset(name);
    EXPECT_EQ(ladder.name, name);
    ladder.validate();  // preset() validates too; must stay idempotent
  }
  EXPECT_FALSE(PowerLadder::is_preset("ultrastar"));
  EXPECT_THROW(PowerLadder::preset("ultrastar"), Error);
}

TEST(Ladder, PresetShapes) {
  const PowerLadder scsi = PowerLadder::preset("scsi_multi_idle");
  EXPECT_EQ(scsi.park_count(), 4);  // Standby_Z/Y + Idle_C/B
  EXPECT_EQ(scsi.level_count(), 1);
  // Parks deepen toward index 0: lower power, longer timer, dearer wake.
  for (int p = 1; p < scsi.park_count(); ++p) {
    EXPECT_LE(scsi.states[p - 1].idle_power, scsi.states[p].idle_power);
    EXPECT_GE(scsi.states[p - 1].timer_ms, scsi.states[p].timer_ms);
    EXPECT_GE(scsi.edge(p - 1, scsi.top_state()).time_ms,
              scsi.edge(p, scsi.top_state()).time_ms);
  }

  const PowerLadder nvme = PowerLadder::preset("nvme_tiered");
  EXPECT_EQ(nvme.park_count(), 2);   // PS4/PS3
  EXPECT_EQ(nvme.level_count(), 3);  // PS2..PS0
  for (int s = 0; s < nvme.state_count(); ++s) {
    EXPECT_EQ(nvme.states[s].rot_latency_ms, 0.0);  // non-rotating media
  }
}

TEST(Ladder, JsonRoundTripsEveryPresetBitForBit) {
  for (const std::string& name : PowerLadder::preset_names()) {
    SCOPED_TRACE(name);
    const PowerLadder ladder = PowerLadder::preset(name);
    const Json json = ladder.to_json();
    const PowerLadder back = PowerLadder::from_json(json);
    EXPECT_EQ(ladder, back);
    // The canonical dump is the daemon's fingerprint: byte-stable.
    EXPECT_EQ(json.dump(), back.to_json().dump());
  }
}

TEST(Ladder, FromLegacyMatchesUltrastarPreset) {
  const PowerLadder derived = PowerLadder::from_legacy(
      DiskParameters::ultrastar_36z15(), "ultrastar_36z15");
  EXPECT_EQ(derived, PowerLadder::preset("ultrastar_36z15"));
}

TEST(Ladder, FromJsonRejectsUnknownKeys) {
  Json json = tiny_ladder().to_json();
  json.set("spindle_pwr", 7.7);  // typo'd key must fail loudly
  EXPECT_THROW(PowerLadder::from_json(json), Error);
}

TEST(Ladder, FromJsonRejectsNewerSchema) {
  Json json = tiny_ladder().to_json();
  json.set("version", PowerLadder::kSchemaVersion + 1);
  EXPECT_THROW(PowerLadder::from_json(json), Error);
}

TEST(Ladder, RejectsNegativeEdgeEnergy) {
  PowerLadder l = tiny_ladder();
  l.edge_ref(1, 0).energy_j = -1.0;
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, RejectsParkWithoutWakeEdge) {
  PowerLadder l = tiny_ladder();
  l.edge_ref(0, 1) = LadderEdge{};  // trap state: timer or not, no exit
  EXPECT_THROW(l.validate(), Error);
  l = tiny_ladder();
  l.states[0].timer_ms = 2'000;
  l.edge_ref(0, 1) = LadderEdge{};
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, RejectsUnreachableState) {
  // A second park with a wake edge but no edge into it: unreachable from
  // the top state, so no run could ever use it.
  PowerLadder l = tiny_ladder();
  LadderState orphan;
  orphan.name = "orphan";
  orphan.idle_power = 2.5;
  l.states.insert(l.states.begin() + 1, orphan);
  l.edges.assign(9, LadderEdge{});
  l.edge_ref(2, 0) = LadderEdge{1'500.0, 13.0};
  l.edge_ref(0, 2) = LadderEdge{10'900.0, 135.0};
  l.edge_ref(1, 2) = LadderEdge{10'900.0, 135.0};  // wake exists; entry none
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, RejectsLevelIdleBelowElectronicsFloor) {
  PowerLadder l = tiny_ladder();
  l.states[1].idle_power = 2.0;  // below electronics_power = 2.5
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, RejectsParkPowerOrderViolation) {
  PowerLadder l = PowerLadder::preset("scsi_multi_idle");
  // Deepest park now dearer than its shallower neighbor.
  l.states[0].idle_power = l.states[1].idle_power + 1.0;
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, EnforcesTable1DecompositionWhenSpindleGiven) {
  PowerLadder l = tiny_ladder();
  l.spindle_power_at_max = 7.7;  // 2.5 + 7.7 == 10.2: Table 1 holds
  l.validate();
  l.spindle_power_at_max = 8.0;  // decomposition broken
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, RejectsMissingLevelMeshEdge) {
  PowerLadder l = PowerLadder::preset("nvme_tiered");
  const int ps1 = l.state_index("ps1");
  const int ps0 = l.state_index("ps0");
  ASSERT_GE(ps1, 0);
  ASSERT_GE(ps0, 0);
  l.edge_ref(ps1, ps0) = LadderEdge{};
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, RejectsDeeperParkWithShorterTimer) {
  PowerLadder l = PowerLadder::preset("scsi_multi_idle");
  // The deepest park firing before a shallower one would invert descent.
  l.states[0].timer_ms = 1.0;
  EXPECT_THROW(l.validate(), Error);
}

TEST(Ladder, FromJsonRejectsNegativeEdgeTime) {
  Json json = tiny_ladder().to_json();
  // Hand-author an explicit negative-time edge entry.
  Json edge = Json::object();
  edge.set("from", "full").set("to", "standby").set("time_ms", -5.0)
      .set("energy_j", 1.0);
  Json edges = json.at("edges");
  edges.push_back(std::move(edge));
  json.set("edges", std::move(edges));
  EXPECT_THROW(PowerLadder::from_json(json), Error);
}

}  // namespace
}  // namespace sdpm::disk
