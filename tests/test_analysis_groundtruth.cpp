// Static analyzer vs. simulated ground truth.
//
// The pre-activation pass predicts, without simulating, exactly the events
// the simulator's PreactivationAccountant later observes: W041 = demand
// spin-ups, E040 = late pre-activations, W042 = wasted pre-activations.
// These tests run both sides over the same schedule — the analyzer
// statically, the simulator over the generated trace in open-loop replay —
// and assert the per-disk counts agree (precision and recall both 1 on
// this noise-free fixture).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/mutate.h"
#include "analysis/registry.h"
#include "core/schedule.h"
#include "ir/builder.h"
#include "layout/layout_table.h"
#include "obs/preactivation.h"
#include "obs/tracer.h"
#include "policy/proactive.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/iteration_space.h"

namespace sdpm::analysis {
namespace {

using core::GapPlan;
using core::PowerMode;
using core::SchedulerOptions;
using core::ScheduleResult;
using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

// Three sequential phases over private arrays on three disks: disks 1 and 2
// each have one long leading idle period ending in a next use (the shape
// TPM pre-activation exists for), disk 0 a trailing one.
struct ThreePhase {
  ir::Program program;
  std::vector<layout::Striping> striping;

  ThreePhase() {
    ProgramBuilder pb("threephase");
    const ArrayId a = pb.array("A", {64 * 8192});
    const ArrayId b = pb.array("B", {64 * 8192});
    const ArrayId c = pb.array("C", {64 * 8192});
    // 75'000 cycles at 750 MHz = 0.1 ms/iteration: each phase lasts ~52 s.
    pb.nest("phase1")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(a, {sym("i")})
        .done();
    pb.nest("phase2")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(b, {sym("i")})
        .done();
    pb.nest("phase3")
        .loop("i", 0, 64 * 8192)
        .stmt(75'000.0)
        .read(c, {sym("i")})
        .done();
    program = pb.build();
    striping = {layout::Striping{0, 1, kib(64)},
                layout::Striping{1, 1, kib(64)},
                layout::Striping{2, 1, kib(64)}};
  }
};

trace::GeneratorOptions access_options() {
  trace::GeneratorOptions o;
  o.cache_bytes = 0;  // every block boundary reaches the disks
  return o;
}

SchedulerOptions tpm_options(bool preactivate) {
  SchedulerOptions o;
  o.mode = PowerMode::kTpm;
  o.access = access_options();
  o.preactivate = preactivate;
  return o;
}

AnalyzeOptions analyze_options() {
  AnalyzeOptions o;
  o.access = access_options();
  return o;
}

/// Replay the schedule's generated trace under the proactive policy and
/// return the accountant's classification of every spin-up.
obs::PreactivationReport replay(const ScheduleResult& result,
                                const layout::LayoutTable& table) {
  const trace::Trace trace =
      trace::TraceGenerator(result.program, table, access_options())
          .generate();
  obs::PreactivationAccountant accountant;
  obs::EventTracer tracer;
  tracer.add_sink(accountant);
  policy::ProactivePolicy policy("CMTPM");
  sim::SimOptions options;
  options.mode = sim::ReplayMode::kOpenLoop;
  options.tracer = &tracer;
  sim::simulate(trace, params(), policy, options);
  tracer.close();
  return accountant.report();
}

std::int64_t simulated(const obs::PreactivationReport& report, int disk,
                       std::int64_t obs::PreactivationDiskStats::* field) {
  if (disk < 0 || disk >= static_cast<int>(report.disks.size())) return 0;
  return report.disks[static_cast<std::size_t>(disk)].*field;
}

std::int64_t predicted(const AnalysisReport& report, std::string_view rule,
                       int disk) {
  std::int64_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule && d.loc.disk == disk) ++n;
  }
  return n;
}

std::int64_t count(const AnalysisReport& report, std::string_view rule) {
  std::int64_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) ++n;
  }
  return n;
}

TEST(GroundTruth, CleanScheduleHasNoPredictedOrObservedStalls) {
  const ThreePhase fixture;
  const layout::LayoutTable table(fixture.program, fixture.striping, 3);
  const ScheduleResult result = core::schedule_power_calls(
      fixture.program, table, params(), tpm_options(true));
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  const obs::PreactivationReport truth = replay(result, table);

  EXPECT_EQ(report.errors(), 0) << render_text(report);
  EXPECT_EQ(report.warnings(), 0) << render_text(report);
  EXPECT_EQ(truth.late(), 0);
  EXPECT_EQ(truth.demand_spin_ups(), 0);
  EXPECT_EQ(truth.wasted(), 0);
  // Disks 1 and 2 were each pre-activated ahead of their first use.
  EXPECT_EQ(truth.issued(), 2);
  EXPECT_EQ(truth.hits(), 2);
}

TEST(GroundTruth, W041MatchesDemandSpinUpsPerDisk) {
  const ThreePhase fixture;
  const layout::LayoutTable table(fixture.program, fixture.striping, 3);
  const ScheduleResult result = core::schedule_power_calls(
      fixture.program, table, params(), tpm_options(false));
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  const obs::PreactivationReport truth = replay(result, table);

  ASSERT_GE(truth.demand_spin_ups(), 2);
  std::int64_t total = 0;
  for (int disk = 0; disk < 3; ++disk) {
    const std::int64_t want =
        simulated(truth, disk, &obs::PreactivationDiskStats::demand_spin_ups);
    EXPECT_EQ(predicted(report, "SDPM-W041", disk), want) << "disk " << disk;
    total += want;
  }
  EXPECT_EQ(count(report, "SDPM-W041"), total);
  // Precision: the analyzer predicts no stall the simulator doesn't show.
  EXPECT_EQ(count(report, "SDPM-E040"), 0);
  EXPECT_EQ(truth.late(), 0);
}

TEST(GroundTruth, E040MatchesLatePreactivationsPerDisk) {
  const ThreePhase fixture;
  const layout::LayoutTable table(fixture.program, fixture.striping, 3);
  ScheduleResult result = core::schedule_power_calls(
      fixture.program, table, params(), tpm_options(true));
  std::vector<layout::Striping> striping = fixture.striping;
  apply_mutation(Mutation::kLatePreactivation, result, striping, params());
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  const obs::PreactivationReport truth = replay(result, table);

  ASSERT_GE(truth.late(), 2);
  for (int disk = 0; disk < 3; ++disk) {
    EXPECT_EQ(predicted(report, "SDPM-E040", disk),
              simulated(truth, disk, &obs::PreactivationDiskStats::late))
        << "disk " << disk;
  }
  EXPECT_EQ(count(report, "SDPM-E040"), truth.late());
  // Recall's complement: nothing predicted fine stalled, nothing that
  // stalled went unpredicted.
  EXPECT_EQ(count(report, "SDPM-W041"), truth.demand_spin_ups());
}

TEST(GroundTruth, W042MatchesWastedPreactivations) {
  const ThreePhase fixture;
  const layout::LayoutTable table(fixture.program, fixture.striping, 3);
  ScheduleResult result = core::schedule_power_calls(
      fixture.program, table, params(), tpm_options(true));
  const trace::IterationSpace space(result.program);
  // Wake disk 0 inside its trailing gap: the program ends before any use.
  bool found = false;
  for (const GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter < space.total()) continue;
    result.program.directives.push_back(
        {space.point_of(plan.begin_iter + 1),
         {ir::PowerDirective::Kind::kSpinUp, plan.disk, 0}});
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  result.program.sort_directives();
  const AnalysisReport report =
      analyze(result, table, params(), analyze_options());
  const obs::PreactivationReport truth = replay(result, table);

  EXPECT_EQ(truth.wasted(), 1);
  EXPECT_EQ(count(report, "SDPM-W042"), 1) << render_text(report);
  EXPECT_EQ(count(report, "SDPM-W042"), truth.wasted());
}

}  // namespace
}  // namespace sdpm::analysis
