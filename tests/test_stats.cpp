// RunningStats (Welford) and SlidingWindow.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace sdpm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  SplitMix64 rng(11);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.next_double(-10, 10);
    values.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, SumAndExtrema) {
  RunningStats s;
  s.add(1);
  s.add(-5);
  s.add(10);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(3);
  s.reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SlidingWindow, FillsToCapacity) {
  SlidingWindow w(3);
  EXPECT_FALSE(w.full());
  w.add(1);
  w.add(2);
  EXPECT_FALSE(w.full());
  w.add(3);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1);
  w.add(2);
  w.add(3);
  w.add(10);  // evicts 1
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  w.add(11);  // evicts 2
  EXPECT_DOUBLE_EQ(w.mean(), 8.0);
}

TEST(SlidingWindow, Clear) {
  SlidingWindow w(2);
  w.add(5);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

}  // namespace
}  // namespace sdpm
