// ir::Array: layout strides and linearization.
#include <gtest/gtest.h>

#include "ir/array.h"
#include "util/error.h"

namespace sdpm::ir {
namespace {

Array make_array(StorageLayout layout) {
  Array a;
  a.name = "U";
  a.extents = {4, 6};
  a.element_size = 8;
  a.layout = layout;
  return a;
}

TEST(Array, ElementCountAndSize) {
  const Array a = make_array(StorageLayout::kRowMajor);
  EXPECT_EQ(a.rank(), 2);
  EXPECT_EQ(a.element_count(), 24);
  EXPECT_EQ(a.size_bytes(), 192);
}

TEST(Array, RowMajorStrides) {
  const Array a = make_array(StorageLayout::kRowMajor);
  EXPECT_EQ(a.dim_stride(0), 6);  // rows are 6 elements apart
  EXPECT_EQ(a.dim_stride(1), 1);
}

TEST(Array, ColMajorStrides) {
  const Array a = make_array(StorageLayout::kColMajor);
  EXPECT_EQ(a.dim_stride(0), 1);
  EXPECT_EQ(a.dim_stride(1), 4);  // columns are 4 elements apart
}

TEST(Array, RowMajorLinearIndex) {
  const Array a = make_array(StorageLayout::kRowMajor);
  const std::int64_t idx[] = {2, 3};
  EXPECT_EQ(a.linear_index(idx), 2 * 6 + 3);
  EXPECT_EQ(a.byte_offset(idx), (2 * 6 + 3) * 8);
}

TEST(Array, ColMajorLinearIndex) {
  const Array a = make_array(StorageLayout::kColMajor);
  const std::int64_t idx[] = {2, 3};
  EXPECT_EQ(a.linear_index(idx), 2 + 3 * 4);
}

TEST(Array, LinearIndexIsBijective) {
  for (const StorageLayout layout :
       {StorageLayout::kRowMajor, StorageLayout::kColMajor}) {
    const Array a = make_array(layout);
    std::vector<bool> seen(static_cast<std::size_t>(a.element_count()),
                           false);
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t j = 0; j < 6; ++j) {
        const std::int64_t idx[] = {i, j};
        const std::int64_t lin = a.linear_index(idx);
        ASSERT_GE(lin, 0);
        ASSERT_LT(lin, a.element_count());
        ASSERT_FALSE(seen[static_cast<std::size_t>(lin)]);
        seen[static_cast<std::size_t>(lin)] = true;
      }
    }
  }
}

TEST(Array, ThreeDimensionalRowMajor) {
  Array a;
  a.extents = {2, 3, 5};
  a.element_size = 4;
  EXPECT_EQ(a.dim_stride(0), 15);
  EXPECT_EQ(a.dim_stride(1), 5);
  EXPECT_EQ(a.dim_stride(2), 1);
  const std::int64_t idx[] = {1, 2, 4};
  EXPECT_EQ(a.linear_index(idx), 15 + 10 + 4);
}

TEST(Array, FourDimensionalBlockedShape) {
  // The blocked reshape used by the tiling pass: [NT1][NT2][T1][T2].
  Array a;
  a.extents = {4, 8, 128, 256};
  a.element_size = 8;
  // Tile (ii, jj) starts at element (ii*8 + jj) * 128*256: tile-major.
  const std::int64_t idx[] = {1, 2, 0, 0};
  EXPECT_EQ(a.linear_index(idx), (1 * 8 + 2) * 128 * 256);
}

TEST(Array, WithLayoutFlips) {
  const Array a = make_array(StorageLayout::kRowMajor);
  const Array b = a.with_layout(StorageLayout::kColMajor);
  EXPECT_EQ(b.layout, StorageLayout::kColMajor);
  EXPECT_EQ(b.extents, a.extents);
}

TEST(Array, LayoutNames) {
  EXPECT_STREQ(to_string(StorageLayout::kRowMajor), "row-major");
  EXPECT_STREQ(to_string(StorageLayout::kColMajor), "col-major");
}

}  // namespace
}  // namespace sdpm::ir
