// SimReport: array-wide fault-counter totals aggregate the per-disk
// DiskReport entries, on both delivery paths and without response capture.
#include <gtest/gtest.h>

#include "policy/tpm.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/source.h"

namespace sdpm::sim {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

DiskReport faulty_disk(std::int64_t retries, std::int64_t media,
                       std::int64_t remaps, std::int64_t drops) {
  DiskReport d;
  d.spin_up_retries = retries;
  d.media_errors = media;
  d.remapped_sectors = remaps;
  d.dropped_directives = drops;
  return d;
}

TEST(SimReport, TotalsSumPerDiskCounters) {
  SimReport report;
  report.disks.push_back(faulty_disk(1, 2, 3, 4));
  report.disks.push_back(faulty_disk(10, 20, 30, 40));
  report.disks.push_back(faulty_disk(0, 0, 0, 0));
  EXPECT_EQ(report.disk_count(), 3);
  EXPECT_EQ(report.spin_up_retries(), 11);
  EXPECT_EQ(report.media_errors(), 22);
  EXPECT_EQ(report.remapped_sectors(), 33);
  EXPECT_EQ(report.dropped_directives(), 44);
}

TEST(SimReport, TotalsAreZeroWithNoDisks) {
  const SimReport report;
  EXPECT_EQ(report.disk_count(), 0);
  EXPECT_EQ(report.spin_up_retries(), 0);
  EXPECT_EQ(report.media_errors(), 0);
  EXPECT_EQ(report.remapped_sectors(), 0);
  EXPECT_EQ(report.dropped_directives(), 0);
}

trace::Trace gap_trace(int disks, int rounds, TimeMs gap_ms) {
  trace::Trace t;
  t.total_disks = disks;
  TimeMs at = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int d = 0; d < disks; ++d) {
      trace::Request req;
      req.arrival_ms = at;
      req.disk = d;
      req.start_sector = 128 * r;
      req.size_bytes = kib(64);
      t.requests.push_back(req);
      t.bytes_transferred += req.size_bytes;
    }
    at += gap_ms;
  }
  t.compute_total_ms = at;
  return t;
}

SimOptions faulty_options() {
  SimOptions o;
  o.faults.spin_up_failure_prob = 0.4;
  o.faults.media_error_prob = 0.2;
  o.faults.dropped_directive_prob = 0.3;
  o.faults.seed = 7;
  o.capture_responses = false;
  return o;
}

TEST(SimReport, FaultTotalsAggregateFromSimulation) {
  // Long gaps force TPM spin-downs, so demand spin-ups (hence spin-up
  // failures), media checks, and directive drops all occur.
  const trace::Trace t = gap_trace(4, 8, 30'000.0);
  policy::TpmPolicy policy;
  Simulator sim(t, params(), policy, faulty_options());
  const SimReport report = sim.run();

  ASSERT_EQ(report.disk_count(), 4);
  EXPECT_TRUE(report.responses.empty());  // capture_responses = false
  EXPECT_EQ(report.response_ms.count(), report.requests);

  std::int64_t retries = 0;
  std::int64_t media = 0;
  std::int64_t remaps = 0;
  std::int64_t drops = 0;
  for (const DiskReport& d : report.disks) {
    retries += d.spin_up_retries;
    media += d.media_errors;
    remaps += d.remapped_sectors;
    drops += d.dropped_directives;
    EXPECT_GE(d.media_errors, d.remapped_sectors);  // remap at most once/error
  }
  EXPECT_EQ(report.spin_up_retries(), retries);
  EXPECT_EQ(report.media_errors(), media);
  EXPECT_EQ(report.remapped_sectors(), remaps);
  EXPECT_EQ(report.dropped_directives(), drops);
  // With these probabilities and 8 standby rounds the totals cannot all
  // be zero — if they are, the aggregation (or the injection) is broken.
  EXPECT_GT(retries + media + drops, 0);
}

TEST(SimReport, FaultTotalsSurviveStreamingDelivery) {
  const trace::Trace t = gap_trace(4, 8, 30'000.0);

  policy::TpmPolicy policy_a;
  Simulator materialized(t, params(), policy_a, faulty_options());
  const SimReport a = materialized.run();

  trace::TraceCursor cursor(t);
  policy::TpmPolicy policy_b;
  Simulator streamed(cursor, params(), policy_b, faulty_options());
  const SimReport b = streamed.run();

  EXPECT_EQ(a.spin_up_retries(), b.spin_up_retries());
  EXPECT_EQ(a.media_errors(), b.media_errors());
  EXPECT_EQ(a.remapped_sectors(), b.remapped_sectors());
  EXPECT_EQ(a.dropped_directives(), b.dropped_directives());
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_TRUE(b.responses.empty());
}

}  // namespace
}  // namespace sdpm::sim
