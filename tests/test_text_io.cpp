// Hardened trace parsing: every malformed input is rejected with an
// sdpm::Error naming the source and 1-based line number.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/text_io.h"
#include "util/error.h"

namespace sdpm::trace {
namespace {

/// Parse `text` expecting failure; return the error message.
std::string parse_error(const std::string& text,
                        const std::string& source = "<trace>") {
  std::istringstream in(text);
  try {
    read_trace_text(in, source);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected Error for: " << text;
  return "";
}

TEST(TextIoErrors, MalformedLineNamesSourceAndLine) {
  const std::string msg =
      parse_error("0.0 0 0 65536 R\nbogus line\n", "input.trace");
  EXPECT_NE(msg.find("input.trace:2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("malformed request"), std::string::npos) << msg;
}

TEST(TextIoErrors, TruncatedLineRejected) {
  const std::string msg = parse_error("0.0 0 100\n");
  EXPECT_NE(msg.find("<trace>:1"), std::string::npos) << msg;
}

TEST(TextIoErrors, TrailingGarbageRejected) {
  const std::string msg = parse_error("0.0 0 100 65536 R extra\n");
  EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
}

TEST(TextIoErrors, HeaderMissingComputeRejected) {
  const std::string msg = parse_error("# sdpm-trace v1 disks=4\n");
  EXPECT_NE(msg.find("header"), std::string::npos) << msg;
}

TEST(TextIoErrors, HeaderBadDiskCountRejected) {
  parse_error("# sdpm-trace v1 disks=0 compute_ms=10\n");
  parse_error("# sdpm-trace v1 disks=x compute_ms=10\n");
}

TEST(TextIoErrors, HeaderBadComputeRejected) {
  parse_error("# sdpm-trace v1 disks=4 compute_ms=-1\n");
  parse_error("# sdpm-trace v1 disks=4 compute_ms=nope\n");
}

TEST(TextIoErrors, NegativeArrivalRejected) {
  const std::string msg = parse_error("-1.0 0 0 65536 R\n");
  EXPECT_NE(msg.find("arrival"), std::string::npos) << msg;
}

TEST(TextIoErrors, NonFiniteArrivalRejected) {
  parse_error("nan 0 0 65536 R\n");
  parse_error("inf 0 0 65536 R\n");
}

TEST(TextIoErrors, OutOfRangeFieldsRejected) {
  parse_error("0.0 -1 0 65536 R\n");  // negative disk
  parse_error("0.0 0 -5 65536 R\n");  // negative sector
  parse_error("0.0 0 0 0 R\n");       // zero size
}

TEST(TextIoErrors, DiskBeyondHeaderRejected) {
  const std::string msg = parse_error(
      "# sdpm-trace v1 disks=2 compute_ms=100\n0.0 2 0 65536 R\n");
  EXPECT_NE(msg.find("disk 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find(":2"), std::string::npos) << msg;
}

TEST(TextIoErrors, NonMonotoneArrivalsRejected) {
  const std::string msg =
      parse_error("5.0 0 0 65536 R\n4.0 0 0 65536 R\n");
  EXPECT_NE(msg.find("non-decreasing"), std::string::npos) << msg;
  EXPECT_NE(msg.find("<trace>:2"), std::string::npos) << msg;
}

TEST(TextIoErrors, UnknownRequestTypeRejected) {
  const std::string msg = parse_error("0.0 0 0 65536 Q\n");
  EXPECT_NE(msg.find("unknown request type"), std::string::npos) << msg;
}

TEST(TextIo, BlankAndCommentLinesSkipped) {
  std::istringstream in(
      "# a comment\n\n   \t \n0.0 0 0 65536 R\n# trailing comment\n");
  const Trace t = read_trace_text(in);
  ASSERT_EQ(t.requests.size(), 1u);
  EXPECT_EQ(t.total_disks, 1);
}

TEST(TextIo, HeaderParsedStrictly) {
  std::istringstream in(
      "# sdpm-trace v1 disks=3 compute_ms=250.5\n0.0 2 7 4096 W\n");
  const Trace t = read_trace_text(in);
  EXPECT_EQ(t.total_disks, 3);
  EXPECT_NEAR(t.compute_total_ms, 250.5, 1e-9);
  ASSERT_EQ(t.requests.size(), 1u);
  EXPECT_EQ(t.requests[0].kind, ir::AccessKind::kWrite);
}

TEST(RepeatTrace, ShiftsCopiesOnComputeTimeline) {
  Trace t;
  t.total_disks = 2;
  t.compute_total_ms = 100.0;
  t.bytes_transferred = kib(64);
  Request r;
  r.arrival_ms = 40.0;
  r.disk = 1;
  r.size_bytes = kib(64);
  r.global_iter = 7;
  t.requests.push_back(r);
  PowerEvent e;
  e.app_time_ms = 10.0;
  e.directive = ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, 0, 0};
  t.power_events.push_back(e);

  const Trace x3 = repeat_trace(t, 3);
  EXPECT_EQ(x3.total_disks, 2);
  EXPECT_NEAR(x3.compute_total_ms, 300.0, 1e-9);
  EXPECT_EQ(x3.bytes_transferred, 3 * kib(64));
  ASSERT_EQ(x3.requests.size(), 3u);
  EXPECT_NEAR(x3.requests[0].arrival_ms, 40.0, 1e-9);
  EXPECT_NEAR(x3.requests[1].arrival_ms, 140.0, 1e-9);
  EXPECT_NEAR(x3.requests[2].arrival_ms, 240.0, 1e-9);
  EXPECT_EQ(x3.requests[2].global_iter, 7 + 2 * 8);
  ASSERT_EQ(x3.power_events.size(), 3u);
  EXPECT_NEAR(x3.power_events[2].app_time_ms, 210.0, 1e-9);

  EXPECT_THROW(repeat_trace(t, 0), Error);
}

}  // namespace
}  // namespace sdpm::trace
