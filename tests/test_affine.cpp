// AffineExpr: evaluation, substitution, and helpers.
#include <gtest/gtest.h>

#include "ir/affine.h"
#include "util/rng.h"

namespace sdpm::ir {
namespace {

TEST(Affine, ConstantExpr) {
  const AffineExpr e = affine_const(7);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.innermost_dependent_loop(), -1);
  const std::int64_t iters[] = {1, 2, 3};
  EXPECT_EQ(e.eval(iters), 7);
}

TEST(Affine, SingleVariable) {
  const AffineExpr e = affine_var(1, 3, 2, 5);  // 2*j + 5 in (i,j,k)
  EXPECT_FALSE(e.is_constant());
  EXPECT_EQ(e.innermost_dependent_loop(), 1);
  const std::int64_t iters[] = {10, 4, 9};
  EXPECT_EQ(e.eval(iters), 13);
}

TEST(Affine, GeneralEvaluation) {
  AffineExpr e;
  e.coefs = {1, -2, 3};
  e.constant = -4;
  const std::int64_t iters[] = {5, 6, 7};
  EXPECT_EQ(e.eval(iters), 5 - 12 + 21 - 4);
}

TEST(Affine, CoefBeyondSizeIsZero) {
  AffineExpr e;
  e.coefs = {2};
  EXPECT_EQ(e.coef(0), 2);
  EXPECT_EQ(e.coef(5), 0);
}

TEST(Affine, SubstitutionIdentity) {
  AffineExpr e;
  e.coefs = {3, 1};
  e.constant = 2;
  // identity substitution: loop k -> loop k
  std::vector<AffineExpr> sub = {affine_var(0, 2), affine_var(1, 2)};
  const AffineExpr out = e.substituted(sub);
  const std::int64_t iters[] = {4, 5};
  EXPECT_EQ(out.eval(iters), e.eval(iters));
}

// Property: eval(substituted(e), y) == eval(e, [eval(sub_k, y)]).
TEST(AffineProperty, SubstitutionCommutesWithEvaluation) {
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t old_depth = 1 + rng.next_below(3);
    const std::size_t new_depth = 1 + rng.next_below(4);
    AffineExpr e;
    e.coefs.resize(old_depth);
    for (auto& c : e.coefs) {
      c = static_cast<std::int64_t>(rng.next_below(9)) - 4;
    }
    e.constant = static_cast<std::int64_t>(rng.next_below(21)) - 10;

    std::vector<AffineExpr> sub(old_depth);
    for (auto& s : sub) {
      s.coefs.resize(new_depth);
      for (auto& c : s.coefs) {
        c = static_cast<std::int64_t>(rng.next_below(7)) - 3;
      }
      s.constant = static_cast<std::int64_t>(rng.next_below(11)) - 5;
    }

    std::vector<std::int64_t> y(new_depth);
    for (auto& v : y) v = static_cast<std::int64_t>(rng.next_below(50));

    std::vector<std::int64_t> x(old_depth);
    for (std::size_t k = 0; k < old_depth; ++k) x[k] = sub[k].eval(y);

    const AffineExpr composed = e.substituted(sub);
    ASSERT_EQ(composed.eval(y), e.eval(x));
  }
}

TEST(Affine, ToString) {
  AffineExpr e;
  e.coefs = {1, -1, 2};
  e.constant = 3;
  const std::string names[] = {"i", "j", "k"};
  EXPECT_EQ(e.to_string(names), "i-j+2*k+3");
  EXPECT_EQ(affine_const(0).to_string(names), "0");
}

TEST(Affine, Equality) {
  EXPECT_EQ(affine_var(0, 2), affine_var(0, 2));
  EXPECT_NE(affine_var(0, 2), affine_var(1, 2));
}

}  // namespace
}  // namespace sdpm::ir
