// The compile() facade (paper Figure 1 pipeline) and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "core/codegen.h"
#include "core/compiler.h"
#include "experiments/report.h"
#include "policy/base.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "workloads/benchmarks.h"

namespace sdpm::core {
namespace {

TEST(Compile, NoneKeepsProgramAndUniformStriping) {
  const workloads::Benchmark b = workloads::make_galgel();
  CompilerOptions options;
  const CompileOutput out =
      compile(b.program, Transformation::kNone, std::nullopt, options);
  EXPECT_EQ(out.program.nests.size(), b.program.nests.size());
  EXPECT_EQ(out.striping.size(), b.program.arrays.size());
  for (const layout::Striping& s : out.striping) {
    EXPECT_EQ(s, options.base_striping);
  }
  EXPECT_TRUE(out.plans.empty());
  EXPECT_EQ(out.calls_inserted, 0);
}

TEST(Compile, SchedulingModesInsertMatchingCalls) {
  const workloads::Benchmark b = workloads::make_swim();
  CompilerOptions options;
  const CompileOutput drpm =
      compile(b.program, Transformation::kNone, PowerMode::kDrpm, options);
  EXPECT_GT(drpm.calls_inserted, 0);
  for (const ir::PlacedDirective& pd : drpm.program.directives) {
    EXPECT_EQ(pd.directive.kind, ir::PowerDirective::Kind::kSetRpm);
  }
  const CompileOutput tpm =
      compile(b.program, Transformation::kNone, PowerMode::kTpm, options);
  // Untransformed swim has no above-break-even gaps: CMTPM stays silent.
  EXPECT_EQ(tpm.calls_inserted, 0);
}

TEST(Compile, TransformNotesAreInformative) {
  const workloads::Benchmark swim = workloads::make_swim();
  CompilerOptions options;
  const CompileOutput lf =
      compile(swim.program, Transformation::kLFDL, std::nullopt, options);
  EXPECT_NE(lf.notes.find("array group"), std::string::npos);

  const workloads::Benchmark galgel = workloads::make_galgel();
  const CompileOutput none =
      compile(galgel.program, Transformation::kLFDL, std::nullopt, options);
  EXPECT_NE(none.notes.find("no fissionable nest"), std::string::npos);
}

TEST(Compile, MakeLayoutTableMatchesStriping) {
  const workloads::Benchmark b = workloads::make_mgrid();
  CompilerOptions options;
  const CompileOutput out =
      compile(b.program, Transformation::kLFDL, std::nullopt, options);
  const layout::LayoutTable table = out.make_layout_table(options.total_disks);
  EXPECT_EQ(table.array_count(), out.program.arrays.size());
  for (std::size_t a = 0; a < out.striping.size(); ++a) {
    EXPECT_EQ(table.layout_of(static_cast<ir::ArrayId>(a)).striping(),
              out.striping[a]);
  }
}

TEST(Compile, PipelineOutputSimulates) {
  const workloads::Benchmark b = workloads::make_mesa();
  CompilerOptions options;
  const CompileOutput out =
      compile(b.program, Transformation::kTLDL, PowerMode::kDrpm, options);
  const layout::LayoutTable table = out.make_layout_table(options.total_disks);
  trace::TraceGenerator generator(out.program, table);
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(generator.generate(),
                                              options.disk_params, policy);
  EXPECT_GT(report.requests, 0);
  EXPECT_GT(report.total_energy, 0.0);
}

TEST(Report, SummaryAndPerDiskTablesRender) {
  const workloads::Benchmark b = workloads::make_galgel();
  CompilerOptions options;
  const CompileOutput out =
      compile(b.program, Transformation::kNone, std::nullopt, options);
  const layout::LayoutTable table = out.make_layout_table(options.total_disks);
  trace::TraceGenerator generator(out.program, table);
  policy::BasePolicy policy;
  const sim::SimReport report = sim::simulate(generator.generate(),
                                              options.disk_params, policy);

  const Table summary = experiments::summary_table(report);
  EXPECT_GE(summary.row_count(), 8u);
  const Table per_disk = experiments::per_disk_table(report);
  EXPECT_EQ(per_disk.row_count(), 8u);
  std::ostringstream os;
  summary.print(os);
  per_disk.print(os);
  EXPECT_NE(os.str().find("disk energy"), std::string::npos);
}

TEST(Codegen, EmitsArraysLoopsAndStatements) {
  const workloads::Benchmark b = workloads::make_galgel();
  const std::string source = emit_pseudo_source(b.program);
  EXPECT_NE(source.find("double G1[1024][1024]"), std::string::npos);
  EXPECT_NE(source.find("for (i = 0; i < 1024; i += 1)"), std::string::npos);
  EXPECT_NE(source.find("G1[i][j] = f(G1[i][j], G2[i][j])"),
            std::string::npos);
}

TEST(Codegen, RendersDirectivesAtTheirSites) {
  const workloads::Benchmark b = workloads::make_swim();
  CompilerOptions options;
  const CompileOutput out =
      compile(b.program, Transformation::kNone, PowerMode::kDrpm, options);
  const std::string source = emit_pseudo_source(out.program);
  EXPECT_NE(source.find("set_RPM(RPM_"), std::string::npos);
  EXPECT_NE(source.find("strip-mined call site"), std::string::npos);
}

TEST(Codegen, TpmCallsUseSpinVerbs) {
  // A program with a long quiet period gets spin_down/spin_up calls.
  const workloads::Benchmark b = workloads::make_mgrid();
  CompilerOptions options;
  const CompileOutput out =
      compile(b.program, Transformation::kLFDL, PowerMode::kTpm, options);
  const std::string source = emit_pseudo_source(out.program);
  EXPECT_NE(source.find("spin_down(disk"), std::string::npos);
  EXPECT_NE(source.find("spin_up(disk"), std::string::npos);
}

TEST(Codegen, OptionsSuppressSections) {
  const workloads::Benchmark b = workloads::make_galgel();
  CodegenOptions options;
  options.emit_arrays = false;
  options.emit_costs = false;
  const std::string source = emit_pseudo_source(b.program, options);
  EXPECT_EQ(source.find("double G1"), std::string::npos);
  EXPECT_EQ(source.find("cycles/iteration"), std::string::npos);
}

}  // namespace
}  // namespace sdpm::core
