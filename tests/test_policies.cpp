// Reactive policies: TPM threshold behaviour, DRPM window heuristic and
// idle stepping, proactive call execution.
#include <gtest/gtest.h>

#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"

namespace sdpm::policy {
namespace {

const disk::DiskParameters& params() {
  static const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  return p;
}

trace::Trace trace_with_gap(TimeMs gap_ms) {
  trace::Trace t;
  t.total_disks = 1;
  trace::Request r1;
  r1.arrival_ms = 0.0;
  r1.size_bytes = kib(64);
  trace::Request r2 = r1;
  r2.arrival_ms = gap_ms;
  r2.start_sector = 1'000'000;
  t.requests = {r1, r2};
  t.compute_total_ms = gap_ms + 1'000.0;
  return t;
}

TEST(TpmPolicy, NoSpinDownBelowThreshold) {
  const trace::Trace t = trace_with_gap(10'000.0);  // < 15.2 s break-even
  TpmPolicy policy;
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 0);
  EXPECT_EQ(report.disks[0].demand_spin_ups, 0);
}

TEST(TpmPolicy, SpinsDownAfterThresholdAndPaysDemandSpinUp) {
  const trace::Trace t = trace_with_gap(60'000.0);
  TpmPolicy policy;
  const sim::SimReport report = sim::simulate(
      t, params(), policy, sim::SimOptions{.capture_responses = true});
  EXPECT_EQ(report.disks[0].spin_downs, 1);
  EXPECT_EQ(report.disks[0].demand_spin_ups, 1);
  // The second request pays the full spin-up latency.
  EXPECT_GT(report.responses[1], 10'900.0);
  // Standby residency: gap - threshold (minus the spin-down itself).
  EXPECT_GT(report.disks[0].breakdown.standby_ms, 0.0);
}

TEST(TpmPolicy, SavesEnergyOnLongGaps) {
  const trace::Trace t = trace_with_gap(120'000.0);
  TpmPolicy tpm;
  BasePolicy base;
  const Joules with_tpm = sim::simulate(t, params(), tpm).total_energy;
  const Joules without = sim::simulate(t, params(), base).total_energy;
  EXPECT_LT(with_tpm, without);
}

TEST(TpmPolicy, CustomThreshold) {
  const trace::Trace t = trace_with_gap(5'000.0);
  TpmPolicy policy(1'000.0);  // aggressive threshold
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 1);
}

TEST(TpmPolicy, FinalizeHandlesTrailingIdle) {
  trace::Trace t;
  t.total_disks = 1;
  trace::Request r;
  r.arrival_ms = 0.0;
  r.size_bytes = kib(64);
  t.requests = {r};
  t.compute_total_ms = 60'000.0;  // long trailing idle
  TpmPolicy policy;
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 1);
  EXPECT_GT(report.disks[0].breakdown.standby_ms, 0.0);
}

TEST(DrpmPolicy, IdleSteppingReducesSpeedDuringGaps) {
  const trace::Trace t = trace_with_gap(3'000.0);
  DrpmPolicy policy(500.0);
  const sim::SimReport report = sim::simulate(t, params(), policy);
  // 3 s of idleness at 500 ms per step: several transitions happened.
  EXPECT_GE(report.disks[0].rpm_transitions, 3);
  BasePolicy base;
  EXPECT_LT(report.total_energy,
            sim::simulate(t, params(), base).total_energy);
}

TEST(DrpmPolicy, NoIdleSteppingWhenDisabled) {
  const trace::Trace t = trace_with_gap(3'000.0);
  DrpmPolicy policy(0.0);
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].rpm_transitions, 0);  // too few for a window
}

TEST(DrpmPolicy, WindowHeuristicStepsDownOnStableResponses) {
  // Enough uniform requests to complete several 30-request windows.
  trace::Trace t;
  t.total_disks = 1;
  const int n = 150;
  for (int i = 0; i < n; ++i) {
    trace::Request r;
    r.arrival_ms = i * 50.0;
    r.start_sector = i * 1'000'000;  // force seeks, uniform responses
    r.size_bytes = kib(64);
    t.requests.push_back(r);
  }
  t.compute_total_ms = n * 50.0;
  DrpmPolicy policy(0.0);  // isolate the window heuristic
  const sim::SimReport report = sim::simulate(t, params(), policy);
  // First two windows establish the reference; later ones step down.
  EXPECT_GE(report.disks[0].rpm_transitions, 2);
  BasePolicy base;
  EXPECT_LT(report.total_energy,
            sim::simulate(t, params(), base).total_energy);
  // Serving at reduced speed costs time.
  EXPECT_GT(report.execution_ms,
            sim::simulate(t, params(), base).execution_ms);
}

TEST(ProactivePolicy, ExecutesDirectives) {
  trace::Trace t;
  t.total_disks = 1;
  t.compute_total_ms = 30'000.0;
  trace::PowerEvent down;
  down.app_time_ms = 1'000.0;
  down.directive = ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, 0, 0};
  trace::PowerEvent up;
  up.app_time_ms = 15'000.0;
  up.directive = ir::PowerDirective{ir::PowerDirective::Kind::kSpinUp, 0, 0};
  t.power_events = {down, up};
  ProactivePolicy policy("CMTPM");
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 1);
  EXPECT_NEAR(report.disks[0].breakdown.standby_ms,
              15'000.0 - 1'000.0 - 1'500.0, 1e-6);
  EXPECT_NEAR(report.disks[0].breakdown.spin_up_ms, 10'900.0, 1e-6);
}

TEST(ProactivePolicy, SetRpmDirective) {
  trace::Trace t;
  t.total_disks = 1;
  t.compute_total_ms = 10'000.0;
  trace::PowerEvent ev;
  ev.app_time_ms = 0.0;
  ev.directive = ir::PowerDirective{ir::PowerDirective::Kind::kSetRpm, 0, 0};
  t.power_events = {ev};
  ProactivePolicy policy("CMDRPM");
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].rpm_transitions, 1);
  // Most of the 10 s sits at the minimum level (~2.58 W).
  EXPECT_LT(report.total_energy, 40.0);
}

TEST(BasePolicy, DoesNothing) {
  const trace::Trace t = trace_with_gap(60'000.0);
  BasePolicy policy;
  const sim::SimReport report = sim::simulate(t, params(), policy);
  EXPECT_EQ(report.disks[0].spin_downs, 0);
  EXPECT_EQ(report.disks[0].rpm_transitions, 0);
  EXPECT_EQ(report.disks[0].demand_spin_ups, 0);
}

}  // namespace
}  // namespace sdpm::policy
