// Access walker: the closed-form block enumeration must agree exactly
// (events and order) with a brute-force per-element walk.
#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.h"
#include "trace/walker.h"
#include "util/error.h"
#include "util/rng.h"

namespace sdpm::trace {
namespace {

using ir::ArrayId;
using ir::ProgramBuilder;
using ir::sym;

struct Event {
  int nest;
  std::int64_t flat;
  ArrayId array;
  std::int64_t block;
  int statement;

  friend bool operator==(const Event&, const Event&) = default;
};

std::vector<Event> run_walker(const ir::Program& program, Bytes block_size) {
  std::vector<Event> events;
  walk_block_touches(program, block_size, [&](const BlockTouch& t) {
    events.push_back(Event{t.nest, t.flat_iter, t.array, t.block,
                           t.statement});
  });
  return events;
}

std::vector<Event> brute_force(const ir::Program& program, Bytes block_size) {
  std::vector<Event> events;
  for (int n = 0; n < static_cast<int>(program.nests.size()); ++n) {
    const ir::LoopNest& nest = program.nests[static_cast<std::size_t>(n)];
    const std::int64_t inner_trips = nest.loops.back().trip_count();
    const std::int64_t outer_total = nest.iteration_count() / inner_trips;
    for (std::int64_t o = 0; o < outer_total; ++o) {
      // Track each ref's previous block within this inner sweep.
      std::vector<std::vector<std::int64_t>> prev(nest.body.size());
      for (std::size_t si = 0; si < nest.body.size(); ++si) {
        prev[si].assign(nest.body[si].refs.size(), -1);
      }
      for (std::int64_t t = 0; t < inner_trips; ++t) {
        const std::int64_t flat = o * inner_trips + t;
        const std::vector<std::int64_t> iters = nest.iteration_at(flat);
        for (int si = 0; si < static_cast<int>(nest.body.size()); ++si) {
          const ir::Statement& stmt =
              nest.body[static_cast<std::size_t>(si)];
          for (int ri = 0; ri < static_cast<int>(stmt.refs.size()); ++ri) {
            const ir::ArrayRef& ref =
                stmt.refs[static_cast<std::size_t>(ri)];
            std::vector<std::int64_t> index;
            for (const ir::AffineExpr& sub : ref.subscripts) {
              index.push_back(sub.eval(iters));
            }
            const Bytes off =
                program.array(ref.array).byte_offset(index);
            const std::int64_t block = off / block_size;
            auto& p = prev[static_cast<std::size_t>(si)]
                          [static_cast<std::size_t>(ri)];
            if (block != p) {
              events.push_back(Event{n, flat, ref.array, block, si});
              p = block;
            }
          }
        }
      }
    }
  }
  return events;
}

TEST(Walker, ContiguousSweep) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {64});  // 512 bytes
  pb.nest("n").loop("i", 0, 64).stmt(1.0).read(u, {sym("i")}).done();
  const ir::Program p = pb.build();
  const auto events = run_walker(p, 128);
  ASSERT_EQ(events.size(), 4u);  // 512 / 128 blocks
  EXPECT_EQ(events[0].flat, 0);
  EXPECT_EQ(events[1].flat, 16);
  EXPECT_EQ(events[3].block, 3);
}

TEST(Walker, ConstantSubscriptTouchesOnce) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {64});
  pb.nest("n")
      .loop("i", 0, 100)
      .stmt(1.0)
      .read(u, {ir::sym_const(5)})
      .done();
  const ir::Program p = pb.build();
  const auto events = run_walker(p, 128);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].flat, 0);
}

TEST(Walker, TwoDimensionalRowMajor) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {8, 16});  // 8 rows x 128 bytes
  pb.nest("n")
      .loop("i", 0, 8)
      .loop("j", 0, 16)
      .stmt(1.0)
      .read(u, {sym("i"), sym("j")})
      .done();
  const ir::Program p = pb.build();
  const auto events = run_walker(p, 256);  // 2 rows per block
  EXPECT_EQ(events.size(), brute_force(p, 256).size());
  EXPECT_EQ(events, brute_force(p, 256));
}

TEST(Walker, TransposedAccessMatchesBruteForce) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {16, 16});
  pb.nest("n")
      .loop("i", 0, 16)
      .loop("j", 0, 16)
      .stmt(1.0)
      .read(u, {sym("j"), sym("i")})  // column access of row-major
      .done();
  const ir::Program p = pb.build();
  EXPECT_EQ(run_walker(p, 256), brute_force(p, 256));
}

TEST(Walker, NegativeStrideMatchesBruteForce) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {64});
  pb.nest("n")
      .loop("i", 0, 64)
      .stmt(1.0)
      .read(u, {(-1) * sym("i") + 63})  // reverse sweep
      .done();
  const ir::Program p = pb.build();
  EXPECT_EQ(run_walker(p, 128), brute_force(p, 128));
}

TEST(Walker, MultiStatementOrderPreserved) {
  ProgramBuilder pb("p");
  const ArrayId a = pb.array("A", {32});
  const ArrayId b = pb.array("B", {32});
  pb.nest("n")
      .loop("i", 0, 32)
      .stmt(1.0)
      .read(a, {sym("i")})
      .stmt(1.0)
      .read(b, {sym("i")})
      .done();
  const ir::Program p = pb.build();
  const auto events = run_walker(p, 64);
  // At flat 0 both refs enter block 0: statement order must be preserved.
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].statement, 0);
  EXPECT_EQ(events[1].statement, 1);
  EXPECT_EQ(events, brute_force(p, 64));
}

TEST(Walker, OutOfBoundsReferenceThrows) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {16});
  pb.nest("n").loop("i", 0, 17).stmt(1.0).read(u, {sym("i")}).done();
  const ir::Program p = pb.build();
  EXPECT_THROW(run_walker(p, 64), Error);
}

TEST(Walker, BlockSizeMustBeMultipleOfElement) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {16});
  pb.nest("n").loop("i", 0, 16).stmt(1.0).read(u, {sym("i")}).done();
  const ir::Program p = pb.build();
  EXPECT_THROW(run_walker(p, 12), Error);
}

TEST(Walker, PerArrayBlockSizes) {
  ProgramBuilder pb("p");
  const ArrayId a = pb.array("A", {32});
  const ArrayId b = pb.array("B", {32});
  pb.nest("n")
      .loop("i", 0, 32)
      .stmt(1.0)
      .read(a, {sym("i")})
      .read(b, {sym("i")})
      .done();
  const ir::Program p = pb.build();
  int a_events = 0, b_events = 0;
  walk_block_touches(
      p, [&](ir::ArrayId arr) { return arr == 0 ? Bytes{64} : Bytes{128}; },
      [&](const BlockTouch& t) { (t.array == 0 ? a_events : b_events)++; });
  EXPECT_EQ(a_events, 4);  // 256B / 64B
  EXPECT_EQ(b_events, 2);  // 256B / 128B
}

TEST(Walker, SteppedLoopsMatchBruteForce) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {64, 64});
  pb.nest("n")
      .loop("i", 0, 64, 4)   // non-unit outer step
      .loop("j", 0, 64, 2)   // non-unit inner step
      .stmt(1.0)
      .read(u, {sym("i"), sym("j")})
      .done();
  const ir::Program p = pb.build();
  EXPECT_EQ(run_walker(p, 256), brute_force(p, 256));
}

TEST(Walker, NonZeroLowerBoundsMatchBruteForce) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {64, 64});
  pb.nest("n")
      .loop("i", 8, 56)
      .loop("j", 16, 48)
      .stmt(1.0)
      .read(u, {sym("i"), sym("j")})
      .done();
  const ir::Program p = pb.build();
  EXPECT_EQ(run_walker(p, 512), brute_force(p, 512));
}

TEST(Walker, ScaledSubscriptMatchesBruteForce) {
  // U[2i][j]: every other row -- the stride-2 case of the closed form.
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {64, 32});
  pb.nest("n")
      .loop("i", 0, 32)
      .loop("j", 0, 32)
      .stmt(1.0)
      .read(u, {2 * sym("i"), sym("j")})
      .done();
  const ir::Program p = pb.build();
  EXPECT_EQ(run_walker(p, 256), brute_force(p, 256));
}

TEST(Walker, ThreeDeepNestMatchesBruteForce) {
  ProgramBuilder pb("p");
  const ArrayId u = pb.array("U", {8, 16, 32});
  pb.nest("n")
      .loop("i", 0, 8)
      .loop("j", 0, 16)
      .loop("k", 0, 32)
      .stmt(1.0)
      .read(u, {sym("i"), sym("j"), sym("k")})
      .done();
  const ir::Program p = pb.build();
  EXPECT_EQ(run_walker(p, 512), brute_force(p, 512));
}

// Randomized differential test across layouts, strides and block sizes.
TEST(WalkerProperty, MatchesBruteForce) {
  SplitMix64 rng(2025);
  for (int trial = 0; trial < 40; ++trial) {
    ProgramBuilder pb("p");
    const std::int64_t rows = 4 + static_cast<std::int64_t>(rng.next_below(12));
    const std::int64_t cols = rows;  // square so transposed refs stay in range
    const auto layout = rng.next_below(2) == 0
                            ? ir::StorageLayout::kRowMajor
                            : ir::StorageLayout::kColMajor;
    const ArrayId u = pb.array("U", {rows, cols}, 8, layout);
    const ArrayId v = pb.array("V", {rows * cols}, 8);
    auto nb = pb.nest("n");
    nb.loop("i", 0, rows).loop("j", 0, cols);
    nb.stmt(1.0);
    if (rng.next_below(2) == 0) {
      nb.read(u, {sym("i"), sym("j")});
    } else {
      nb.read(u, {sym("j"), sym("i")});
    }
    nb.read(v, {static_cast<std::int64_t>(1 + rng.next_below(2)) * sym("j")});
    nb.done();
    ir::Program p = pb.build();
    // Clamp the scaled V subscript into range by construction: max value is
    // 2*(cols-1) < rows*cols for the sizes above.
    const Bytes block = 8 * (1 + static_cast<Bytes>(rng.next_below(16)));
    ASSERT_EQ(run_walker(p, block), brute_force(p, block)) << "trial "
                                                           << trial;
  }
}

}  // namespace
}  // namespace sdpm::trace
