// Write-ahead job journal: replay fidelity, torn-tail truncation,
// dispatch accounting across restarts, and bounded compaction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "service/journal.h"
#include "util/checksum.h"

namespace sdpm::service {
namespace {

namespace fs = std::filesystem;

std::string temp_journal(const char* tag) {
  const fs::path path = fs::temp_directory_path() /
                        ("sdpm_journal_" + std::string(tag) + "_" +
                         std::to_string(::getpid()) + ".bin");
  fs::remove(path);
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, ReplaysEveryOutcome) {
  const std::string path = temp_journal("outcomes");
  {
    Journal journal(JournalOptions{.path = path});
    const JournalReplay fresh = journal.open();
    EXPECT_TRUE(fresh.jobs.empty());
    EXPECT_FALSE(fresh.truncated_tail);

    journal.admit(1, 10, "{\"benchmark\":\"a\"}");
    journal.dispatch(1);
    journal.complete_done(1, "00112233445566778899aabbccddeeff");

    journal.admit(2, 10, "{\"benchmark\":\"b\"}");
    journal.dispatch(2);
    journal.complete_failed(2, "EXEC_ERROR", "boom");

    journal.admit(3, 11, "{\"benchmark\":\"c\"}");
    journal.cancel(3);

    journal.admit(4, 11, "{\"benchmark\":\"d\"}");
    journal.dispatch(4);  // dispatched, never completed: the crash victim
  }

  Journal reopened(JournalOptions{.path = path});
  const JournalReplay replay = reopened.open();
  EXPECT_FALSE(replay.truncated_tail);
  ASSERT_EQ(replay.jobs.size(), 4u);
  EXPECT_EQ(replay.max_id, 4);

  EXPECT_EQ(replay.jobs[0].outcome, ReplayedJob::Outcome::kDone);
  EXPECT_EQ(replay.jobs[0].store_key, "00112233445566778899aabbccddeeff");
  EXPECT_EQ(replay.jobs[0].session, 10u);
  EXPECT_EQ(replay.jobs[0].spec_json, "{\"benchmark\":\"a\"}");

  EXPECT_EQ(replay.jobs[1].outcome, ReplayedJob::Outcome::kFailed);
  EXPECT_EQ(replay.jobs[1].error_code, "EXEC_ERROR");
  EXPECT_EQ(replay.jobs[1].error, "boom");

  EXPECT_EQ(replay.jobs[2].outcome, ReplayedJob::Outcome::kCancelled);

  EXPECT_EQ(replay.jobs[3].outcome, ReplayedJob::Outcome::kIncomplete);
  EXPECT_EQ(replay.jobs[3].dispatches, 1);
  fs::remove(path);
}

TEST(Journal, TornTailIsTruncatedNotFatal) {
  const std::string path = temp_journal("torn");
  {
    Journal journal(JournalOptions{.path = path});
    journal.open();
    journal.admit(1, 1, "{}");
    journal.admit(2, 1, "{}");
  }
  // A crash mid-append leaves a partial record: simulate with garbage that
  // cannot be a valid (length, crc, body) triple.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x00\x00\x00\x40garbage-torn-tail", 21);
  }
  Journal reopened(JournalOptions{.path = path});
  const JournalReplay replay = reopened.open();
  EXPECT_TRUE(replay.truncated_tail);
  ASSERT_EQ(replay.jobs.size(), 2u);
  EXPECT_EQ(replay.jobs[0].id, 1);
  EXPECT_EQ(replay.jobs[1].id, 2);

  // Compaction rewrote a clean file: the third open sees no torn tail and
  // appends land after the preserved records.
  reopened.admit(3, 2, "{}");
  reopened.close();
  Journal third(JournalOptions{.path = path});
  const JournalReplay again = third.open();
  EXPECT_FALSE(again.truncated_tail);
  EXPECT_EQ(again.jobs.size(), 3u);
  fs::remove(path);
}

TEST(Journal, CorruptMidFileStopsAtLastValidRecord) {
  const std::string path = temp_journal("midflip");
  {
    Journal journal(JournalOptions{.path = path});
    journal.open();
    journal.admit(1, 1, "{\"k\":\"first\"}");
    journal.admit(2, 1, "{\"k\":\"second\"}");
  }
  // Flip one byte in the LAST record's body: its CRC fails, replay keeps
  // everything before it.
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 8u);
  bytes[bytes.size() - 3] ^= 0x40;
  dump(path, bytes);

  Journal reopened(JournalOptions{.path = path});
  const JournalReplay replay = reopened.open();
  EXPECT_TRUE(replay.truncated_tail);
  ASSERT_EQ(replay.jobs.size(), 1u);
  EXPECT_EQ(replay.jobs[0].id, 1);
  fs::remove(path);
}

TEST(Journal, ForeignMagicIsTreatedAsEmpty) {
  const std::string path = temp_journal("magic");
  dump(path, "definitely not a journal file");
  Journal journal(JournalOptions{.path = path});
  const JournalReplay replay = journal.open();
  EXPECT_TRUE(replay.truncated_tail);
  EXPECT_TRUE(replay.jobs.empty());
  // And the compacted file IS a journal now.
  journal.admit(1, 1, "{}");
  journal.close();
  Journal reopened(JournalOptions{.path = path});
  EXPECT_EQ(reopened.open().jobs.size(), 1u);
  fs::remove(path);
}

TEST(Journal, DispatchCountsAccumulateAcrossLives) {
  // The poison-job signal: each daemon life dispatches the job, crashes,
  // and the next life sees one more dispatch without a completion.
  const std::string path = temp_journal("poison");
  for (int life = 1; life <= 3; ++life) {
    Journal journal(JournalOptions{.path = path});
    const JournalReplay replay = journal.open();
    if (life == 1) {
      journal.admit(7, 1, "{}");
    } else {
      ASSERT_EQ(replay.jobs.size(), 1u);
      EXPECT_EQ(replay.jobs[0].dispatches, life - 1);
      EXPECT_EQ(replay.jobs[0].outcome, ReplayedJob::Outcome::kIncomplete);
    }
    journal.dispatch(7);
  }
  Journal last(JournalOptions{.path = path});
  EXPECT_EQ(last.open().jobs[0].dispatches, 3);
  fs::remove(path);
}

TEST(Journal, CompactionDropsOldestTerminalJobs) {
  const std::string path = temp_journal("compact");
  {
    Journal journal(JournalOptions{.path = path});
    journal.open();
    for (std::int64_t id = 1; id <= 6; ++id) {
      journal.admit(id, 1, "{}");
      journal.dispatch(id);
      if (id <= 4) journal.complete_done(id, std::string(32, 'a'));
    }
  }
  Journal reopened(JournalOptions{.path = path, .keep_terminal = 2});
  const JournalReplay replay = reopened.open();
  // 4 terminal jobs, budget 2: the two oldest (1, 2) are compacted away;
  // both incomplete jobs (5, 6) always survive.
  ASSERT_EQ(replay.jobs.size(), 4u);
  EXPECT_EQ(replay.jobs[0].id, 3);
  EXPECT_EQ(replay.jobs[1].id, 4);
  EXPECT_EQ(replay.jobs[2].id, 5);
  EXPECT_EQ(replay.jobs[3].id, 6);
  EXPECT_EQ(replay.jobs[2].outcome, ReplayedJob::Outcome::kIncomplete);
  fs::remove(path);
}

TEST(Journal, AppendsAfterCloseAreNoOps) {
  const std::string path = temp_journal("closed");
  Journal journal(JournalOptions{.path = path});
  journal.open();
  journal.admit(1, 1, "{}");
  journal.close();
  journal.admit(2, 1, "{}");  // dropped, not a crash
  Journal reopened(JournalOptions{.path = path});
  EXPECT_EQ(reopened.open().jobs.size(), 1u);
  fs::remove(path);
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE CRC32 check value every implementation agrees on.
  EXPECT_EQ(sdpm::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(sdpm::crc32(""), 0u);
  EXPECT_NE(sdpm::crc32("a"), sdpm::crc32("b"));
  // Incremental == one-shot.
  const std::uint32_t incremental =
      sdpm::crc32_update(sdpm::crc32_update(0, "1234"), "56789");
  EXPECT_EQ(incremental, sdpm::crc32("123456789"));
}

}  // namespace
}  // namespace sdpm::service
